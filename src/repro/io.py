"""Public file loaders shared by the CLIs, examples, and library users.

These used to live as private helpers inside :mod:`repro.cli`; they are
the one place that knows how on-disk design files map onto the package's
object model, so they are public API.

Format sniffing, documented:

:func:`load_soc`
    SOC descriptions come in two dialects.  A native ITC'02 file starts
    with a ``SocName <name>`` header, so the loader checks the first
    line (and, to tolerate leading comments, the first 400 characters)
    for ``SocName`` and routes to :func:`repro.itc02.native_to_soc`;
    everything else is parsed as the package's own ``.soc`` dialect via
    :func:`repro.itc02.parse_soc`.

:func:`load_netlist`
    Netlists are distinguished purely by extension: ``.v`` / ``.sv``
    parse as the structural-Verilog subset
    (:func:`repro.circuit.load_verilog_file`); anything else — by
    convention ``.bench`` — as ISCAS BENCH format
    (:func:`repro.circuit.load_bench_file`).

Malformed input raises the typed errors of :mod:`repro.errors`:
netlist problems are :class:`~repro.errors.NetlistParseError`
subclasses, SOC-description problems are
:class:`~repro.errors.SocFormatError` subclasses — all of them still
``ValueError``, so pre-existing handlers keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .circuit import load_bench_file, load_verilog_file
from .circuit.netlist import Netlist
from .soc import Soc


def load_soc(path: Union[str, Path]) -> Soc:
    """Load an SOC description, sniffing native-ITC'02 vs .soc dialect."""
    text = Path(path).read_text()
    if "SocName" in text.split("\n", 5)[0] or "SocName" in text[:400]:
        from .itc02 import native_to_soc

        return native_to_soc(text)
    from .itc02 import parse_soc

    return parse_soc(text).soc


def load_netlist(path: Union[str, Path]) -> Netlist:
    """Load a netlist by extension: .v/.sv is Verilog, anything else BENCH."""
    path = str(path)
    if path.endswith(".v") or path.endswith(".sv"):
        return load_verilog_file(path)
    return load_bench_file(path)
