"""Declarative sweep specifications: named axes, sampling, seeds.

A :class:`SweepSpec` describes a design-space sweep without running it:
named :class:`Axis` values (an explicit grid, or a distribution for
random/latin sampling), a sampling mode, and a base seed from which
every point derives its own independent seed.  The spec is pure data —
expanding it with :meth:`SweepSpec.points` is deterministic and cheap,
so engines, journals, and resume logic can all re-derive the exact same
point list from the spec alone.

Seed derivation is hash-based (:func:`derive_seed`), not sequential
draws from one RNG, so any point (and, downstream, any per-core stream
inside a point) can be evaluated in isolation, out of order, or on a
different worker and still see exactly the bits it would have seen in a
serial run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from ..errors import ConfigError

SAMPLING_MODES = ("grid", "random", "latin")


def derive_seed(*parts: Any) -> int:
    """A stable 63-bit seed derived from arbitrary labelled parts.

    SHA-256 over the repr of the parts, so the stream is independent of
    Python's hash randomization and identical across processes and
    platforms.  Used for per-point seeds (``derive_seed(base, name,
    index)``) and per-core streams inside synthetic generators.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Axis:
    """One named sweep dimension.

    ``values`` axes enumerate an explicit grid (the only kind a
    ``sampling="grid"`` spec accepts; under random/latin sampling they
    behave as a uniform choice).  Distribution axes (``uniform``,
    ``log_uniform``, ``integers``) map a unit draw onto their range.
    Use the constructors — the raw dataclass fields are an encoding.
    """

    name: str
    kind: str  # "values" | "uniform" | "loguniform" | "integers"
    values: Tuple[Any, ...] = ()
    low: float = 0.0
    high: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("axis name must be non-empty")
        if self.kind not in ("values", "uniform", "loguniform", "integers"):
            raise ConfigError(f"unknown axis kind {self.kind!r}")
        if self.kind == "values":
            if not self.values:
                raise ConfigError(f"axis {self.name!r}: empty value list")
        else:
            if not self.high > self.low:
                raise ConfigError(
                    f"axis {self.name!r}: need high > low, got "
                    f"[{self.low}, {self.high}]"
                )
            if self.kind == "loguniform" and self.low <= 0:
                raise ConfigError(
                    f"axis {self.name!r}: log-uniform needs low > 0, "
                    f"got {self.low}"
                )

    # -- constructors ----------------------------------------------------

    @classmethod
    def grid(cls, name: str, values: Sequence[Any]) -> "Axis":
        """An explicit list of settings, swept in the given order."""
        return cls(name=name, kind="values", values=tuple(values))

    @classmethod
    def uniform(cls, name: str, low: float, high: float) -> "Axis":
        """Continuous uniform on ``[low, high)``."""
        return cls(name=name, kind="uniform", low=float(low), high=float(high))

    @classmethod
    def log_uniform(cls, name: str, low: float, high: float) -> "Axis":
        """Log-uniform on ``[low, high)`` — uniform in the exponent."""
        return cls(name=name, kind="loguniform", low=float(low), high=float(high))

    @classmethod
    def integers(cls, name: str, low: int, high: int) -> "Axis":
        """Uniform integers on the inclusive range ``[low, high]``."""
        return cls(name=name, kind="integers", low=float(low), high=float(high))

    # -- sampling --------------------------------------------------------

    def sample(self, u: float) -> Any:
        """Map one unit draw ``u`` in [0, 1) onto this axis."""
        if self.kind == "values":
            return self.values[min(int(u * len(self.values)), len(self.values) - 1)]
        if self.kind == "uniform":
            return self.low + (self.high - self.low) * u
        if self.kind == "loguniform":
            lo, hi = math.log(self.low), math.log(self.high)
            return math.exp(lo + (hi - lo) * u)
        # integers: inclusive range
        span = int(self.high) - int(self.low) + 1
        return int(self.low) + min(int(u * span), span - 1)

    def describe(self) -> Dict[str, Any]:
        """A canonical JSON-able description (spec fingerprints)."""
        if self.kind == "values":
            return {"name": self.name, "kind": self.kind,
                    "values": list(self.values)}
        return {"name": self.name, "kind": self.kind,
                "low": self.low, "high": self.high}


@dataclass(frozen=True)
class SweepPointSpec:
    """One point of an expanded sweep: where, with what, under what seed.

    ``params`` holds one value per axis plus the spec's constants;
    ``seed`` is this point's private seed, derived — not drawn — so the
    point is evaluable in isolation.
    """

    index: int
    params: Mapping[str, Any]
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: axes x sampling x seed.

    ``sampling="grid"`` walks the cartesian product of the axis value
    lists in declaration order (first axis slowest).  ``"random"``
    draws ``samples`` independent points; ``"latin"`` stratifies each
    axis into ``samples`` bins and permutes them (latin hypercube), so
    every axis is evenly covered even at small N.  Random draws come
    from a *per-axis* RNG seeded off the axis name, so adding or
    removing one axis never changes the values sampled on another.

    ``constants`` are merged into every point's params — the fixed
    knobs of the family the sweep varies around.
    """

    name: str
    axes: Tuple[Axis, ...]
    sampling: str = "grid"
    samples: int = 0  # required (>= 1) for random/latin; ignored for grid
    seed: int = 0
    constants: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("sweep name must be non-empty")
        if self.sampling not in SAMPLING_MODES:
            raise ConfigError(
                f"unknown sampling {self.sampling!r}; "
                f"choose from {SAMPLING_MODES}"
            )
        if not self.axes:
            raise ConfigError(f"sweep {self.name!r}: need at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"sweep {self.name!r}: duplicate axis names")
        clash = set(names) & set(self.constants)
        if clash:
            raise ConfigError(
                f"sweep {self.name!r}: constants shadow axes: {sorted(clash)}"
            )
        if self.sampling == "grid":
            bad = [a.name for a in self.axes if a.kind != "values"]
            if bad:
                raise ConfigError(
                    f"sweep {self.name!r}: grid sampling needs explicit "
                    f"value lists; distribution axes: {bad}"
                )
        elif self.samples < 1:
            raise ConfigError(
                f"sweep {self.name!r}: {self.sampling} sampling needs "
                f"samples >= 1, got {self.samples}"
            )

    @property
    def point_count(self) -> int:
        if self.sampling == "grid":
            count = 1
            for axis in self.axes:
                count *= len(axis.values)
            return count
        return self.samples

    def _axis_rng(self, axis: Axis) -> random.Random:
        return random.Random(derive_seed(self.seed, self.name, "axis", axis.name))

    def _axis_draws(self, axis: Axis) -> Sequence[float]:
        """The unit draws of one axis, for every point, independently."""
        rng = self._axis_rng(axis)
        n = self.samples
        if self.sampling == "random":
            return [rng.random() for _ in range(n)]
        # latin: one jittered draw per stratum, strata order permuted.
        strata = list(range(n))
        rng.shuffle(strata)
        return [(stratum + rng.random()) / n for stratum in strata]

    def points(self) -> Iterator[SweepPointSpec]:
        """Expand the spec into its point list, deterministically."""
        if self.sampling == "grid":
            combos: Iterator[Tuple[Any, ...]] = itertools.product(
                *(axis.values for axis in self.axes)
            )
        else:
            draws = [self._axis_draws(axis) for axis in self.axes]
            combos = (
                tuple(
                    axis.sample(draws[k][i])
                    for k, axis in enumerate(self.axes)
                )
                for i in range(self.samples)
            )
        for index, combo in enumerate(combos):
            params = dict(self.constants)
            for axis, value in zip(self.axes, combo):
                params[axis.name] = value
            yield SweepPointSpec(
                index=index,
                params=params,
                seed=derive_seed(self.seed, self.name, "point", index),
            )

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able form — what the journal manifest records."""
        return {
            "name": self.name,
            "axes": [axis.describe() for axis in self.axes],
            "sampling": self.sampling,
            "samples": self.samples,
            "seed": self.seed,
            "constants": dict(self.constants),
        }

    def fingerprint(self) -> str:
        """Content hash of the spec — guards resumed runs against mixing
        shards of a *different* sweep into this one's aggregates."""
        text = json.dumps(self.describe(), sort_keys=True, default=repr)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
