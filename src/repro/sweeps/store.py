"""Per-shard durable storage for resumable sweeps.

A population sweep is journaled at *shard* granularity: the engine
evaluates a contiguous chunk of points, then writes the whole chunk as
one atomic JSON file under ``RUN_DIR/shards/``.  A killed run leaves
only complete, self-describing shard files behind; a resumed run loads
them instead of re-evaluating and recomputes only the holes.  Because
the engine feeds aggregators strictly in shard order either way, the
aggregate statistics of a killed-and-resumed sweep are byte-identical
to an uninterrupted run's.

Every shard file carries the owning spec's fingerprint; resuming a
directory written by a *different* sweep is a :class:`ConfigError`,
not silently mixed statistics.  Corrupt shard files are quarantined
and recomputed, exactly like cache entries
(:mod:`repro.runtime.cache`).

``RUN_DIR/sweep.json`` is the run's clock-free manifest (spec
description plus per-shard point counts), rewritten after every shard
so it doubles as a live progress file — and so killed-and-resumed and
uninterrupted runs leave byte-identical manifests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import ConfigError
from ..observability import get_tracer, register_counter

STORE_SCHEMA = 1

SHARDS_RECORDED = register_counter(
    "sweeps.shards_recorded", "sweep shards journaled"
)
SHARDS_RESUMED = register_counter(
    "sweeps.shards_resumed", "sweep shards recalled on resume"
)
SHARDS_QUARANTINED = register_counter(
    "sweeps.shards_quarantined", "corrupt sweep shards quarantined"
)


class ShardStore:
    """Durable per-shard results plus a manifest for one sweep run.

    ``resume=False`` (a fresh run) refuses a directory that already
    holds shard files — resuming must be an explicit decision, the
    same contract as :class:`~repro.runtime.journal.RunJournal`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        resume: bool = False,
    ):
        self.directory = Path(directory)
        self.shards_dir = self.directory / "shards"
        self.fingerprint = fingerprint
        self.resume = resume
        self.resumed_shards = 0
        self._manifest_shards: List[Dict[str, Any]] = []
        if (
            not resume
            and self.shards_dir.exists()
            and any(self.shards_dir.glob("shard-*.json"))
        ):
            raise ConfigError(
                f"sweep directory {self.directory} already holds journaled "
                f"shards; pass resume=True (--resume) to continue that run, "
                f"or choose a fresh directory"
            )
        self.shards_dir.mkdir(parents=True, exist_ok=True)

    # -- per-shard results ----------------------------------------------

    def _path(self, index: int) -> Path:
        return self.shards_dir / f"shard-{index:06d}.json"

    def get(self, index: int) -> Optional[List[Dict[str, Any]]]:
        """The journaled records of shard ``index``, or None.

        Only consulted on resume.  A shard journaled by a different
        sweep (fingerprint mismatch) is a hard error; a corrupt file is
        quarantined and reported as a miss so the shard re-executes.
        """
        if not self.resume:
            return None
        path = self._path(index)
        try:
            payload = json.loads(path.read_text())
            if payload.get("fingerprint") != self.fingerprint:
                raise ConfigError(
                    f"sweep shard {path.name} belongs to sweep "
                    f"{payload.get('fingerprint')!r}, not {self.fingerprint!r}; "
                    f"refusing to resume a different sweep's run directory"
                )
            if payload.get("shard") != index:
                raise ValueError(
                    f"shard file {path.name} claims index {payload.get('shard')}"
                )
            records = payload["records"]
            if not isinstance(records, list):
                raise TypeError("records must be a list")
        except FileNotFoundError:
            return None
        except ConfigError:
            raise
        except (ValueError, KeyError, TypeError, OSError):
            from ..runtime.cache import quarantine_file

            quarantine_file(path)
            get_tracer().count(SHARDS_QUARANTINED)
            return None
        self.resumed_shards += 1
        get_tracer().count(SHARDS_RESUMED)
        return records

    def record(self, index: int, records: List[Dict[str, Any]]) -> None:
        """Durably journal one completed shard (atomic write)."""
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": self.fingerprint,
            "shard": index,
            "records": records,
        }
        path = self._path(index)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        get_tracer().count(SHARDS_RECORDED)

    # -- the manifest ----------------------------------------------------

    def note(self, index: int, point_count: int) -> None:
        """Append one flushed shard to the manifest (in shard order)."""
        self._manifest_shards.append({"index": index, "points": point_count})

    def write_manifest(self, spec_description: Dict[str, Any]) -> Path:
        """(Re)write ``sweep.json`` — deterministic bytes, no clocks."""
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": self.fingerprint,
            "spec": spec_description,
            "shards": self._manifest_shards,
        }
        path = self.directory / "sweep.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        tmp.replace(path)
        return path
