"""The generic sweep engine: spec in, streamed aggregates out.

:class:`SweepEngine` expands a :class:`~repro.sweeps.spec.SweepSpec`
into point evaluations and runs them with the execution machinery the
:class:`~repro.runtime.session.Runtime` already provides — worker
fan-out, chaos injection, retry policy, per-shard checkpoint/resume,
and observability counters — without knowing anything about what a
point *computes*.  The evaluator is any picklable module-level callable
``evaluate(point: SweepPointSpec) -> dict`` returning a JSON-able
record; everything downstream (journaling, aggregation, the JSONL
sink) consumes those records uniformly.

Determinism contract: point seeds are derived, not drawn, and records
are journaled at shard granularity but **aggregated strictly in shard
order**, so serial, parallel, and killed-and-resumed runs all produce
byte-identical aggregate statistics.  Worker processes only ever see
whole shards; a shard lost to a crashed worker is retried under the
runtime's :class:`~repro.runtime.policy.ExecutionPolicy` (fresh pool,
same points, same seeds).

The engine is deliberately a *leaf* dependency — it imports only
:mod:`repro.errors` and :mod:`repro.observability` — so low layers
like :mod:`repro.core.sweep` can build on it without import cycles.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Union,
)

from ..errors import ConfigError, JobFailure, JobRetriesExhaustedError
from ..observability import get_tracer, register_counter
from .aggregate import Aggregator
from .spec import SweepPointSpec, SweepSpec
from .store import ShardStore

SWEEP_POINTS = register_counter("sweeps.points", "sweep points evaluated")
SWEEP_SHARDS = register_counter("sweeps.shards", "sweep shards executed")
SWEEP_RETRIES = register_counter("sweeps.retries", "sweep shard retry attempts")

Evaluator = Callable[[SweepPointSpec], Dict[str, Any]]


class _ShardTask(NamedTuple):
    """Everything one shard attempt needs on the far side of a pickle."""

    index: int
    evaluate: Evaluator
    points: List[SweepPointSpec]
    chaos: Optional[Any]  # ChaosConfig, duck-typed to keep this module leaf
    attempt: int
    in_pool: bool


def _evaluate_shard(task: _ShardTask) -> List[Dict[str, Any]]:
    """Worker entry point (module-level so it pickles).

    The chaos hook fires before the first evaluation, with the shard as
    the job — so an injected hang/crash/flake hits sweeps exactly the
    way it hits ATPG jobs, and the same retry policy recovers it.
    """
    if task.chaos is not None:
        task.chaos.on_job_start(
            f"shard-{task.index}", task.attempt, task.in_pool
        )
    records = []
    for point in task.points:
        record = task.evaluate(point)
        records.append(dict(record))
    return records


@dataclass
class SweepRunResult:
    """What one :meth:`SweepEngine.run` did, and what it measured."""

    spec_name: str
    point_count: int
    shard_count: int
    executed_shards: int
    resumed_shards: int
    workers: int
    aggregates: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    records: Optional[List[Dict[str, Any]]] = None  # only with collect=True

    def summary(self) -> str:
        return (
            f"{self.spec_name}: {self.point_count} points in "
            f"{self.shard_count} shards ({self.executed_shards} executed, "
            f"{self.resumed_shards} resumed, workers={self.workers})"
        )


class _NeutralRuntime:
    """The do-nothing stand-in when no Runtime was given: serial,
    unjournaled, ambient tracer, default policy."""

    workers = 1
    policy = None
    journal = None

    def activate(self):
        from contextlib import nullcontext

        return nullcontext(get_tracer())


class SweepEngine:
    """Runs sweep specs through the runtime's execution machinery.

    ``runtime`` supplies the worker count, the retry/chaos policy, the
    tracer, and — when it journals to a run directory — the shard
    store location (``RUN_DIR/sweeps/<spec name>/``) and the resume
    flag.  ``shard_size`` balances journal granularity against fan-out
    overhead: a killed run loses at most one shard of work per worker.
    """

    def __init__(self, runtime: Optional[Any] = None, shard_size: int = 64):
        if shard_size < 1:
            raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
        self.runtime = runtime if runtime is not None else _NeutralRuntime()
        self.shard_size = shard_size

    # -- store resolution ------------------------------------------------

    def _store_for(
        self,
        spec: SweepSpec,
        store_dir: Optional[Union[str, Any]],
        resume: bool,
    ) -> Optional[ShardStore]:
        if store_dir is not None:
            return ShardStore(store_dir, spec.fingerprint(), resume=resume)
        journal = getattr(self.runtime, "journal", None)
        if journal is None:
            return None
        return ShardStore(
            journal.directory / "sweeps" / spec.name,
            spec.fingerprint(),
            resume=journal.resume,
        )

    # -- execution -------------------------------------------------------

    def run(
        self,
        spec: SweepSpec,
        evaluate: Evaluator,
        aggregators: Sequence[Aggregator] = (),
        collect: bool = False,
        store_dir: Optional[Union[str, Any]] = None,
        resume: bool = False,
    ) -> SweepRunResult:
        """Evaluate every point; stream records through the aggregators.

        Records reach the aggregators strictly in point order no matter
        how execution interleaves.  With ``collect=True`` the records
        also come back as a list (small sweeps); leave it off for
        population-scale runs so nothing accumulates in memory beyond
        the aggregator state.  ``store_dir``/``resume`` override the
        runtime journal's shard directory (used by tests and
        benchmarks); normally the run directory provides both.
        """
        points = list(spec.points())
        shards = [
            points[start:start + self.shard_size]
            for start in range(0, len(points), self.shard_size)
        ]
        store = self._store_for(spec, store_dir, resume)
        policy = getattr(self.runtime, "policy", None)
        workers = getattr(self.runtime, "workers", 1)
        max_attempts = policy.max_attempts if policy is not None else 3
        chaos = None
        if policy is not None and policy.chaos.enabled:
            chaos = policy.chaos

        recalled: Dict[int, List[Dict[str, Any]]] = {}
        if store is not None:
            for index in range(len(shards)):
                records = store.get(index)
                if records is not None:
                    recalled[index] = records
        pending = [index for index in range(len(shards)) if index not in recalled]

        result = SweepRunResult(
            spec_name=spec.name,
            point_count=len(points),
            shard_count=len(shards),
            executed_shards=len(pending),
            resumed_shards=len(recalled),
            workers=workers,
            records=[] if collect else None,
        )

        with self.runtime.activate() as tracer:
            with tracer.span(
                "sweep", name=spec.name, points=len(points), shards=len(shards)
            ):
                flush_state = {"next": 0}

                def flush(ready: Dict[int, List[Dict[str, Any]]]) -> None:
                    """Feed aggregators every shard that is next in order."""
                    while flush_state["next"] in ready:
                        index = flush_state["next"]
                        records = ready.pop(index)
                        for record in records:
                            for aggregator in aggregators:
                                aggregator.add(record)
                        if collect:
                            result.records.extend(records)
                        if store is not None:
                            store.note(index, len(records))
                            store.write_manifest(spec.describe())
                        flush_state["next"] += 1

                ready = dict(recalled)
                flush(ready)

                def on_ready(index: int, records: List[Dict[str, Any]]) -> None:
                    # Journal-first: the shard is durable before its
                    # records influence any aggregate, so a kill between
                    # the two replays identically on resume.
                    if store is not None:
                        store.record(index, records)
                    if tracer.enabled:
                        tracer.count(SWEEP_SHARDS)
                        tracer.count(SWEEP_POINTS, len(records))
                    ready[index] = records
                    flush(ready)

                if pending:
                    self._execute(
                        shards, pending, evaluate, workers, max_attempts,
                        chaos, policy, tracer, on_ready,
                    )

                if flush_state["next"] != len(shards):
                    raise RuntimeError(
                        f"sweep {spec.name!r}: only {flush_state['next']} of "
                        f"{len(shards)} shards flushed"
                    )
                for aggregator in aggregators:
                    aggregator.close()
                if store is not None:
                    store.write_manifest(spec.describe())
                    result.resumed_shards = store.resumed_shards

        result.aggregates = {
            aggregator.name: aggregator.result() for aggregator in aggregators
        }
        return result

    def _execute(
        self,
        shards: List[List[SweepPointSpec]],
        pending: List[int],
        evaluate: Evaluator,
        workers: int,
        max_attempts: int,
        chaos: Optional[Any],
        policy: Optional[Any],
        tracer,
        on_ready: Callable[[int, List[Dict[str, Any]]], None],
    ) -> None:
        """Evaluate the pending shards, serially or across a pool."""
        if workers <= 1 or len(pending) == 1:
            for index in pending:
                on_ready(
                    index,
                    self._run_serial(
                        index, shards[index], evaluate, max_attempts,
                        chaos, policy, tracer,
                    ),
                )
            return
        try:
            self._run_pool(
                shards, pending, evaluate, workers, max_attempts,
                chaos, policy, tracer, on_ready,
            )
        except (OSError, PermissionError):
            # No process pool available (sandboxed/limited
            # environments): same records, just serial.
            for index in pending:
                on_ready(
                    index,
                    self._run_serial(
                        index, shards[index], evaluate, max_attempts,
                        chaos, policy, tracer,
                    ),
                )

    def _run_serial(
        self,
        index: int,
        points: List[SweepPointSpec],
        evaluate: Evaluator,
        max_attempts: int,
        chaos: Optional[Any],
        policy: Optional[Any],
        tracer,
    ) -> List[Dict[str, Any]]:
        last: Optional[JobFailure] = None
        for attempt in range(max_attempts):
            if attempt and policy is not None:
                backoff = policy.backoff_for_round(attempt)
                if backoff > 0:
                    time.sleep(backoff)
            try:
                return _evaluate_shard(_ShardTask(
                    index=index, evaluate=evaluate, points=points,
                    chaos=chaos, attempt=attempt, in_pool=False,
                ))
            except JobFailure as exc:
                last = exc
                if tracer.enabled:
                    tracer.count(SWEEP_RETRIES)
        raise JobRetriesExhaustedError(
            f"sweep shard {index} still failing after {max_attempts} "
            f"attempts: {type(last).__name__}: {last}"
        ) from last

    def _run_pool(
        self,
        shards: List[List[SweepPointSpec]],
        pending: List[int],
        evaluate: Evaluator,
        workers: int,
        max_attempts: int,
        chaos: Optional[Any],
        policy: Optional[Any],
        tracer,
        on_ready: Callable[[int, List[Dict[str, Any]]], None],
    ) -> None:
        """Windowed pool fan-out with per-shard retry.

        At most ``4 x workers`` shards are in flight, so completion
        (and therefore aggregation and journaling) tracks submission
        order closely and memory stays bounded on huge sweeps.  A
        broken pool (worker crash, injected or real) is rebuilt; only
        the shards whose futures it swallowed are charged an attempt.
        """
        effective = min(workers, len(pending))
        window = effective * 4
        queue = deque(pending)
        attempts: Dict[int, int] = {index: 0 for index in pending}
        pool = ProcessPoolExecutor(max_workers=effective)
        in_flight: Dict[Any, int] = {}

        def submit(index: int) -> None:
            task = _ShardTask(
                index=index, evaluate=evaluate, points=shards[index],
                chaos=chaos, attempt=attempts[index], in_pool=True,
            )
            attempts[index] += 1
            in_flight[pool.submit(_evaluate_shard, task)] = index

        try:
            while queue and len(in_flight) < window:
                submit(queue.popleft())
            while in_flight:
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                rebuild = False
                for future in done:
                    index = in_flight.pop(future)
                    try:
                        on_ready(index, future.result())
                        continue
                    except BrokenExecutor:
                        rebuild = True
                        failure: JobFailure = JobFailure(
                            f"worker process died while evaluating sweep "
                            f"shard {index}"
                        )
                    except JobFailure as exc:
                        failure = exc
                    if attempts[index] >= max_attempts:
                        raise JobRetriesExhaustedError(
                            f"sweep shard {index} still failing after "
                            f"{attempts[index]} attempts: "
                            f"{type(failure).__name__}: {failure}"
                        ) from failure
                    if tracer.enabled:
                        tracer.count(SWEEP_RETRIES)
                    queue.append(index)
                if rebuild:
                    # The broken pool poisons every queued future; pull
                    # the survivors back into the queue (no attempt
                    # charged — they never ran) and start fresh.
                    for future, index in list(in_flight.items()):
                        queue.append(index)
                        attempts[index] -= 1
                    in_flight.clear()
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=effective)
                while queue and len(in_flight) < window:
                    submit(queue.popleft())
        finally:
            pool.shutdown(wait=False)
