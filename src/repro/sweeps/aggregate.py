"""Streaming aggregation of sweep results.

Population-scale sweeps produce thousands of point records; none of
them should have to sit in memory to yield a correlation coefficient.
An :class:`Aggregator` consumes one JSON-able record at a time (the
engine feeds them strictly in point order, so a resumed run aggregates
bit-identically to an uninterrupted one) and exposes its statistic
incrementally:

* :class:`RunningStats` — count/mean/stdev/min/max via Welford's
  update, numerically stable at any N.
* :class:`StreamingRegression` — Pearson r plus the least-squares
  trend line (slope/intercept) from streaming co-moments; this is the
  large-N version of the paper's Section 5.2 correlation check.
* :class:`FractionTrue` — how often a boolean field holds (e.g. "does
  modular testing win on this SOC?").
* :class:`BinnedMean` — mean of ``y`` per bin of ``x``; the trend
  table behind the regression.
* :class:`JsonlPointSink` — every record as one JSONL line, rewritten
  from scratch on resume so the file is byte-identical either way.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union


class Aggregator:
    """One streaming statistic over the sweep's point records.

    Subclasses implement :meth:`add` and :meth:`result`; ``close`` is
    called once by the engine after the last record (sinks flush
    there).  Aggregators must be insensitive to *how* the sweep ran
    (workers, shard size, resume) — the engine guarantees point order.
    """

    name = "aggregator"

    def add(self, record: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def result(self) -> Dict[str, Any]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class RunningStats(Aggregator):
    """Welford-streamed count/mean/stdev (sample) plus min/max."""

    def __init__(self, field: str):
        self.field = field
        self.name = f"stats({field})"
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, record: Mapping[str, Any]) -> None:
        value = float(record[self.field])
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (ddof=1), 0.0 below two points."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    def result(self) -> Dict[str, Any]:
        return {
            "field": self.field,
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class StreamingRegression(Aggregator):
    """Pearson r and least-squares y-on-x trend, one pass, O(1) memory."""

    def __init__(self, x_field: str, y_field: str):
        self.x_field = x_field
        self.y_field = y_field
        self.name = f"regression({y_field} ~ {x_field})"
        self.count = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._m2_x = 0.0
        self._m2_y = 0.0
        self._c_xy = 0.0

    def add(self, record: Mapping[str, Any]) -> None:
        x = float(record[self.x_field])
        y = float(record[self.y_field])
        self.count += 1
        dx = x - self._mean_x
        self._mean_x += dx / self.count
        self._m2_x += dx * (x - self._mean_x)
        dy = y - self._mean_y
        self._mean_y += dy / self.count
        self._m2_y += dy * (y - self._mean_y)
        # Co-moment: pre-update x-delta times post-update y-mean.
        self._c_xy += dx * (y - self._mean_y)

    @property
    def pearson(self) -> float:
        """Pearson correlation coefficient, clamped into [-1, 1]."""
        if self.count < 2 or self._m2_x == 0 or self._m2_y == 0:
            return 0.0
        r = self._c_xy / math.sqrt(self._m2_x * self._m2_y)
        return max(-1.0, min(1.0, r))

    @property
    def slope(self) -> float:
        """Least-squares slope of y on x (the trend-direction check)."""
        if self._m2_x == 0:
            return 0.0
        return self._c_xy / self._m2_x

    @property
    def intercept(self) -> float:
        return self._mean_y - self.slope * self._mean_x

    def result(self) -> Dict[str, Any]:
        return {
            "x": self.x_field,
            "y": self.y_field,
            "count": self.count,
            "pearson": self.pearson,
            "slope": self.slope,
            "intercept": self.intercept,
        }


class FractionTrue(Aggregator):
    """Fraction of records whose ``field`` is truthy."""

    def __init__(self, field: str):
        self.field = field
        self.name = f"fraction({field})"
        self.count = 0
        self.true_count = 0

    def add(self, record: Mapping[str, Any]) -> None:
        self.count += 1
        if record[self.field]:
            self.true_count += 1

    @property
    def fraction(self) -> float:
        return self.true_count / self.count if self.count else 0.0

    def result(self) -> Dict[str, Any]:
        return {
            "field": self.field,
            "count": self.count,
            "true": self.true_count,
            "fraction": self.fraction,
        }


class BinnedMean(Aggregator):
    """Mean of ``y_field`` per half-open bin of ``x_field``.

    ``edges`` are the interior bin boundaries: ``[0.5, 1.0]`` makes the
    bins ``x < 0.5``, ``0.5 <= x < 1.0``, ``x >= 1.0``.  Feeds the
    human-readable trend table next to the regression numbers.
    """

    def __init__(self, x_field: str, y_field: str, edges: Sequence[float]):
        if list(edges) != sorted(edges):
            raise ValueError(f"bin edges must be ascending, got {list(edges)}")
        self.x_field = x_field
        self.y_field = y_field
        self.edges = tuple(float(edge) for edge in edges)
        self.name = f"bins({y_field} ~ {x_field})"
        self.counts = [0] * (len(self.edges) + 1)
        self.sums = [0.0] * (len(self.edges) + 1)

    def _bin(self, x: float) -> int:
        for k, edge in enumerate(self.edges):
            if x < edge:
                return k
        return len(self.edges)

    def add(self, record: Mapping[str, Any]) -> None:
        k = self._bin(float(record[self.x_field]))
        self.counts[k] += 1
        self.sums[k] += float(record[self.y_field])

    def rows(self) -> List[Dict[str, Any]]:
        """One row per bin: label, count, mean (None when empty)."""
        bounds = (-math.inf,) + self.edges + (math.inf,)
        rows = []
        for k in range(len(self.counts)):
            lo, hi = bounds[k], bounds[k + 1]
            if lo == -math.inf:
                label = f"< {hi:g}"
            elif hi == math.inf:
                label = f">= {lo:g}"
            else:
                label = f"{lo:g} - {hi:g}"
            mean = self.sums[k] / self.counts[k] if self.counts[k] else None
            rows.append({"bin": label, "count": self.counts[k], "mean": mean})
        return rows

    def result(self) -> Dict[str, Any]:
        return {"x": self.x_field, "y": self.y_field, "rows": self.rows()}


class ParetoFront(Aggregator):
    """Streaming non-dominated set, minimizing every field in ``fields``.

    A record is dominated when some other record is no worse on every
    objective and strictly better on at least one; only the current
    front is held in memory.  ``keep`` lists extra (non-objective)
    fields to carry along for labeling the surviving points.  The
    result is sorted by the objective values (then the kept fields), so
    it is independent of arrival order — and therefore identical for
    serial, parallel, and resumed runs.
    """

    def __init__(self, fields: Sequence[str], keep: Sequence[str] = ()):
        if not fields:
            raise ValueError("ParetoFront needs at least one objective field")
        self.fields = tuple(fields)
        self.keep = tuple(keep)
        self.name = f"pareto({', '.join(self.fields)})"
        self.count = 0
        self._front: List[Dict[str, Any]] = []

    def _objectives(self, point: Mapping[str, Any]) -> List[float]:
        return [float(point[field]) for field in self.fields]

    @staticmethod
    def _dominates(a: List[float], b: List[float]) -> bool:
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    def add(self, record: Mapping[str, Any]) -> None:
        self.count += 1
        point = {field: record[field] for field in self.fields}
        for field in self.keep:
            if field in record:
                point[field] = record[field]
        objectives = self._objectives(point)
        kept_objectives = [self._objectives(p) for p in self._front]
        if any(self._dominates(other, objectives) for other in kept_objectives):
            return
        self._front = [
            p
            for p, other in zip(self._front, kept_objectives)
            if not self._dominates(objectives, other)
        ]
        self._front.append(point)

    def points(self) -> List[Dict[str, Any]]:
        """The current front, deterministically sorted."""
        def sort_key(point: Dict[str, Any]):
            extras = tuple(str(point.get(field)) for field in self.keep)
            return tuple(self._objectives(point)) + extras

        return sorted(self._front, key=sort_key)

    def result(self) -> Dict[str, Any]:
        return {
            "fields": list(self.fields),
            "count": self.count,
            "size": len(self._front),
            "points": self.points(),
        }


class JsonlPointSink(Aggregator):
    """Every point record as one sorted-keys JSON line.

    The file opens lazily in write mode on the first record, so a
    resumed run — which replays journaled points from the start —
    rewrites it from scratch and lands on bytes identical to an
    uninterrupted run's.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.name = f"jsonl({self.path.name})"
        self.count = 0
        self._handle: Optional[Any] = None

    def add(self, record: Mapping[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
        self._handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
        self.count += 1

    def result(self) -> Dict[str, Any]:
        return {"path": str(self.path), "count": self.count}

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
