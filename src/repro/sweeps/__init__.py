"""Generic, resumable, streaming design-space sweeps.

The package splits a sweep into four orthogonal pieces:

* :mod:`repro.sweeps.spec` — *what* to sweep: named axes, grid /
  random / latin-hypercube sampling, derived per-point seeds.
* :mod:`repro.sweeps.engine` — *how* to run it: worker fan-out,
  retry/chaos policy, and checkpoint/resume inherited from the
  :class:`~repro.runtime.session.Runtime`.
* :mod:`repro.sweeps.aggregate` — *what to keep*: incremental
  statistics (mean/stdev, Pearson r, trend regression) and JSONL point
  sinks, so population-scale sweeps never hold their points in memory.
* :mod:`repro.sweeps.store` — *durability*: atomic per-shard journal
  files plus a clock-free manifest, byte-identical across
  kill-and-resume.

The thin sweep helpers in :mod:`repro.core.sweep` and the experiments
(``correlation``, ``ablation``, ``population``) are all built on this
engine.
"""

from .aggregate import (
    Aggregator,
    BinnedMean,
    FractionTrue,
    JsonlPointSink,
    ParetoFront,
    RunningStats,
    StreamingRegression,
)
from .engine import SweepEngine, SweepRunResult
from .spec import Axis, SweepPointSpec, SweepSpec, derive_seed
from .store import ShardStore

__all__ = [
    "Aggregator",
    "Axis",
    "BinnedMean",
    "FractionTrue",
    "JsonlPointSink",
    "ParetoFront",
    "RunningStats",
    "ShardStore",
    "StreamingRegression",
    "SweepEngine",
    "SweepPointSpec",
    "SweepRunResult",
    "SweepSpec",
    "derive_seed",
]
