"""Typed exception hierarchy for the whole package.

Every error the package raises deliberately derives from
:class:`ReproError`, so callers can catch one base for "anything this
library objected to" while still discriminating precisely.  The
hierarchy is *additive*: classes that used to be (or subclass) bare
``ValueError`` / ``KeyError`` keep those parents, so existing
``except ValueError`` call sites continue to work unchanged.

Layering: this module imports nothing from the rest of ``repro`` — it
sits below :mod:`repro.observability` and :mod:`repro.runtime.config`
so any layer (parsers, ATPG kernels, runtime, CLIs) can raise typed
errors without cycles.

The job-failure branch (:class:`JobFailure` and subclasses) is the
vocabulary of the resilient executor
(:mod:`repro.runtime.executor`): workers raise them, the retry policy
classifies them (``transient`` / ``retry_with_new_seed``), and the
per-job :class:`~repro.runtime.executor.JobRecord` records them as
outcomes.  They must stay picklable — they cross process-pool
boundaries — which is why they carry only their message string.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of every deliberate error raised by the package."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value (worker counts, engine knobs...)."""


# -- input parsing -----------------------------------------------------------


class NetlistParseError(ReproError, ValueError):
    """Base of the netlist loader errors (.bench, structural Verilog,
    structural validation).  ``repro.circuit`` raises subclasses
    (``BenchFormatError``, ``VerilogFormatError``, ``NetlistError``)."""


class SocFormatError(ReproError, ValueError):
    """Raised on malformed SOC-description input; carries the offending
    line number when one is known."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class UnknownBenchmarkError(ReproError, KeyError):
    """An ITC'02 benchmark name outside the shipped suite."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep the readable message.
        return self.args[0] if self.args else ""


# -- caching and checkpointing ----------------------------------------------


class CacheCorruptionError(ReproError, ValueError):
    """A cache or journal entry whose content cannot be trusted.

    The stores never let this escape a lookup: the offending file is
    quarantined and the lookup reports a miss so the result is
    recomputed.  The class exists so the quarantine path has a typed
    cause to log and count.
    """


# -- test scheduling ---------------------------------------------------------


class ScheduleError(ReproError, AssertionError):
    """A test schedule violated a resource budget or its own shape.

    Raised by :meth:`repro.tam.Schedule.verify` (TAM wires
    over-committed, zero-width or negative-duration slots) and
    :func:`repro.tam.verify_power` (power budget exceeded).  Keeps
    ``AssertionError`` as a parent because these checks used to be bare
    asserts; existing ``except AssertionError`` call sites still work.
    """


# -- the job service ----------------------------------------------------------


class ServiceError(ReproError):
    """Base of the ATPG job service errors (:mod:`repro.service`).

    Subclasses map one-to-one onto HTTP status codes, travel across the
    wire as ``{"error": {"type": ..., "message": ...}}`` payloads, and
    are re-raised *as the same type* by the client — a quota rejection
    is a :class:`QuotaExceededError` whether it happened in-process or
    three network hops away.
    """


class QuotaExceededError(ServiceError):
    """A tenant has more live (queued or running) jobs than its quota."""


class RateLimitedError(ServiceError):
    """A tenant submitted faster than its token bucket refills."""


class UnknownJobError(ServiceError, KeyError):
    """A job id the server has never issued (or has already dropped)."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep the readable message.
        return self.args[0] if self.args else ""


class JobStateError(ServiceError):
    """An operation that is invalid in the job's current state, e.g.
    fetching the result of a still-queued job or cancelling a finished
    one."""


# -- job execution -----------------------------------------------------------


class JobFailure(ReproError):
    """Base of the executor's job-failure vocabulary.

    ``transient`` marks failures where an identical retry can succeed
    (crashed worker, injected flakiness); ``retry_with_new_seed`` marks
    failures that are deterministic under the same configuration, where
    a retry is only worth attempting under a perturbed seed (timeouts,
    exhausted search budgets).
    """

    transient = False
    retry_with_new_seed = False


class JobTimeoutError(JobFailure):
    """A job exceeded its wall-clock deadline (cooperative abort)."""

    retry_with_new_seed = True


class AbortedError(JobFailure):
    """A job exhausted its backtrack budget (cooperative abort)."""

    retry_with_new_seed = True


class WorkerCrashError(JobFailure):
    """The worker process executing a job died (or was chaos-killed)."""

    transient = True


class FlakyWorkerError(JobFailure):
    """A transient, injected failure from the chaos harness."""

    transient = True


class JobRetriesExhaustedError(JobFailure):
    """A job kept failing after every allowed retry attempt."""
