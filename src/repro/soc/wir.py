"""IEEE 1500 wrapper-instruction overhead.

Switching a core's wrapper between Functional, InTest, ExTest and
Bypass is done by shifting an instruction into its Wrapper Instruction
Register (WIR) over the serial wrapper interface.  The paper's TDV
model ignores these control bits — justifiably, as this module shows:
the instruction traffic for a whole modular test session is linear in
the number of cores, not in patterns or scan cells, so it vanishes
against the data volumes of Tables 1–4.  Quantifying that is the
point of the :func:`wir_overhead_report` ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from .hierarchy import isocost
from .model import Soc


class WirInstruction(enum.Enum):
    """The instruction set of a minimal IEEE 1500-style wrapper."""

    WS_BYPASS = 0b000
    WS_FUNCTIONAL = 0b001
    WS_INTEST = 0b010
    WS_EXTEST = 0b011
    WS_SAFE = 0b100  # park outputs at safe values while neighbours test

    @classmethod
    def width(cls) -> int:
        """Bits per instruction (enough to encode the whole set)."""
        return max(member.value for member in cls).bit_length()


@dataclass(frozen=True)
class WirSession:
    """The instruction traffic of one modular test session."""

    soc_name: str
    instruction_bits: int
    loads: int  # instruction loads over the whole session

    @property
    def total_bits(self) -> int:
        return self.instruction_bits * self.loads


def session_instruction_loads(soc: Soc) -> int:
    """Instruction loads for one full modular session.

    Testing core P requires: P's wrapper to InTest, each direct child's
    wrapper to ExTest, and afterwards all of them back to Bypass/Safe —
    two loads per involved wrapper per core test, summed over cores.
    The top core's chip pins need no wrapper (Tables 1–2 convention),
    but its children still switch.
    """
    loads = 0
    for core in soc:
        involved = 1 + len(core.children)  # the core itself plus children
        if core.name == soc.top_name:
            involved -= 1  # chip-level pins carry no wrapper
        loads += 2 * involved  # configure before, restore after
    return loads


def wir_session(soc: Soc) -> WirSession:
    return WirSession(
        soc_name=soc.name,
        instruction_bits=WirInstruction.width(),
        loads=session_instruction_loads(soc),
    )


@dataclass(frozen=True)
class WirOverheadReport:
    """Instruction bits against the session's test data volume."""

    session: WirSession
    tdv_modular: int

    @property
    def overhead_fraction(self) -> float:
        if self.tdv_modular == 0:
            return float("inf")
        return self.session.total_bits / self.tdv_modular


def wir_overhead_report(soc: Soc) -> WirOverheadReport:
    """The ablation: how much the ignored WIR traffic actually costs."""
    from ..core.tdv import tdv_modular

    return WirOverheadReport(
        session=wir_session(soc),
        tdv_modular=tdv_modular(soc),
    )


def suite_wir_overheads(socs: List[Soc]) -> Dict[str, float]:
    """Overhead fractions for a list of SOCs, keyed by name."""
    return {
        soc.name: wir_overhead_report(soc).overhead_fraction for soc in socs
    }
