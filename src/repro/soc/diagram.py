"""Text rendering of SOC hierarchies (the Figure 3 structural view).

The paper sketches p34392's embedding structure graphically; this module
produces the equivalent text tree with per-core annotations, which the
survey example and the Table 3 bench use to make the hierarchy
inspectable.
"""

from __future__ import annotations

from typing import List

from .hierarchy import isocost
from .model import Core, Soc


def hierarchy_tree(soc: Soc, annotate: bool = True) -> str:
    """An indented tree of the SOC's embedding structure.

    Roots first (the top core leads), children indented beneath their
    parent.  With ``annotate``, each line carries the core's I/O,
    scan-cell and pattern counts plus its Eq. 5 isolation cost.
    """
    lines: List[str] = [f"Soc {soc.name}"]
    roots = soc.roots()
    ordered = [soc.top] + [core for core in roots if core.name != soc.top_name]

    def describe(core: Core) -> str:
        if not annotate:
            return core.name
        return (
            f"{core.name}  "
            f"[I={core.inputs} O={core.outputs}"
            + (f" B={core.bidirs}" if core.bidirs else "")
            + f" S={core.scan_cells} T={core.patterns}"
            f" ISO={isocost(soc, core.name)}]"
        )

    def walk(core: Core, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + describe(core))
        child_prefix = prefix + ("    " if is_last else "|   ")
        children = soc.children_of(core.name)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1)

    for index, root in enumerate(ordered):
        walk(root, "", index == len(ordered) - 1)
    return "\n".join(lines)


def hierarchy_depth(soc: Soc) -> int:
    """Maximum embedding depth (0 for a flat SOC's functional cores ...
    measured from the roots)."""
    return max(soc.depth_of(core.name) for core in soc)


def hierarchy_summary(soc: Soc) -> str:
    """One-line structural summary: core counts by depth."""
    by_depth = {}
    for core in soc:
        by_depth.setdefault(soc.depth_of(core.name), 0)
        by_depth[soc.depth_of(core.name)] += 1
    parts = [f"depth {d}: {by_depth[d]}" for d in sorted(by_depth)]
    return f"{soc.name}: {len(soc)} cores ({', '.join(parts)})"
