"""Fluent construction API for SOC descriptions.

The experiments assemble SOCs in three ways — by hand (Tables 1–2), from
ITC'02 files (Tables 3–4), and synthetically (sweeps).  ``SocBuilder``
is the by-hand path: it accumulates cores, wires up the hierarchy, and
validates once at :meth:`SocBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .model import Core, Soc, SocModelError


class SocBuilder:
    """Incrementally assemble a :class:`~repro.soc.model.Soc`.

    Example (the paper's SOC1 skeleton)::

        soc = (
            SocBuilder("SOC1")
            .add_top("Core0", inputs=51, outputs=10, patterns=2,
                     children=["Core1", "Core2", "Core3", "Core4", "Core5"])
            .add_core("Core1", inputs=35, outputs=23, scan_cells=19, patterns=52)
            ...
            .build()
        )
    """

    def __init__(self, name: str):
        self.name = name
        self._cores: List[Core] = []
        self._top_name: Optional[str] = None
        self._pending_children: Dict[str, List[str]] = {}

    def add_core(
        self,
        name: str,
        inputs: int = 0,
        outputs: int = 0,
        bidirs: int = 0,
        scan_cells: int = 0,
        patterns: int = 0,
        children: Optional[List[str]] = None,
    ) -> "SocBuilder":
        """Add one core; ``children`` may name cores added later."""
        self._cores.append(
            Core(
                name=name,
                inputs=inputs,
                outputs=outputs,
                bidirs=bidirs,
                scan_cells=scan_cells,
                patterns=patterns,
                children=list(children) if children else [],
            )
        )
        return self

    def add_top(
        self,
        name: str,
        inputs: int = 0,
        outputs: int = 0,
        bidirs: int = 0,
        scan_cells: int = 0,
        patterns: int = 0,
        children: Optional[List[str]] = None,
    ) -> "SocBuilder":
        """Add the chip-level core and mark it as the SOC top."""
        if self._top_name is not None:
            raise SocModelError(
                f"SOC {self.name!r} already has top core {self._top_name!r}"
            )
        self._top_name = name
        return self.add_core(
            name, inputs=inputs, outputs=outputs, bidirs=bidirs,
            scan_cells=scan_cells, patterns=patterns, children=children,
        )

    def embed(self, parent: str, child: str) -> "SocBuilder":
        """Record that ``parent`` directly embeds ``child``.

        Both cores may be added before or after this call; the embedding
        is resolved at :meth:`build`.
        """
        self._pending_children.setdefault(parent, []).append(child)
        return self

    def build(self) -> Soc:
        """Validate and produce the immutable SOC description."""
        if not self._cores:
            raise SocModelError(f"SOC {self.name!r} has no cores")
        cores = []
        for core in self._cores:
            extra = self._pending_children.get(core.name, [])
            if extra:
                merged = list(core.children)
                for child in extra:
                    if child in merged:
                        raise SocModelError(
                            f"SOC {self.name!r}: {core.name!r} embeds "
                            f"{child!r} twice"
                        )
                    merged.append(child)
                core = Core(
                    name=core.name, inputs=core.inputs, outputs=core.outputs,
                    bidirs=core.bidirs, scan_cells=core.scan_cells,
                    patterns=core.patterns, children=merged,
                )
            cores.append(core)
        known = {core.name for core in cores}
        for parent in self._pending_children:
            if parent not in known:
                raise SocModelError(
                    f"SOC {self.name!r}: embed() references unknown core {parent!r}"
                )
        return Soc(self.name, cores, top=self._top_name)
