"""Flattening: the monolithic view of a modular SOC.

The paper's monolithic baseline tests the flattened design "with
isolation logic ripped out": one design whose terminals are the chip
I/Os and whose scan cells are the union of all core scan cells.
:func:`flatten` produces that single-core view so the Eq. 1/3 volumes
can be computed through exactly the same code path as any other core.
"""

from __future__ import annotations

from typing import Optional

from .model import Core, Soc


def flatten(soc: Soc, monolithic_patterns: Optional[int] = None) -> Soc:
    """Collapse an SOC into its single-core monolithic equivalent.

    The result has one core carrying the chip-level I/O of the original
    top, all scan cells of all cores, and a pattern count of
    ``monolithic_patterns`` (defaulting to the Eq. 2 lower bound — the
    optimistic monolithic test of Eq. 3).
    """
    top = soc.top
    patterns = (
        soc.max_core_patterns if monolithic_patterns is None else monolithic_patterns
    )
    if patterns < soc.max_core_patterns:
        raise ValueError(
            f"monolithic pattern count {patterns} violates the Eq. 2 lower "
            f"bound {soc.max_core_patterns}"
        )
    flat_core = Core(
        name=f"{soc.name}_flat",
        inputs=top.inputs,
        outputs=top.outputs,
        bidirs=top.bidirs,
        scan_cells=soc.total_scan_cells,
        patterns=patterns,
    )
    return Soc(f"{soc.name}_flat", [flat_core], top=flat_core.name)


def flat_bits_per_pattern(soc: Soc) -> int:
    """Per-pattern bit width of the flattened design (Eq. 1's first factor)."""
    return soc.chip_io_terminals + 2 * soc.total_scan_cells
