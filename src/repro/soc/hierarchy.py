"""Hierarchy-aware isolation cost (``ISOCOST``) computation.

Equation 5 of the paper: when a parent core ``P`` is tested, its own
wrapper is in InTest mode while the wrappers of its direct children are
in ExTest mode.  Per pattern this costs one bit per parent terminal
(``I + O + 2B`` of the parent) plus one bit per child terminal
(``I + O + 2B`` summed over direct children) — the wrapper cells that
must be controlled and observed around the logic under test.
"""

from __future__ import annotations

from typing import Dict

from .model import Core, Soc


def isocost(soc: Soc, core_name: str, chip_pin_wrappers: bool = True) -> int:
    """Per-pattern isolation cost of testing one core (Eq. 5).

    ``ISOCOST_P = I_P + O_P + 2 B_P + sum_{C in Child(P)} (I_C + O_C + 2 B_C)``

    ``chip_pin_wrappers=False`` selects the convention of the paper's
    Tables 1 and 2, where the SOC *top* core's own terminals are chip
    pins — directly accessible from the ATE, hence needing no dedicated
    wrapper cells — and only the children's terminals are counted
    (Table 1's top row is exactly ``2 x 163``).  Table 3 appears to
    include the chip terminals, which Eq. 5 taken literally also does,
    so that remains the default.
    """
    parent = soc[core_name]
    if chip_pin_wrappers or core_name != soc.top_name:
        cost = parent.io_terminals
    else:
        cost = 0
    for child in soc.children_of(core_name):
        cost += child.io_terminals
    return cost


def isocost_table(soc: Soc, chip_pin_wrappers: bool = True) -> Dict[str, int]:
    """ISOCOST for every core of the SOC, keyed by core name."""
    return {
        core.name: isocost(soc, core.name, chip_pin_wrappers) for core in soc
    }


def core_test_bits_per_pattern(
    soc: Soc, core_name: str, chip_pin_wrappers: bool = True
) -> int:
    """Bits shifted per pattern when testing one core: ``2 S_P + ISOCOST_P``."""
    core = soc[core_name]
    return core.scan_bits_per_pattern + isocost(soc, core_name, chip_pin_wrappers)


def core_tdv(soc: Soc, core_name: str, chip_pin_wrappers: bool = True) -> int:
    """Test data volume of one core's stand-alone test (Eq. 4 summand)."""
    core = soc[core_name]
    return core.patterns * core_test_bits_per_pattern(
        soc, core_name, chip_pin_wrappers
    )


def wrapper_cell_count(soc: Soc, core_name: str) -> int:
    """Number of dedicated wrapper cells active while testing one core.

    One wrapper cell per parent terminal and per direct-child terminal;
    bidirectionals need a cell on each direction, hence the factor two in
    :func:`isocost`.  This equals ``ISOCOST`` because the paper assumes a
    dedicated cell on every core I/O (its stated pessimistic isolation
    scheme).
    """
    return isocost(soc, core_name)


def validate_schedulable(soc: Soc) -> None:
    """Check the modular-test preconditions the analysis relies on.

    Every core must be testable stand-alone: it needs a non-negative
    pattern count, and hierarchical parents must not share children (the
    :class:`~repro.soc.model.Soc` constructor already enforces single
    parenthood and acyclicity).  Kept as an explicit hook so callers can
    assert the preconditions where they matter.
    """
    for core in soc:
        if core.patterns < 0:  # pragma: no cover - Core.__post_init__ blocks this
            raise ValueError(f"core {core.name!r} has negative pattern count")
