"""Shared (functional-cell) isolation — the paper's own relaxation.

Section 3: "we assume that cores are wrapped by using dedicated cells
on each core I/O.  While such an isolation scheme ensures full
isolation, it is nevertheless a pessimistic approach in terms of test
data volume.  The utilization of functional registers along with
dedicated cells may lead to reduced test data volume penalty."

This module models exactly that relaxation: a fraction of each core's
terminals is isolated by *reusing* existing functional/scan registers
that already carry a stimulus/response bit in the core's test, so only
the remaining terminals need dedicated wrapper cells.  The effective
isolation cost becomes

    ISOCOST_eff(P) = own_cells(P) + Σ_C child_cells(C)

with ``cells(X) = ceil((1 - sharing) * (I+O+2B)_X)``.  At ``sharing=0``
this is the paper's Eq. 5; at ``sharing=1`` isolation is free and the
modular benefit is pure.  The ablation charts how the Table-4 outcomes
move between those poles — in particular, how much sharing g12710
needs before modular testing wins there too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..core.tdv import (
    monolithic_pattern_lower_bound,
    tdv_monolithic,
)
from .model import Soc


def shared_isocost(soc: Soc, core_name: str, sharing: float) -> int:
    """Eq. 5 with a fraction of terminals isolated by functional cells."""
    if not 0.0 <= sharing <= 1.0:
        raise ValueError(f"sharing must be in [0, 1], got {sharing}")
    parent = soc[core_name]
    cost = _dedicated_cells(parent.io_terminals, sharing)
    for child in soc.children_of(core_name):
        cost += _dedicated_cells(child.io_terminals, sharing)
    return cost


def _dedicated_cells(terminals: int, sharing: float) -> int:
    return math.ceil((1.0 - sharing) * terminals)


def tdv_modular_shared(soc: Soc, sharing: float) -> int:
    """Eq. 4 under partial functional-register isolation."""
    return sum(
        core.patterns
        * (core.scan_bits_per_pattern + shared_isocost(soc, core.name, sharing))
        for core in soc
    )


def tdv_penalty_shared(soc: Soc, sharing: float) -> int:
    """Eq. 7 under partial functional-register isolation."""
    return sum(
        core.patterns * shared_isocost(soc, core.name, sharing) for core in soc
    )


@dataclass(frozen=True)
class SharingPoint:
    """One SOC evaluated at one sharing fraction."""

    sharing: float
    tdv_modular: int
    tdv_penalty: int
    modular_change_fraction: float


def sharing_sweep(
    soc: Soc,
    fractions: Optional[List[float]] = None,
    monolithic_patterns: Optional[int] = None,
) -> List[SharingPoint]:
    """Modular TDV across the dedicated-to-shared isolation spectrum."""
    if fractions is None:
        fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    mono = tdv_monolithic(soc, t_mono)
    points = []
    for sharing in fractions:
        modular = tdv_modular_shared(soc, sharing)
        points.append(
            SharingPoint(
                sharing=sharing,
                tdv_modular=modular,
                tdv_penalty=tdv_penalty_shared(soc, sharing),
                modular_change_fraction=(modular - mono) / mono,
            )
        )
    return points


def breakeven_sharing(
    soc: Soc,
    tolerance: float = 1e-3,
    monolithic_patterns: Optional[int] = None,
) -> Optional[float]:
    """The sharing fraction where modular testing breaks even.

    Returns None when modular testing already wins at ``sharing=0``
    (most SOCs) or still loses at ``sharing=1`` (impossible unless the
    benefit itself is negative, which Eq. 8 forbids — kept for
    robustness).  For g12710 this locates the isolation quality the
    paper's pessimism hides.
    """
    def change(sharing: float) -> float:
        return sharing_sweep(
            soc, [sharing], monolithic_patterns=monolithic_patterns
        )[0].modular_change_fraction

    lo, hi = 0.0, 1.0
    f_lo, f_hi = change(lo), change(hi)
    if f_lo <= 0:
        return None  # already winning with fully dedicated cells
    if f_hi > 0:
        return None  # cannot win even with free isolation
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if change(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
