"""Data model for modular SOCs.

The paper's test data volume analysis characterizes every module of a
system-on-chip by five integers: the number of functional inputs ``I``,
outputs ``O``, bidirectional ports ``B``, internal scan cells ``S``, and
the number of test patterns ``T`` its stand-alone test applies.  A module
may embed child modules, which yields the hierarchical cores of the
ITC'02 benchmarks (Figure 3 of the paper).

:class:`Core` captures one module; :class:`Soc` is a collection of cores
with a designated top level (core 0 in the ITC'02 convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence


class SocModelError(ValueError):
    """Raised when an SOC description is structurally invalid."""


@dataclass
class Core:
    """One module of an SOC, as seen by the TDV analysis.

    Parameters mirror the paper's notation (Section 4):

    ``inputs``
        Number of functional input terminals, :math:`I`.
    ``outputs``
        Number of functional output terminals, :math:`O`.
    ``bidirs``
        Number of bidirectional terminals, :math:`B`.  Each contributes
        both a stimulus and a response bit per pattern.
    ``scan_cells``
        Number of internal scan cells, :math:`S`.  Each contributes both
        a stimulus and a response bit per pattern.
    ``patterns``
        Number of test patterns of the core's stand-alone test,
        :math:`T`.
    ``children``
        Names of cores embedded directly inside this core (hierarchical
        cores).  When this core is tested in InTest mode, the wrappers of
        its children operate in ExTest mode, so the children's terminals
        must be controlled/observed as part of this core's test.
    """

    name: str
    inputs: int = 0
    outputs: int = 0
    bidirs: int = 0
    scan_cells: int = 0
    patterns: int = 0
    children: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SocModelError("core name must be non-empty")
        for attr in ("inputs", "outputs", "bidirs", "scan_cells", "patterns"):
            value = getattr(self, attr)
            if not isinstance(value, int):
                raise SocModelError(
                    f"core {self.name!r}: {attr} must be an int, got {type(value).__name__}"
                )
            if value < 0:
                raise SocModelError(f"core {self.name!r}: {attr} must be >= 0, got {value}")
        if len(set(self.children)) != len(self.children):
            raise SocModelError(f"core {self.name!r}: duplicate child names")
        if self.name in self.children:
            raise SocModelError(f"core {self.name!r} cannot embed itself")

    @property
    def io_terminals(self) -> int:
        """Functional terminal bits per pattern: :math:`I + O + 2B`."""
        return self.inputs + self.outputs + 2 * self.bidirs

    @property
    def scan_bits_per_pattern(self) -> int:
        """Scan stimulus+response bits per pattern: :math:`2S`."""
        return 2 * self.scan_cells

    @property
    def is_hierarchical(self) -> bool:
        """True when this core directly embeds other cores."""
        return bool(self.children)

    def with_patterns(self, patterns: int) -> "Core":
        """Return a copy of this core with a different pattern count."""
        return Core(
            name=self.name,
            inputs=self.inputs,
            outputs=self.outputs,
            bidirs=self.bidirs,
            scan_cells=self.scan_cells,
            patterns=patterns,
            children=list(self.children),
        )


class Soc:
    """A system-on-chip: a named set of :class:`Core` objects plus a top level.

    The top-level core plays a double role, exactly as in the ITC'02
    benchmark format: its ``inputs``/``outputs``/``bidirs`` are the chip's
    external terminals, and its ``scan_cells``/``patterns`` describe the
    test of the top-level glue logic.
    """

    def __init__(self, name: str, cores: Sequence[Core], top: Optional[str] = None):
        if not cores:
            raise SocModelError(f"SOC {name!r} must contain at least one core")
        self.name = name
        self._cores: Dict[str, Core] = {}
        for core in cores:
            if core.name in self._cores:
                raise SocModelError(f"SOC {name!r}: duplicate core name {core.name!r}")
            self._cores[core.name] = core
        self.top_name = top if top is not None else cores[0].name
        if self.top_name not in self._cores:
            raise SocModelError(f"SOC {name!r}: top core {self.top_name!r} not present")
        self._validate_hierarchy()

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Core]:
        return iter(self._cores.values())

    def __len__(self) -> int:
        return len(self._cores)

    def __contains__(self, name: str) -> bool:
        return name in self._cores

    def __getitem__(self, name: str) -> Core:
        try:
            return self._cores[name]
        except KeyError:
            raise KeyError(f"SOC {self.name!r} has no core named {name!r}") from None

    def __repr__(self) -> str:
        return f"Soc(name={self.name!r}, cores={len(self)}, top={self.top_name!r})"

    # -- structure ----------------------------------------------------------

    @property
    def top(self) -> Core:
        """The top-level core (chip I/O plus top-level glue logic)."""
        return self._cores[self.top_name]

    @property
    def cores(self) -> List[Core]:
        """All cores, in insertion order (top first in ITC'02 convention)."""
        return list(self._cores.values())

    def core_names(self) -> List[str]:
        return list(self._cores.keys())

    def children_of(self, name: str) -> List[Core]:
        """Direct children of the named core."""
        return [self._cores[child] for child in self[name].children]

    def parent_of(self, name: str) -> Optional[Core]:
        """The core that directly embeds ``name``, or None for roots."""
        self[name]  # raise KeyError for unknown cores
        for core in self:
            if name in core.children:
                return core
        return None

    def descendants_of(self, name: str) -> List[Core]:
        """All cores transitively embedded inside the named core."""
        result: List[Core] = []
        stack = list(self[name].children)
        while stack:
            child = self[stack.pop()]
            result.append(child)
            stack.extend(child.children)
        return result

    def roots(self) -> List[Core]:
        """Cores that are not embedded in any other core."""
        embedded = {child for core in self for child in core.children}
        return [core for core in self if core.name not in embedded]

    def depth_of(self, name: str) -> int:
        """Nesting depth of a core: 0 for roots, 1 for their children, ..."""
        depth = 0
        parent = self.parent_of(name)
        while parent is not None:
            depth += 1
            parent = self.parent_of(parent.name)
        return depth

    # -- aggregates used by the TDV formulas ---------------------------------

    @property
    def chip_io_terminals(self) -> int:
        """Chip-level terminal bits per pattern: :math:`I_{chip}+O_{chip}+2B_{chip}`."""
        return self.top.io_terminals

    @property
    def total_scan_cells(self) -> int:
        """Total scan cells over all cores, :math:`S_{chip}` of Eq. 1."""
        return sum(core.scan_cells for core in self)

    @property
    def max_core_patterns(self) -> int:
        """Maximum stand-alone pattern count over all cores (Eq. 2 bound)."""
        return max(core.patterns for core in self)

    def pattern_counts(self) -> List[int]:
        """Stand-alone pattern counts of all cores, in insertion order."""
        return [core.patterns for core in self]

    # -- validation -----------------------------------------------------------

    def _validate_hierarchy(self) -> None:
        parents: Dict[str, str] = {}
        for core in self:
            for child in core.children:
                if child not in self._cores:
                    raise SocModelError(
                        f"SOC {self.name!r}: core {core.name!r} embeds "
                        f"unknown core {child!r}"
                    )
                if child in parents:
                    raise SocModelError(
                        f"SOC {self.name!r}: core {child!r} embedded by both "
                        f"{parents[child]!r} and {core.name!r}"
                    )
                parents[child] = core.name
        # Reject embedding cycles: every core must reach a root.
        for core in self:
            seen = {core.name}
            parent = parents.get(core.name)
            while parent is not None:
                if parent in seen:
                    raise SocModelError(
                        f"SOC {self.name!r}: embedding cycle through {parent!r}"
                    )
                seen.add(parent)
                parent = parents.get(parent)


def make_soc(name: str, cores: Iterable[Core], top: Optional[str] = None) -> Soc:
    """Convenience constructor accepting any iterable of cores."""
    return Soc(name, list(cores), top=top)
