"""SOC data model: cores, hierarchy, wrappers, flattening."""

from .builder import SocBuilder
from .diagram import hierarchy_depth, hierarchy_summary, hierarchy_tree
from .flatten import flat_bits_per_pattern, flatten
from .hierarchy import (
    core_tdv,
    core_test_bits_per_pattern,
    isocost,
    isocost_table,
    wrapper_cell_count,
)
from .model import Core, Soc, SocModelError, make_soc
from .shared_isolation import (
    SharingPoint,
    breakeven_sharing,
    shared_isocost,
    sharing_sweep,
    tdv_modular_shared,
    tdv_penalty_shared,
)
from .wir import (
    WirInstruction,
    WirOverheadReport,
    WirSession,
    session_instruction_loads,
    wir_overhead_report,
    wir_session,
)
from .wrapper import (
    Wrapper,
    WrapperCell,
    WrapperCellKind,
    WrapperMode,
    isocost_from_wrappers,
    wrapper_area_cells,
)

__all__ = [
    "Core",
    "SharingPoint",
    "Soc",
    "SocBuilder",
    "SocModelError",
    "WirInstruction",
    "WirOverheadReport",
    "WirSession",
    "Wrapper",
    "WrapperCell",
    "WrapperCellKind",
    "WrapperMode",
    "core_tdv",
    "core_test_bits_per_pattern",
    "flat_bits_per_pattern",
    "flatten",
    "hierarchy_depth",
    "hierarchy_summary",
    "hierarchy_tree",
    "isocost",
    "isocost_from_wrappers",
    "isocost_table",
    "make_soc",
    "breakeven_sharing",
    "session_instruction_loads",
    "shared_isocost",
    "sharing_sweep",
    "tdv_modular_shared",
    "tdv_penalty_shared",
    "wir_overhead_report",
    "wir_session",
    "wrapper_area_cells",
    "wrapper_cell_count",
]
