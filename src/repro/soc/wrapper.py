"""IEEE 1500-style test wrapper modeling.

Modular SOC testing requires every module to be wrapped: a boundary
register of wrapper cells isolates the module and switches between
functional access and test access through the TAM (Zorian et al., ITC
1998; IEEE Std 1500-2005).  The paper assumes the pessimistic isolation
scheme of one dedicated wrapper cell per core terminal; this module makes
that scheme explicit so the ``ISOCOST`` of Eq. 5 can be *derived* from a
wrapper rather than postulated.

Hierarchy is handled as in the paper's Section 4: testing a parent core
puts its own wrapper in :attr:`WrapperMode.INTEST` and the wrappers of
its direct children in :attr:`WrapperMode.EXTEST`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from .model import Core, Soc


class WrapperCellKind(enum.Enum):
    """Direction of the terminal a wrapper cell sits on."""

    INPUT = "input"
    OUTPUT = "output"
    BIDIR_IN = "bidir_in"
    BIDIR_OUT = "bidir_out"


class WrapperMode(enum.Enum):
    """Operating modes of an IEEE 1500-style wrapper."""

    FUNCTIONAL = "functional"  # wrapper transparent, cells idle
    INTEST = "intest"  # module under test: inputs controlled, outputs observed
    EXTEST = "extest"  # surroundings under test: outputs controlled, inputs observed
    BYPASS = "bypass"  # module disconnected from the TAM (paper's assumption
    #                    for cores that are not being tested)


@dataclass(frozen=True)
class WrapperCell:
    """One dedicated wrapper cell on one core terminal."""

    kind: WrapperCellKind
    index: int

    def is_controlled_in(self, mode: WrapperMode) -> bool:
        """Whether this cell needs a stimulus bit per pattern in ``mode``."""
        if mode is WrapperMode.INTEST:
            return self.kind in (WrapperCellKind.INPUT, WrapperCellKind.BIDIR_IN)
        if mode is WrapperMode.EXTEST:
            return self.kind in (WrapperCellKind.OUTPUT, WrapperCellKind.BIDIR_OUT)
        return False

    def is_observed_in(self, mode: WrapperMode) -> bool:
        """Whether this cell needs a response bit per pattern in ``mode``."""
        if mode is WrapperMode.INTEST:
            return self.kind in (WrapperCellKind.OUTPUT, WrapperCellKind.BIDIR_OUT)
        if mode is WrapperMode.EXTEST:
            return self.kind in (WrapperCellKind.INPUT, WrapperCellKind.BIDIR_IN)
        return False


class Wrapper:
    """A boundary register of dedicated wrapper cells for one core."""

    def __init__(self, core: Core):
        self.core_name = core.name
        cells: List[WrapperCell] = []
        cells.extend(WrapperCell(WrapperCellKind.INPUT, i) for i in range(core.inputs))
        cells.extend(WrapperCell(WrapperCellKind.OUTPUT, i) for i in range(core.outputs))
        for i in range(core.bidirs):
            cells.append(WrapperCell(WrapperCellKind.BIDIR_IN, i))
            cells.append(WrapperCell(WrapperCellKind.BIDIR_OUT, i))
        self.cells = cells

    def __len__(self) -> int:
        return len(self.cells)

    def bits_per_pattern(self, mode: WrapperMode) -> int:
        """Stimulus plus response bits this wrapper adds to each pattern.

        With the dedicated-cell scheme, every cell is either controlled
        or observed in InTest and the opposite in ExTest, so both test
        modes cost exactly one bit per cell — which is why Eq. 5 counts
        ``I + O + 2B`` once per core regardless of mode.
        """
        return sum(
            cell.is_controlled_in(mode) + cell.is_observed_in(mode)
            for cell in self.cells
        )


def isocost_from_wrappers(soc: Soc, core_name: str) -> int:
    """Derive Eq. 5's ``ISOCOST`` from explicit wrapper objects.

    The parent's wrapper runs in InTest mode, each direct child's in
    ExTest mode; summing their per-pattern bits reproduces Eq. 5.  A test
    pins this equal to :func:`repro.soc.hierarchy.isocost`.
    """
    cost = Wrapper(soc[core_name]).bits_per_pattern(WrapperMode.INTEST)
    for child in soc.children_of(core_name):
        cost += Wrapper(child).bits_per_pattern(WrapperMode.EXTEST)
    return cost


def wrapper_area_cells(soc: Soc) -> int:
    """Total dedicated wrapper cells across the SOC (an area-cost proxy).

    Section 3 argues per-cone wrapping is unrealistic "due to the area
    and data volume penalty"; this count is the area side of that
    argument and feeds the granularity sweep.  Computed in closed form —
    one dedicated cell per terminal means the count equals the terminal
    total (a test pins this to the explicit :class:`Wrapper` model).
    """
    return sum(core.io_terminals for core in soc)
