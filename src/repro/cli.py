"""The unified ``repro`` command-line tool.

Every entry point of the reproduction is a subcommand here::

    repro tdv <design.soc>            TDV analysis of an SOC description
    repro run <design.bench>          run the ATPG flow on a netlist
    repro vectors <design.bench>      ATPG + scan-vector export
    repro itc02 [name]                list / inspect the benchmark SOCs
    repro experiments <name>          regenerate a paper table/figure
    repro figures <dir>               write the SVG figures
    repro serve                       start the ATPG job server
    repro submit <design.bench>       submit a job to a running server
    repro bench                       load-test a server (multi-tenant)

(``repro atpg`` remains as an alias of ``repro run``; the old
``repro-experiments`` console script forwards to ``repro experiments``
with a DeprecationWarning.)

The ATPG-running subcommands (``run``, ``vectors``, ``experiments``)
share the :mod:`repro.runtime` execution flags — ``--workers`` for
process-parallel fan-out, ``--cache-dir`` / ``--no-cache`` for the
content-addressed result cache — and report the run manifest on
stderr.  All flag groups come from the shared registry
:mod:`repro.flags`, so every subcommand spells every knob the same
way.  Everything prints plain text; exit status is non-zero on bad
input.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .atpg import dump_vectors, export_program
from .circuit import netlist_stats
from .core import decompose, soc_table, summarize
from .experiments.runner import EXPERIMENTS, run_experiments
from .flags import (
    add_client_arguments,
    add_experiment_arguments,
    add_runtime_arguments,
    add_service_arguments,
    experiment_options,
    maybe_profile,
    report_runtime,
    runtime_from_args,
)
from .io import load_netlist, load_soc
from .itc02 import benchmark_names, load
from .itc02.stats import explain_outcome, suite_report
from .soc.diagram import hierarchy_summary, hierarchy_tree


def _cmd_tdv(args: argparse.Namespace) -> int:
    soc = load_soc(args.design)
    if args.json:
        from .core.serialization import analysis_report, dumps

        print(dumps(analysis_report(soc, monolithic_patterns=args.mono_patterns)))
        return 0
    print(hierarchy_summary(soc))
    print()
    print(soc_table(soc, actual_monolithic_patterns=args.mono_patterns))
    summary = summarize(soc, monolithic_patterns=args.mono_patterns)
    print(f"\nTDV monolithic: {summary.tdv_monolithic:,} bits "
          f"(T_mono = {summary.monolithic_patterns})")
    print(f"TDV modular:    {summary.tdv_modular:,} bits "
          f"({100 * summary.modular_change_fraction:+.1f}%)")
    decomposition = decompose(soc, monolithic_patterns=args.mono_patterns)
    print(f"penalty {decomposition.penalty:,} / benefit "
          f"{decomposition.benefit_identity:,} "
          f"(chip-I/O residual {decomposition.residual:,})")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    netlist = load_netlist(args.design)
    print(f"{netlist.name}: {netlist_stats(netlist)}")
    runtime = runtime_from_args(args, seed=args.seed)
    result = runtime.generate(netlist)
    report_runtime(runtime)
    print(f"patterns: {result.pattern_count} "
          f"(random {result.random_pattern_count}, deterministic "
          f"{result.deterministic_pattern_count} from "
          f"{result.pre_compaction_count} pre-compaction)")
    print(f"fault coverage: {100 * result.fault_coverage:.2f}% "
          f"({result.detected_count}/{result.fault_count} collapsed faults, "
          f"{len(result.untestable)} untestable, {len(result.aborted)} aborted)")
    return 0


def _cmd_vectors(args: argparse.Namespace) -> int:
    netlist = load_netlist(args.design)
    runtime = runtime_from_args(args, seed=args.seed)
    result = runtime.generate(netlist)
    report_runtime(runtime)
    program = export_program(netlist, result, chain_count=args.chains)
    text = dump_vectors(program)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {program.pattern_count} patterns "
              f"({program.total_bits():,} bits) to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_itc02(args: argparse.Namespace) -> int:
    if args.name is None:
        print(suite_report())
        return 0
    if args.name not in benchmark_names():
        print(f"unknown benchmark {args.name!r}; known: "
              f"{', '.join(benchmark_names())}", file=sys.stderr)
        return 2
    soc = load(args.name)
    print(hierarchy_tree(soc))
    print()
    print(explain_outcome(soc))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    runtime = runtime_from_args(args)
    names = EXPERIMENTS if args.name == "all" else (args.name,)
    run_experiments(names, seed=args.seed, runtime=runtime,
                    options=experiment_options(args))
    report_runtime(runtime)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments.figures import generate_figures

    written = generate_figures(args.out_dir)
    for name, path in written.items():
        print(f"wrote {name}: {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import JobServer, ServiceConfig

    return JobServer(ServiceConfig.from_flags(args)).run()


def _cmd_submit(args: argparse.Namespace) -> int:
    from .runtime.config import AtpgConfig
    from .service.client import ServiceClient

    netlist = load_netlist(args.design)
    client = ServiceClient(args.host, args.port)
    info = client.submit(
        netlist,
        AtpgConfig(seed=args.seed, stream=args.stream),
        tenant=args.tenant,
        name=args.name or netlist.name,
    )
    print(f"submitted {info['id']} ({info['state']}"
          f"{', deduped' if info.get('deduped') else ''})")
    if args.no_wait:
        return 0
    final = client.wait(info["id"], timeout=args.timeout)
    print(f"{final['id']}: {final['state']}"
          + (f" ({final['outcome']})" if final.get("outcome") else ""))
    if final["state"] != "done":
        if final.get("error"):
            print(f"error: {final['error']}", file=sys.stderr)
        return 1
    result = client.result(info["id"])
    print(f"patterns: {result.pattern_count}")
    print(f"fault coverage: {100 * result.fault_coverage:.2f}% "
          f"({result.detected_count}/{result.fault_count} collapsed faults)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .service.loadtest import bench_from_args

    return bench_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Modular SOC testing TDV analysis (DATE 2008 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tdv = subparsers.add_parser("tdv", help="TDV analysis of a .soc file")
    tdv.add_argument("design", help="path to a .soc SOC description")
    tdv.add_argument("--mono-patterns", type=int, default=None,
                     help="measured monolithic pattern count (default: Eq. 2 bound)")
    tdv.add_argument("--json", action="store_true",
                     help="emit the full analysis as JSON instead of tables")
    tdv.set_defaults(func=_cmd_tdv)

    run = subparsers.add_parser(
        "run", aliases=["atpg"], help="run ATPG on a .bench netlist"
    )
    run.add_argument("design", help="path to a .bench netlist")
    run.add_argument("--seed", type=int, default=0)
    add_runtime_arguments(run)
    run.set_defaults(func=_cmd_atpg)

    vectors = subparsers.add_parser(
        "vectors", help="ATPG plus scan-vector export for a .bench netlist"
    )
    vectors.add_argument("design")
    vectors.add_argument("--seed", type=int, default=0)
    vectors.add_argument("--chains", type=int, default=1)
    vectors.add_argument("-o", "--output", default=None)
    add_runtime_arguments(vectors)
    vectors.set_defaults(func=_cmd_vectors)

    itc02 = subparsers.add_parser("itc02", help="inspect the ITC'02 benchmarks")
    itc02.add_argument("name", nargs="?", default=None,
                       help="SOC name; omit for the suite overview")
    itc02.set_defaults(func=_cmd_itc02)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate a paper table/figure"
    )
    experiments.add_argument("name", choices=EXPERIMENTS + ("all",))
    experiments.add_argument("--seed", type=int, default=None,
                             help="threaded into every experiment (default: "
                                  "each experiment's historical seed)")
    add_runtime_arguments(experiments)
    add_experiment_arguments(experiments)
    experiments.set_defaults(func=_cmd_experiments)

    figures = subparsers.add_parser(
        "figures", help="write the reproduction's SVG figures"
    )
    figures.add_argument("out_dir", nargs="?", default="figures")
    figures.set_defaults(func=_cmd_figures)

    serve = subparsers.add_parser(
        "serve", help="start the ATPG job server (ATPG-as-a-service)"
    )
    add_service_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = subparsers.add_parser(
        "submit", help="submit a .bench netlist to a running job server"
    )
    submit.add_argument("design", help="path to a .bench netlist")
    add_client_arguments(submit)
    submit.add_argument("--tenant", default="default",
                        help="tenant to submit as (default: default)")
    submit.add_argument("--name", default=None,
                        help="job name (default: the netlist name)")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--stream", type=int, choices=(1, 2), default=1,
                        help="pattern-stream epoch for the job "
                             "(default: 1, the legacy sequential stream)")
    submit.add_argument("--no-wait", action="store_true",
                        help="return after submission instead of waiting "
                             "for the result")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="give up waiting after SECONDS")
    submit.set_defaults(func=_cmd_submit)

    bench = subparsers.add_parser(
        "bench", help="load-test a job server (multi-tenant harness)"
    )
    from .service.loadtest import add_bench_arguments

    add_bench_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # maybe_profile is a no-op for subcommands without the shared
        # runtime flags (no --profile attribute).
        with maybe_profile(args):
            return args.func(args)
    except BrokenPipeError:
        # Output piped into head/less and closed early — not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
