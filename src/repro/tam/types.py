"""The shared data vocabulary of the TAM layer.

Every :mod:`repro.tam` module used to define its own ad-hoc dataclasses;
this module consolidates the ones they all exchange — what a core's test
looks like (:class:`CoreTestSpec`), one useful (width, time) operating
point (:class:`ParetoPoint`), and a packed session schedule
(:class:`ScheduledTest` / :class:`Schedule`) — plus the common result
base (:class:`TamResult`) the per-module reports subclass.

:class:`TamResult` exists for one reason: the TAM layer's outputs feed
the sweep engine (:mod:`repro.sweeps`), whose aggregators and shard
journals consume flat JSON-able records.  ``as_record()`` is the single
bridge — every result type can flatten itself into such a record, so an
architecture comparison, an idle-bit report, and a co-optimization run
all stream through the same machinery.

Layering: this module imports only :mod:`repro.errors` and
:mod:`repro.tam.wrapper_design`, so every other ``repro.tam`` module can
depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Sequence, Tuple

from ..errors import ConfigError, ScheduleError
from .wrapper_design import WrapperDesign, design_wrapper, wrapper_bottlenecks

_SCALARS = (int, float, str, bool, type(None))


class TamResult:
    """Base of the TAM layer's typed result hierarchy.

    Subclasses are dataclasses; the default :meth:`as_record` flattens
    their scalar fields (plus the class ``kind`` tag) into a JSON-able
    dict and subclasses extend it with their derived metrics — the
    record shape the sweep engine journals and aggregates.
    """

    kind: ClassVar[str] = "result"

    def as_record(self) -> Dict[str, Any]:
        """A flat JSON-able record of this result's scalar fields."""
        record: Dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if isinstance(value, _SCALARS):
                record[field.name] = value
        return record

    def summary(self) -> str:
        """One human-readable line (subclasses override)."""
        parts = ", ".join(
            f"{key}={value}" for key, value in self.as_record().items()
            if key != "kind"
        )
        return f"{self.kind}({parts})"


@dataclass(frozen=True)
class CoreTestSpec:
    """What TAM design needs to know about one core's test."""

    name: str
    scan_chains: Sequence[int]
    input_cells: int
    output_cells: int
    patterns: int

    @property
    def total_scan(self) -> int:
        """Internal scan cells over all chains."""
        return sum(self.scan_chains)

    @property
    def useful_bits_per_pattern(self) -> int:
        """Care-capable bits per pattern, independent of TAM width."""
        return 2 * self.total_scan + self.input_cells + self.output_cells

    def wrapper(self, tam_width: int) -> WrapperDesign:
        """This core's LPT-balanced wrapper at ``tam_width`` wires."""
        return design_wrapper(
            self.name, self.scan_chains, self.input_cells,
            self.output_cells, tam_width,
        )

    def test_time_cycles(self, tam_width: int) -> int:
        """Shift-dominated test time at ``tam_width`` wires.

        Uses the closed-form bottleneck computation
        (:func:`repro.tam.wrapper_design.wrapper_bottlenecks`) instead
        of materializing the wrapper — same number, much cheaper, which
        is what lets the bin-packer enumerate Pareto staircases for
        every core of every ITC'02 SOC.
        """
        si, so = wrapper_bottlenecks(
            self.scan_chains, self.input_cells, self.output_cells, tam_width
        )
        return (1 + max(si, so)) * self.patterns + min(si, so)

    def shifted_bits(self, tam_width: int) -> int:
        """Delivered (idle-padded) bits of the whole test at this width."""
        si, so = wrapper_bottlenecks(
            self.scan_chains, self.input_cells, self.output_cells, tam_width
        )
        return self.patterns * tam_width * (si + so)


@dataclass(frozen=True)
class ParetoPoint:
    """One useful (width, test time) operating point for a core."""

    width: int
    test_time_cycles: int

    @property
    def area(self) -> int:
        """Wire-cycles of the test rectangle (bin-packing footprint)."""
        return self.width * self.test_time_cycles


def pareto_widths(spec: CoreTestSpec, max_width: int) -> List[ParetoPoint]:
    """The Pareto-optimal TAM widths of one core, ascending width.

    A width is kept only if it strictly beats every narrower width —
    the staircase effect of unsplittable internal scan chains: once the
    longest chain is alone on a wire, extra wires stop helping.
    """
    if max_width < 1:
        raise ConfigError(f"max_width must be >= 1, got {max_width}")
    points: List[ParetoPoint] = []
    best = None
    for width in range(1, max_width + 1):
        time = spec.test_time_cycles(width)
        if best is None or time < best:
            points.append(ParetoPoint(width=width, test_time_cycles=time))
            best = time
    return points


def width_saturation(spec: CoreTestSpec, max_width: int = 64) -> int:
    """The width beyond which a core's test time stops improving."""
    return pareto_widths(spec, max_width)[-1].width


@dataclass(frozen=True)
class ScheduledTest:
    """One core's slot in the session schedule."""

    core: str
    width: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Schedule(TamResult):
    """A complete SOC test schedule."""

    kind: ClassVar[str] = "schedule"

    tam_width: int
    tests: List[ScheduledTest]

    @property
    def makespan(self) -> int:
        """Last test's end time; 0 for an empty schedule."""
        return max((test.end for test in self.tests), default=0)

    def utilization(self) -> float:
        """Occupied wire-cycles over the full width x makespan rectangle."""
        if not self.tests or self.makespan == 0 or self.tam_width == 0:
            return 0.0
        used = sum(test.width * test.duration for test in self.tests)
        return used / (self.tam_width * self.makespan)

    def verify(self) -> None:
        """Check the schedule's shape and its width budget at every instant.

        Raises :class:`~repro.errors.ScheduleError` (an
        ``AssertionError`` subclass, so legacy ``except AssertionError``
        handlers still catch it) on a non-positive TAM width, a
        zero-width or negative-width slot, a slot wider than the TAM,
        a slot ending before it starts, or any instant where the
        concurrent widths exceed the budget.
        """
        if self.tam_width < 1:
            raise ScheduleError(
                f"schedule needs tam_width >= 1, got {self.tam_width}"
            )
        for test in self.tests:
            if test.width < 1:
                raise ScheduleError(
                    f"core {test.core!r}: zero-width slot (width {test.width})"
                )
            if test.width > self.tam_width:
                raise ScheduleError(
                    f"core {test.core!r}: slot width {test.width} exceeds "
                    f"TAM width {self.tam_width}"
                )
            if test.end < test.start:
                raise ScheduleError(
                    f"core {test.core!r}: negative duration "
                    f"[{test.start}, {test.end})"
                )
        events: List[Tuple[int, int]] = []
        for test in self.tests:
            if test.duration == 0:
                continue  # zero-length slots occupy no instant
            events.append((test.start, test.width))
            events.append((test.end, -test.width))
        events.sort()
        active = 0
        for _time, delta in events:
            active += delta
            if active > self.tam_width:
                raise ScheduleError(
                    f"TAM width {self.tam_width} exceeded ({active} wires in use)"
                )

    def as_record(self) -> Dict[str, Any]:
        record = super().as_record()
        record["makespan"] = self.makespan
        record["utilization"] = self.utilization()
        record["tests"] = len(self.tests)
        return record

    def summary(self) -> str:
        return (
            f"{len(self.tests)} tests on {self.tam_width} wires: "
            f"makespan {self.makespan:,} cycles, "
            f"utilization {100 * self.utilization():.1f}%"
        )
