"""Power-constrained test scheduling.

Scan testing toggles far more logic than mission mode, so concurrent
core tests are bounded by a power budget as well as by TAM wires —
the scheduling dimension of Iyengar & Chakrabarty (VTS 2001) and
Larsson & Peng (ATS 2001), which the paper's related-work section
cites as one of modular testing's enablers.

Power here is a scalar per core; the default estimator scales with the
toggling volume (scan cells shifting every cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, ScheduleError
from .scheduling import _test_time
from .types import CoreTestSpec, Schedule, ScheduledTest


@dataclass(frozen=True)
class CorePower:
    """Test-mode power rating of one core, in arbitrary consistent units."""

    name: str
    power: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ConfigError(f"core {self.name!r}: power must be >= 0")


def default_power_model(specs: Sequence[CoreTestSpec]) -> Dict[str, float]:
    """Shift-toggle proxy: power proportional to switching cells.

    Every scan cell plus wrapper cell toggles each shift cycle; the
    proxy is their count, which tracks the peak-power estimates used in
    the scheduling literature closely enough for ordering purposes.
    """
    return {
        spec.name: float(
            sum(spec.scan_chains) + spec.input_cells + spec.output_cells
        )
        for spec in specs
    }


def schedule_power_constrained(
    specs: Sequence[CoreTestSpec],
    tam_width: int,
    power_budget: float,
    power: Optional[Dict[str, float]] = None,
    preferred_width: int = 4,
) -> Schedule:
    """Greedy shelf scheduling under both wire and power budgets.

    Longest test first; each test starts at the earliest time where
    ``preferred_width`` wires are free *and* the concurrent power stays
    within budget.  Any single core above the budget is rejected — no
    schedule can run it.
    """
    if power is None:
        power = default_power_model(specs)
    width = min(preferred_width, tam_width)
    if width < 1:
        raise ConfigError(f"preferred_width must be >= 1, got {preferred_width}")
    for spec in specs:
        if power[spec.name] > power_budget:
            raise ConfigError(
                f"core {spec.name!r} alone exceeds the power budget "
                f"({power[spec.name]} > {power_budget})"
            )

    durations = {spec.name: _test_time(spec, width) for spec in specs}
    ordered = sorted(specs, key=lambda s: -durations[s.name])
    placed: List[ScheduledTest] = []
    wire_free = [0] * tam_width

    def power_at(instant: int, extra: float) -> float:
        active = sum(
            power[test.core]
            for test in placed
            if test.start <= instant < test.end
        )
        return active + extra

    for spec in ordered:
        duration = durations[spec.name]
        # Candidate start times: wire availabilities and test boundaries.
        candidates = sorted(
            set(wire_free) | {test.end for test in placed} | {0}
        )
        chosen_start = None
        for start in candidates:
            free_wires = [w for w in range(tam_width) if wire_free[w] <= start]
            if len(free_wires) < width:
                continue
            boundaries = [start] + [
                test.start for test in placed if start < test.start < start + duration
            ]
            if all(
                power_at(instant, power[spec.name]) <= power_budget
                for instant in boundaries
            ):
                chosen_start = start
                break
        if chosen_start is None:  # pragma: no cover - candidates include maxima
            chosen_start = max(wire_free)
        free_wires = sorted(
            (w for w in range(tam_width) if wire_free[w] <= chosen_start),
        )[:width]
        end = chosen_start + duration
        for wire in free_wires:
            wire_free[wire] = end
        placed.append(ScheduledTest(spec.name, width, chosen_start, end))

    schedule = Schedule(tam_width=tam_width, tests=placed)
    schedule.verify()
    verify_power(schedule, power, power_budget)
    return schedule


def verify_power(
    schedule: Schedule, power: Dict[str, float], power_budget: float
) -> None:
    """Check the power budget holds at every instant of the schedule.

    Raises :class:`~repro.errors.ScheduleError` (an ``AssertionError``
    subclass, so legacy handlers still catch it) on the first violation.
    """
    events: List[Tuple[int, float]] = []
    for test in schedule.tests:
        events.append((test.start, power[test.core]))
        events.append((test.end, -power[test.core]))
    events.sort()
    active = 0.0
    for _time, delta in events:
        active += delta
        if active > power_budget + 1e-9:
            raise ScheduleError(
                f"power budget {power_budget} exceeded ({active:.1f} active)"
            )


def peak_power(schedule: Schedule, power: Dict[str, float]) -> float:
    """The schedule's maximum instantaneous power."""
    events: List[Tuple[int, float]] = []
    for test in schedule.tests:
        events.append((test.start, power[test.core]))
        events.append((test.end, -power[test.core]))
    events.sort()
    active = 0.0
    peak = 0.0
    for _time, delta in events:
        active += delta
        peak = max(peak, active)
    return peak
