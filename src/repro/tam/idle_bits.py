"""Idle-bit ablation: what the paper's useful-bits-only analysis omits.

Section 3: "We exclude the impact of the scan chain organization or the
test access mechanism from our analysis ... the comparative analysis
focuses on useful (non-idle) test data bits only."  This module puts
those idle bits back: for a given TAM width and chain organization it
computes the *delivered* (shifted) data volume of modular testing and of
the monolithic flattened test, so the modular-vs-monolithic comparison
can be checked for robustness against the abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional

from ..core.tdv import monolithic_pattern_lower_bound, tdv_modular, tdv_monolithic
from ..soc.model import Soc
from .architectures import CoreTestSpec, core_specs_from_soc, _wrapper
from .types import TamResult
from .wrapper_design import balanced_chain_lengths


@dataclass
class IdleBitReport(TamResult):
    """Useful vs delivered volumes for both test styles at one TAM width."""

    kind: ClassVar[str] = "idle_bits"

    soc_name: str
    tam_width: int
    useful_modular: int
    delivered_modular: int
    useful_monolithic: int
    delivered_monolithic: int

    @property
    def modular_idle_fraction(self) -> float:
        if self.delivered_modular == 0:
            return 0.0
        return 1.0 - self.useful_modular / self.delivered_modular

    @property
    def monolithic_idle_fraction(self) -> float:
        if self.delivered_monolithic == 0:
            return 0.0
        return 1.0 - self.useful_monolithic / self.delivered_monolithic

    @property
    def useful_ratio(self) -> float:
        """Modular over monolithic, useful bits only (the paper's metric)."""
        return self.useful_modular / self.useful_monolithic

    @property
    def delivered_ratio(self) -> float:
        """Modular over monolithic, counting idle padding too."""
        return self.delivered_modular / self.delivered_monolithic

    def as_record(self) -> Dict[str, Any]:
        record = super().as_record()
        record["modular_idle_fraction"] = self.modular_idle_fraction
        record["monolithic_idle_fraction"] = self.monolithic_idle_fraction
        record["useful_ratio"] = self.useful_ratio
        record["delivered_ratio"] = self.delivered_ratio
        return record


def idle_bit_report(
    soc: Soc,
    tam_width: int,
    scan_chains: Optional[Dict[str, List[int]]] = None,
    monolithic_patterns: Optional[int] = None,
    monolithic_chain_count: Optional[int] = None,
) -> IdleBitReport:
    """Compare useful and delivered TDV for one SOC at one TAM width.

    Modular delivery: each core's wrapper is designed at the full TAM
    width (cores tested one at a time, others disconnected — the paper's
    assumption).  Monolithic delivery: the flattened design's scan cells
    are stitched into ``monolithic_chain_count`` chains (default: one
    per TAM wire) and every pattern shifts the longest chain's length on
    every wire.
    """
    specs = core_specs_from_soc(soc, scan_chains=scan_chains)
    useful_modular = 0
    delivered_modular = 0
    for spec in specs:
        design = _wrapper(spec, tam_width)
        useful_modular += spec.patterns * design.useful_bits_per_pattern()
        delivered_modular += spec.patterns * design.shifted_bits_per_pattern()

    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    chain_count = monolithic_chain_count or tam_width
    chains = balanced_chain_lengths(soc.total_scan_cells, chain_count)
    longest = max(chains) if chains else 0
    # Chip terminals are driven directly (no shift), so their bits are
    # useful in both accountings.
    useful_monolithic = tdv_monolithic(soc, t_mono)
    delivered_monolithic = t_mono * (
        soc.chip_io_terminals + 2 * chain_count * longest
    )
    return IdleBitReport(
        soc_name=soc.name,
        tam_width=tam_width,
        useful_modular=useful_modular,
        delivered_modular=delivered_modular,
        useful_monolithic=useful_monolithic,
        delivered_monolithic=delivered_monolithic,
    )


def idle_bit_sweep(
    soc: Soc,
    tam_widths: List[int],
    scan_chains: Optional[Dict[str, List[int]]] = None,
) -> List[IdleBitReport]:
    """The ablation series: idle-bit impact across TAM widths."""
    return [
        idle_bit_report(soc, width, scan_chains=scan_chains) for width in tam_widths
    ]


def useful_bits_check(soc: Soc) -> bool:
    """Sanity link between the TAM layer and the TDV model.

    At any TAM width, the *useful* modular bits summed over cores equal
    Eq. 4's per-core ``T * (2S + I + O + 2B)`` for leaf cores — wrapper
    design moves bits between chains but never creates or destroys care
    bits.  (Hierarchical parents add child ExTest cells on top, which
    the TAM layer models inside the parent's own spec.)
    """
    specs = core_specs_from_soc(soc)
    for spec in specs:
        core = soc[spec.name]
        # io_terminals already counts each bidir twice (one stimulus cell,
        # one response cell) — exactly how the wrapper spec models them.
        expected = core.scan_bits_per_pattern + core.io_terminals
        design = _wrapper(spec, 1)
        if design.useful_bits_per_pattern() != expected:
            return False
    return True
