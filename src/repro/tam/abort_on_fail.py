"""Abort-on-fail test ordering under per-core fail probabilities.

Production testers stop at the first failing core, so the *expected*
test time depends on the order in which core tests run — the setting of
Larsson (ITC 2004) and Ingelsson et al. (ETS 2005), both cited by the
paper as scheduling benefits that modular testing enables and monolithic
testing forfeits (one flat test has nothing to reorder).

For a serial schedule the classic result is that ordering by descending
``p_i / t_i`` (fail rate per cycle) minimizes the expected time to the
first fail decision; this module implements the orderings and the exact
expectation so the claim is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Sequence

from ..errors import ConfigError
from .architectures import CoreTestSpec, _wrapper
from .types import TamResult


@dataclass(frozen=True)
class FailProbability:
    """Probability that a core's test fails on a random defective-ish die."""

    name: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"core {self.name!r}: probability must be in [0, 1]"
            )


def expected_abort_time(
    ordered_specs: Sequence[CoreTestSpec],
    probabilities: Dict[str, float],
    tam_width: int,
) -> float:
    """Expected serial test time with abort-on-first-fail.

    A core's test always runs to completion before its verdict; the
    session stops after the first failing core.  With independent fail
    events, the expected time is ``sum_k t_k * prod_{j<k} (1 - p_j)``.
    """
    expected = 0.0
    survive = 1.0
    for spec in ordered_specs:
        time = _wrapper(spec, tam_width).test_time_cycles(spec.patterns)
        expected += survive * time
        survive *= 1.0 - probabilities[spec.name]
    return expected


def order_abort_aware(
    specs: Sequence[CoreTestSpec],
    probabilities: Dict[str, float],
    tam_width: int,
) -> List[CoreTestSpec]:
    """The p/t-ratio ordering (largest fail-rate-per-cycle first).

    Optimal for the serial abort-on-fail expectation by the classic
    exchange argument: swapping adjacent cores i, j changes the
    expectation by ``t_j p_i - t_i p_j`` (scaled by the survival prefix),
    so sorting by ``p/t`` descending is a local—and hence global—minimum.
    """
    def ratio(spec: CoreTestSpec) -> float:
        time = _wrapper(spec, tam_width).test_time_cycles(spec.patterns)
        return probabilities[spec.name] / time if time else float("inf")

    return sorted(specs, key=ratio, reverse=True)


def order_shortest_first(
    specs: Sequence[CoreTestSpec], tam_width: int
) -> List[CoreTestSpec]:
    """The naive fail-probability-blind baseline."""
    return sorted(
        specs,
        key=lambda spec: _wrapper(spec, tam_width).test_time_cycles(spec.patterns),
    )


@dataclass
class AbortOnFailStudy(TamResult):
    """Expected times under the candidate orderings, one SOC."""

    kind: ClassVar[str] = "abort_on_fail"

    tam_width: int
    pass_time: float  # full session (all cores pass)
    expected_naive: float
    expected_optimized: float

    @property
    def improvement(self) -> float:
        """Relative expected-time saving of the p/t ordering."""
        if self.expected_naive == 0:
            return 0.0
        return 1.0 - self.expected_optimized / self.expected_naive


def study(
    specs: Sequence[CoreTestSpec],
    probabilities: Dict[str, float],
    tam_width: int = 8,
) -> AbortOnFailStudy:
    """Compare the naive and optimized orderings on one SOC."""
    for spec in specs:
        if spec.name not in probabilities:
            raise KeyError(f"no fail probability for core {spec.name!r}")
    naive = order_shortest_first(specs, tam_width)
    optimized = order_abort_aware(specs, probabilities, tam_width)
    pass_time = float(
        sum(
            _wrapper(spec, tam_width).test_time_cycles(spec.patterns)
            for spec in specs
        )
    )
    return AbortOnFailStudy(
        tam_width=tam_width,
        pass_time=pass_time,
        expected_naive=expected_abort_time(naive, probabilities, tam_width),
        expected_optimized=expected_abort_time(optimized, probabilities, tam_width),
    )
