"""SOC test scheduling over a shared TAM budget.

Rectangle-packing schedulers in the style of the wrapper/TAM
co-optimization literature (Iyengar, Chakrabarty & Marinissen, DATE
2002; Islam/Karim/Babu's best-fit rectangle packers): each core's test
is a rectangle (TAM wires x cycles) and the scheduler assigns each core
a width and a start time so concurrent tests never exceed the total
width, minimizing makespan.

Three schedulers share the :class:`~repro.tam.types.Schedule` result
type:

* :func:`schedule_serial` — every core full-width, back to back (the
  Multiplexing architecture; the do-nothing baseline);
* :func:`schedule_greedy` — one fixed per-core width, longest test
  first on the earliest-free wires (shelf-style baseline);
* :func:`schedule_best_fit` — best-fit decreasing over each core's
  *Pareto-optimal* width candidates, ordered by normalized diagonal
  length, placing each test where it finishes earliest with the least
  created idle time.

All schedulers are deterministic and verify the width budget before
returning.  Errors are typed (:class:`~repro.errors.ConfigError` for
bad parameters, :class:`~repro.errors.ScheduleError` from
:meth:`~repro.tam.types.Schedule.verify`).
"""

from __future__ import annotations

import math
import warnings
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigError
from .types import CoreTestSpec, ParetoPoint, Schedule, ScheduledTest, pareto_widths
from .wrapper_design import wrapper_bottlenecks

__all__ = [
    "Schedule",
    "ScheduledTest",
    "makespan_lower_bound",
    "schedule_best_fit",
    "schedule_greedy",
    "schedule_serial",
]


def _test_time(spec: CoreTestSpec, width: int) -> int:
    """Shift-dominated test time of ``spec`` at ``width`` wires.

    Duck-typed on the :class:`CoreTestSpec` fields so legacy spec
    objects (anything with the same five attributes) still schedule.
    """
    si, so = wrapper_bottlenecks(
        spec.scan_chains, spec.input_cells, spec.output_cells, width
    )
    return (1 + max(si, so)) * spec.patterns + min(si, so)


def schedule_serial(specs: Sequence[CoreTestSpec], tam_width: int) -> Schedule:
    """All cores full-width, back to back (Multiplexing architecture)."""
    if tam_width < 1:
        raise ConfigError(f"tam_width must be >= 1, got {tam_width}")
    tests = []
    clock = 0
    for spec in specs:
        duration = _test_time(spec, tam_width)
        tests.append(ScheduledTest(spec.name, tam_width, clock, clock + duration))
        clock += duration
    return Schedule(tam_width=tam_width, tests=tests)


def schedule_greedy(
    specs: Sequence[CoreTestSpec],
    tam_width: int,
    preferred_width: int = 4,
) -> Schedule:
    """Concurrent scheduling: longest tests first, first idle wires win.

    Each core gets ``min(preferred_width, tam_width)`` wires; cores are
    placed longest-first at the earliest time where enough wires are
    simultaneously free — a shelf-style heuristic that is simple,
    deterministic, and respects the width budget exactly.
    """
    if tam_width < 1:
        raise ConfigError(f"tam_width must be >= 1, got {tam_width}")
    width = min(preferred_width, tam_width)
    if width < 1:
        raise ConfigError(f"preferred_width must be >= 1, got {preferred_width}")
    durations = {spec.name: _test_time(spec, width) for spec in specs}
    ordered = sorted(specs, key=lambda s: -durations[s.name])
    # Track per-wire next-free time; a test takes the `width` wires that
    # free up earliest and starts when the last of them is free.
    wire_free = [0] * tam_width
    tests = []
    for spec in ordered:
        wires = sorted(range(tam_width), key=wire_free.__getitem__)[:width]
        start = max(wire_free[w] for w in wires)
        end = start + durations[spec.name]
        for w in wires:
            wire_free[w] = end
        tests.append(ScheduledTest(spec.name, width, start, end))
    schedule = Schedule(tam_width=tam_width, tests=tests)
    schedule.verify()
    return schedule


def schedule_best_fit(
    specs: Sequence[CoreTestSpec],
    tam_width: int,
    candidate_widths: Optional[Sequence[int]] = None,
) -> Schedule:
    """Best-fit-decreasing rectangle packing over Pareto width candidates.

    The bin-packing scheduler of the Islam/Karim/Babu line of papers,
    adapted to the wire-granular TAM model:

    1. each core's candidate rectangles are its Pareto-optimal
       (width, time) points up to ``tam_width`` (optionally intersected
       with ``candidate_widths``) — widths past a bottleneck chain are
       never considered because they buy no time;
    2. cores are ordered by decreasing *normalized diagonal length*
       ``sqrt((w/W)^2 + (t/T)^2)`` of their preferred (fastest)
       rectangle, so tests that are large on either axis place first,
       while small ones fill the gaps left behind;
    3. each core is placed *best-fit*: every candidate width is tried
       on the earliest-free wires and the one finishing earliest wins
       (ties broken toward less newly-created wire idle time, then the
       narrower width).

    Width safety is structural — placement assigns concrete wires, so
    the budget cannot be exceeded — and :meth:`Schedule.verify` checks
    it anyway.
    """
    if tam_width < 1:
        raise ConfigError(f"tam_width must be >= 1, got {tam_width}")
    if not specs:
        return Schedule(tam_width=tam_width, tests=[])

    allowed = None
    if candidate_widths is not None:
        allowed = {w for w in candidate_widths if 1 <= w <= tam_width}
        if not allowed:
            raise ConfigError(
                f"no candidate width in {sorted(set(candidate_widths))} "
                f"fits a TAM of width {tam_width}"
            )

    candidates: Dict[str, List[ParetoPoint]] = {}
    for spec in specs:
        points = [
            ParetoPoint(width=w, test_time_cycles=_test_time(spec, w))
            for w in range(1, tam_width + 1)
        ]
        staircase: List[ParetoPoint] = []
        best = None
        for point in points:
            if best is None or point.test_time_cycles < best:
                staircase.append(point)
                best = point.test_time_cycles
        if allowed is not None:
            kept = [p for p in staircase if p.width in allowed]
            # A restricted width set may skip every staircase width; fall
            # back to the allowed widths themselves (still Pareto-pruned
            # by the best-fit choice below).
            staircase = kept or [
                ParetoPoint(width=w, test_time_cycles=_test_time(spec, w))
                for w in sorted(allowed)
            ]
        candidates[spec.name] = staircase

    # Decreasing diagonal length of each core's fastest rectangle,
    # normalized by the TAM width and the longest fastest-time so both
    # axes weigh in; name-tied for determinism.
    time_scale = max(
        (candidates[spec.name][-1].test_time_cycles for spec in specs),
        default=0,
    ) or 1
    def diagonal(spec: CoreTestSpec) -> float:
        point = candidates[spec.name][-1]
        return math.sqrt(
            (point.width / tam_width) ** 2
            + (point.test_time_cycles / time_scale) ** 2
        )
    ordered = sorted(specs, key=lambda s: (-diagonal(s), s.name))

    wire_free = [0] * tam_width
    tests: List[ScheduledTest] = []
    for spec in ordered:
        best_key = None
        best_place = None
        # Wires sorted by next-free time once per core: for any width w
        # the w earliest-free wires minimize the start time (the max of
        # the w smallest free times).
        by_free = sorted(range(tam_width), key=wire_free.__getitem__)
        for point in candidates[spec.name]:
            wires = by_free[: point.width]
            start = wire_free[wires[-1]]
            end = start + point.test_time_cycles
            waste = sum(start - wire_free[w] for w in wires)
            key = (end, waste, point.width)
            if best_key is None or key < best_key:
                best_key = key
                best_place = (point, wires, start, end)
        assert best_place is not None  # candidates are never empty
        point, wires, start, end = best_place
        for w in wires:
            wire_free[w] = end
        tests.append(ScheduledTest(spec.name, point.width, start, end))
    schedule = Schedule(tam_width=tam_width, tests=tests)
    schedule.verify()
    return schedule


def makespan_lower_bound(specs: Sequence[CoreTestSpec], tam_width: int) -> int:
    """A simple lower bound no schedule at this width can beat.

    The larger of (a) the slowest core's best achievable time — some
    test must run that long — and (b) the total minimum rectangle area
    spread perfectly over all wires.
    """
    if tam_width < 1:
        raise ConfigError(f"tam_width must be >= 1, got {tam_width}")
    if not specs:
        return 0
    best_times = []
    min_area = 0
    for spec in specs:
        staircase = pareto_widths(spec, tam_width)
        best_times.append(staircase[-1].test_time_cycles)
        min_area += min(point.area for point in staircase)
    return max(max(best_times), math.ceil(min_area / tam_width))


_DEPRECATED = {
    "schedule_summary": "Schedule.as_record()",
}


def schedule_summary(schedule: Schedule) -> Dict[str, float]:
    return {
        "makespan": float(schedule.makespan),
        "utilization": schedule.utilization(),
        "tests": float(len(schedule.tests)),
    }


_schedule_summary = schedule_summary
del schedule_summary


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED:
        warnings.warn(
            f"repro.tam.scheduling.{name} is deprecated; "
            f"use {_DEPRECATED[name]} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return globals()[f"_{name}"]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
