"""SOC test scheduling over a shared TAM budget.

A light rectangle-packing scheduler in the style of the wrapper/TAM
co-optimization literature (Iyengar, Chakrabarty & Marinissen, DATE
2002): each core's test is a rectangle (TAM wires x cycles); the
scheduler assigns each core a width and a start time so concurrent
tests never exceed the total width, minimizing makespan greedily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .architectures import CoreTestSpec, _wrapper


@dataclass(frozen=True)
class ScheduledTest:
    """One core's slot in the session schedule."""

    core: str
    width: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Schedule:
    """A complete SOC test schedule."""

    tam_width: int
    tests: List[ScheduledTest]

    @property
    def makespan(self) -> int:
        return max((test.end for test in self.tests), default=0)

    def utilization(self) -> float:
        """Occupied wire-cycles over the full width x makespan rectangle."""
        if not self.tests or self.makespan == 0:
            return 0.0
        used = sum(test.width * test.duration for test in self.tests)
        return used / (self.tam_width * self.makespan)

    def verify(self) -> None:
        """Assert the width budget is respected at every instant."""
        events: List[Tuple[int, int]] = []
        for test in self.tests:
            events.append((test.start, test.width))
            events.append((test.end, -test.width))
        events.sort()
        active = 0
        for _time, delta in events:
            active += delta
            if active > self.tam_width:
                raise AssertionError(
                    f"TAM width {self.tam_width} exceeded ({active} wires in use)"
                )


def schedule_serial(specs: Sequence[CoreTestSpec], tam_width: int) -> Schedule:
    """All cores full-width, back to back (Multiplexing architecture)."""
    tests = []
    clock = 0
    for spec in specs:
        duration = _wrapper(spec, tam_width).test_time_cycles(spec.patterns)
        tests.append(ScheduledTest(spec.name, tam_width, clock, clock + duration))
        clock += duration
    return Schedule(tam_width=tam_width, tests=tests)


def schedule_greedy(
    specs: Sequence[CoreTestSpec],
    tam_width: int,
    preferred_width: int = 4,
) -> Schedule:
    """Concurrent scheduling: longest tests first, first idle wires win.

    Each core gets ``min(preferred_width, tam_width)`` wires; cores are
    placed longest-first at the earliest time where enough wires are
    simultaneously free — a shelf-style heuristic that is simple,
    deterministic, and respects the width budget exactly.
    """
    width = min(preferred_width, tam_width)
    if width < 1:
        raise ValueError("preferred_width must be >= 1")
    durations = {
        spec.name: _wrapper(spec, width).test_time_cycles(spec.patterns)
        for spec in specs
    }
    ordered = sorted(specs, key=lambda s: -durations[s.name])
    # Track per-wire next-free time; a test takes the `width` wires that
    # free up earliest and starts when the last of them is free.
    wire_free = [0] * tam_width
    tests = []
    for spec in ordered:
        wires = sorted(range(tam_width), key=wire_free.__getitem__)[:width]
        start = max(wire_free[w] for w in wires)
        end = start + durations[spec.name]
        for w in wires:
            wire_free[w] = end
        tests.append(ScheduledTest(spec.name, width, start, end))
    schedule = Schedule(tam_width=tam_width, tests=tests)
    schedule.verify()
    return schedule


def schedule_summary(schedule: Schedule) -> Dict[str, float]:
    return {
        "makespan": float(schedule.makespan),
        "utilization": schedule.utilization(),
        "tests": float(len(schedule.tests)),
    }
