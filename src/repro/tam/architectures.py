"""Test access mechanism (TAM) architectures.

The related-work section of the paper surveys the architecture space
its analysis deliberately abstracts away: the Multiplexing, Daisychain
and Distribution architectures of Aerts & Marinissen (ITC 1998), and
bus-style hybrids.  This module implements the three canonical
architectures over the :mod:`repro.tam.wrapper_design` substrate so the
idle-bit ablation can measure what the abstraction costs.

All cores here are leaves of the TAM (hierarchical parents are handled
by the TDV model itself); a core that is not under test is disconnected
or bypassed, per the paper's stated assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..soc.model import Soc
from .types import CoreTestSpec, TamResult
from .wrapper_design import WrapperDesign, balanced_chain_lengths, design_wrapper


@dataclass
class ArchitectureResult(TamResult):
    """Test time and data-volume accounting for one architecture."""

    kind: ClassVar[str] = "architecture"

    architecture: str
    tam_width: int
    test_time_cycles: int
    useful_bits: int
    shifted_bits: int
    per_core_width: Dict[str, int]

    @property
    def idle_bits(self) -> int:
        return self.shifted_bits - self.useful_bits

    @property
    def idle_fraction(self) -> float:
        return self.idle_bits / self.shifted_bits if self.shifted_bits else 0.0

    def as_record(self) -> Dict[str, Any]:
        record = super().as_record()
        record["idle_bits"] = self.idle_bits
        record["idle_fraction"] = self.idle_fraction
        return record


def core_specs_from_soc(
    soc: Soc,
    scan_chains: Optional[Dict[str, List[int]]] = None,
    default_chain_count: int = 4,
) -> List[CoreTestSpec]:
    """Derive TAM-level core specs from an SOC description.

    Cores without an explicit chain partition get balanced chains (the
    paper's assumption).  The top core is excluded — its glue test has
    no internal scan and chip pins need no TAM.
    """
    scan_chains = scan_chains or {}
    specs = []
    for core in soc:
        if core.name == soc.top_name:
            continue
        chains = scan_chains.get(core.name)
        if chains is None:
            count = min(default_chain_count, core.scan_cells) or 1
            chains = balanced_chain_lengths(core.scan_cells, count)
        specs.append(
            CoreTestSpec(
                name=core.name,
                scan_chains=chains,
                input_cells=core.inputs + core.bidirs,
                output_cells=core.outputs + core.bidirs,
                patterns=core.patterns,
            )
        )
    return specs


def multiplexing_architecture(
    specs: Sequence[CoreTestSpec], tam_width: int
) -> ArchitectureResult:
    """All cores on one full-width TAM, tested one after another."""
    total_time = 0
    useful = 0
    shifted = 0
    for spec in specs:
        design = _wrapper(spec, tam_width)
        total_time += design.test_time_cycles(spec.patterns)
        useful += spec.patterns * design.useful_bits_per_pattern()
        shifted += spec.patterns * design.shifted_bits_per_pattern()
    return ArchitectureResult(
        architecture="multiplexing",
        tam_width=tam_width,
        test_time_cycles=total_time,
        useful_bits=useful,
        shifted_bits=shifted,
        per_core_width={spec.name: tam_width for spec in specs},
    )


def daisychain_architecture(
    specs: Sequence[CoreTestSpec], tam_width: int
) -> ArchitectureResult:
    """One TAM threaded through every core (TestRail-style, no bypass).

    All cores shift concurrently, so every load is as long as the *sum*
    of the per-core bottlenecks and the pattern count is the maximum
    over cores — the monolithic-like worst case that motivates core
    bypass/disconnect, which the paper assumes instead.
    """
    if not specs:
        raise ConfigError("no cores")
    designs = [_wrapper(spec, tam_width) for spec in specs]
    load_length = sum(max(d.max_scan_in, d.max_scan_out) for d in designs)
    max_patterns = max(spec.patterns for spec in specs)
    time = (1 + load_length) * max_patterns + load_length
    useful = sum(
        spec.patterns * design.useful_bits_per_pattern()
        for spec, design in zip(specs, designs)
    )
    shifted = max_patterns * tam_width * 2 * load_length
    return ArchitectureResult(
        architecture="daisychain",
        tam_width=tam_width,
        test_time_cycles=time,
        useful_bits=useful,
        shifted_bits=shifted,
        per_core_width={spec.name: tam_width for spec in specs},
    )


def distribution_architecture(
    specs: Sequence[CoreTestSpec], tam_width: int
) -> ArchitectureResult:
    """Every core gets a private TAM slice; all cores test in parallel.

    Width assignment is the classic iterative refinement: start with one
    wire per core (requires ``tam_width >= len(specs)``), then repeatedly
    give a spare wire to the current bottleneck core.
    """
    if len(specs) > tam_width:
        raise ConfigError(
            f"distribution needs at least one wire per core "
            f"({len(specs)} cores, width {tam_width})"
        )
    widths = {spec.name: 1 for spec in specs}
    spare = tam_width - len(specs)
    times = {
        spec.name: _wrapper(spec, 1).test_time_cycles(spec.patterns) for spec in specs
    }
    by_name = {spec.name: spec for spec in specs}
    for _ in range(spare):
        bottleneck = max(times, key=times.__getitem__)
        widths[bottleneck] += 1
        spec = by_name[bottleneck]
        times[bottleneck] = _wrapper(spec, widths[bottleneck]).test_time_cycles(
            spec.patterns
        )
    useful = 0
    shifted = 0
    for spec in specs:
        design = _wrapper(spec, widths[spec.name])
        useful += spec.patterns * design.useful_bits_per_pattern()
        shifted += spec.patterns * design.shifted_bits_per_pattern()
    return ArchitectureResult(
        architecture="distribution",
        tam_width=tam_width,
        test_time_cycles=max(times.values()),
        useful_bits=useful,
        shifted_bits=shifted,
        per_core_width=widths,
    )


def _wrapper(spec: CoreTestSpec, width: int) -> WrapperDesign:
    return design_wrapper(
        spec.name, spec.scan_chains, spec.input_cells, spec.output_cells, width
    )


def compare_architectures(
    specs: Sequence[CoreTestSpec], tam_width: int
) -> List[ArchitectureResult]:
    """All three canonical architectures at one TAM width."""
    results = [
        multiplexing_architecture(specs, tam_width),
        daisychain_architecture(specs, tam_width),
    ]
    if len(specs) <= tam_width:
        results.append(distribution_architecture(specs, tam_width))
    return results
