"""The unified wrapper/TAM co-optimization surface.

One problem type in, one result type out:

.. code-block:: python

    from repro.tam import TamProblem, cooptimize

    problem = TamProblem.from_benchmark("d695", tam_width=16)
    result = cooptimize(problem, scheduler="binpack", runtime=runtime)
    print(result.summary())

:class:`TamProblem` captures an instance (the cores' test specs and the
shared TAM width); :func:`cooptimize` runs one of the registered
schedulers (:data:`SCHEDULERS`) and returns a :class:`CoOptResult`
carrying the schedule, the per-core width assignment and the full
time/volume accounting; :func:`design_space` evaluates a whole width x
scheduler grid and :func:`pareto_front` prunes it to the non-dominated
(width, time, volume) points.

Scheduler guarantees: ``"binpack"`` is a *portfolio* — it runs the
best-fit rectangle packer (:func:`~repro.tam.scheduling.schedule_best_fit`)
and the greedy width-enumeration baseline and keeps the better
makespan, so its result is never worse than ``"greedy"`` for the same
problem and candidate widths.  Pure best-fit usually wins outright;
the portfolio turns "usually" into an invariant the experiment and CI
can assert.

The old per-module entry points (``cooptimize(specs, tam_width)``,
``CoOptimizationResult``, ``time_volume_tradeoff``) keep working
through :class:`DeprecationWarning` shims in
:mod:`repro.tam.cooptimization` and the package root.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ConfigError
from ..observability import get_tracer, register_counter
from .architectures import core_specs_from_soc
from .scheduling import (
    makespan_lower_bound,
    schedule_best_fit,
    schedule_greedy,
    schedule_serial,
)
from .types import CoreTestSpec, ParetoPoint, Schedule, TamResult, pareto_widths

TAM_COOPTIMIZATIONS = register_counter(
    "tam.cooptimizations", "wrapper/TAM co-optimizations solved"
)

#: Scheduler names accepted by :func:`cooptimize` (and the CLI flag).
SCHEDULERS: Tuple[str, ...] = ("serial", "greedy", "binpack")

#: The greedy width-enumeration candidates of the legacy API, kept as
#: the default so old and new calls see identical schedules.
DEFAULT_CANDIDATE_WIDTHS: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class TamProblem:
    """One wrapper/TAM co-optimization instance.

    The cores to schedule and the total TAM width they share.  Build
    directly from specs, or with :meth:`from_soc` /
    :meth:`from_benchmark` which derive the specs the same way the
    architecture studies do (balanced internal chains unless an explicit
    partition is given; the top core excluded).
    """

    cores: Tuple[CoreTestSpec, ...]
    tam_width: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "cores", tuple(self.cores))
        if self.tam_width < 1:
            raise ConfigError(f"tam_width must be >= 1, got {self.tam_width}")
        if not self.cores:
            raise ConfigError("no cores to schedule")
        names = [core.name for core in self.cores]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate core names in problem: {names}")

    @classmethod
    def from_soc(
        cls,
        soc,
        tam_width: int,
        scan_chains: Optional[Dict[str, List[int]]] = None,
        default_chain_count: int = 4,
    ) -> "TamProblem":
        """Derive the problem from an SOC description."""
        specs = core_specs_from_soc(
            soc, scan_chains=scan_chains, default_chain_count=default_chain_count
        )
        return cls(cores=tuple(specs), tam_width=tam_width)

    @classmethod
    def from_benchmark(
        cls,
        name: str,
        tam_width: int,
        default_chain_count: int = 4,
    ) -> "TamProblem":
        """Derive the problem from a shipped ITC'02 benchmark by name."""
        from ..itc02 import load

        return cls.from_soc(
            load(name), tam_width, default_chain_count=default_chain_count
        )

    @property
    def core_names(self) -> Tuple[str, ...]:
        return tuple(core.name for core in self.cores)

    def at_width(self, tam_width: int) -> "TamProblem":
        """The same cores under a different TAM budget."""
        return TamProblem(cores=self.cores, tam_width=tam_width)

    def pareto_sets(self) -> Dict[str, List[ParetoPoint]]:
        """Each core's Pareto-optimal width staircase up to the TAM width."""
        return {
            core.name: pareto_widths(core, self.tam_width) for core in self.cores
        }

    def lower_bound(self) -> int:
        """A makespan no schedule of this problem can beat."""
        return makespan_lower_bound(self.cores, self.tam_width)

    def useful_bits(self) -> int:
        """Care-capable bits of the whole session (width-independent)."""
        return sum(
            core.patterns * core.useful_bits_per_pattern for core in self.cores
        )


@dataclass
class CoOptResult(TamResult):
    """A solved co-optimization: schedule, widths, and volume accounting.

    ``delivered_bits`` counts every shifted bit (idle padding included,
    the TDV a tester actually streams); ``useful_bits`` counts only the
    care-capable ones (the paper's metric).  The gap is the idle-bit
    cost of the width assignment.
    """

    kind: ClassVar[str] = "cooptimization"

    tam_width: int
    assigned_widths: Dict[str, int]
    schedule: Schedule
    scheduler: str = "greedy"
    useful_bits: int = 0
    delivered_bits: int = 0
    lower_bound: int = 0

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def idle_bits(self) -> int:
        return self.delivered_bits - self.useful_bits

    @property
    def idle_fraction(self) -> float:
        if self.delivered_bits == 0:
            return 0.0
        return self.idle_bits / self.delivered_bits

    def utilization(self) -> float:
        return self.schedule.utilization()

    def as_record(self) -> Dict[str, Any]:
        record = super().as_record()
        record["makespan"] = self.makespan
        record["utilization"] = self.utilization()
        record["idle_fraction"] = self.idle_fraction
        record["cores"] = len(self.assigned_widths)
        return record

    def summary(self) -> str:
        return (
            f"{self.scheduler} @ {self.tam_width} wires: "
            f"makespan {self.makespan:,} cycles "
            f"(lower bound {self.lower_bound:,}), "
            f"TDV {self.delivered_bits:,} bits "
            f"({100 * self.idle_fraction:.1f}% idle)"
        )


def _greedy_enumeration(
    problem: TamProblem, candidate_widths: Optional[Sequence[int]]
) -> Optional[Schedule]:
    """Legacy width enumeration: one shared width, best makespan wins.

    Returns ``None`` when no candidate fits the TAM (the caller decides
    whether that is an error or just an empty portfolio arm).
    """
    widths = (
        DEFAULT_CANDIDATE_WIDTHS if candidate_widths is None else candidate_widths
    )
    best: Optional[Schedule] = None
    for width in widths:
        if width > problem.tam_width:
            continue
        schedule = schedule_greedy(
            problem.cores, problem.tam_width, preferred_width=width
        )
        if best is None or schedule.makespan < best.makespan:
            best = schedule
    return best


def _solve(
    problem: TamProblem,
    scheduler: str,
    candidate_widths: Optional[Sequence[int]],
) -> Schedule:
    if scheduler == "serial":
        return schedule_serial(problem.cores, problem.tam_width)
    if scheduler == "greedy":
        schedule = _greedy_enumeration(problem, candidate_widths)
        if schedule is None:
            raise ConfigError("no candidate width fits the TAM")
        return schedule
    if scheduler == "binpack":
        packed = schedule_best_fit(problem.cores, problem.tam_width)
        baseline = _greedy_enumeration(problem, candidate_widths)
        # Portfolio: never worse than the greedy baseline, by construction.
        if baseline is not None and baseline.makespan < packed.makespan:
            return baseline
        return packed
    raise ConfigError(
        f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
    )


def cooptimize(
    problem: Union[TamProblem, Sequence[CoreTestSpec]],
    tam_width: Optional[int] = None,
    candidate_widths: Optional[Sequence[int]] = None,
    *,
    scheduler: str = "binpack",
    runtime=None,
) -> CoOptResult:
    """Solve one wrapper/TAM co-optimization problem.

    New-style: ``cooptimize(TamProblem(...), scheduler="binpack",
    runtime=runtime)``.  ``candidate_widths`` feeds the greedy
    width-enumeration (and the binpack portfolio's baseline arm);
    the best-fit packer itself always works from the cores' full
    Pareto staircases.

    Legacy-style ``cooptimize(specs, tam_width)`` still works — it maps
    onto ``scheduler="greedy"`` with the historical candidate widths and
    emits a :class:`DeprecationWarning`.
    """
    if not isinstance(problem, TamProblem):
        warnings.warn(
            "cooptimize(specs, tam_width) is deprecated; build a "
            "TamProblem and call cooptimize(problem, scheduler=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        specs = tuple(problem)
        if not specs:
            raise ConfigError("no cores to schedule")
        if tam_width is None:
            raise ConfigError("legacy cooptimize(specs, ...) needs tam_width")
        problem = TamProblem(cores=specs, tam_width=tam_width)
        scheduler = "greedy"
    elif tam_width is not None:
        raise ConfigError(
            "tam_width is part of the TamProblem; do not pass it separately"
        )

    if runtime is not None:
        with runtime.activate():
            return _cooptimize_active(problem, scheduler, candidate_widths)
    return _cooptimize_active(problem, scheduler, candidate_widths)


def _cooptimize_active(
    problem: TamProblem,
    scheduler: str,
    candidate_widths: Optional[Sequence[int]],
) -> CoOptResult:
    tracer = get_tracer()
    with tracer.span(
        "tam.cooptimize",
        scheduler=scheduler,
        tam_width=problem.tam_width,
        cores=len(problem.cores),
    ):
        schedule = _solve(problem, scheduler, candidate_widths)
        assigned = {test.core: test.width for test in schedule.tests}
        delivered = sum(
            core.shifted_bits(assigned[core.name]) for core in problem.cores
        )
        tracer.count(TAM_COOPTIMIZATIONS)
        return CoOptResult(
            tam_width=problem.tam_width,
            assigned_widths=assigned,
            schedule=schedule,
            scheduler=scheduler,
            useful_bits=problem.useful_bits(),
            delivered_bits=delivered,
            lower_bound=problem.lower_bound(),
        )


def design_space(
    problem: TamProblem,
    tam_widths: Sequence[int],
    schedulers: Sequence[str] = ("greedy", "binpack"),
    candidate_widths: Optional[Sequence[int]] = None,
    *,
    runtime=None,
) -> List[CoOptResult]:
    """Evaluate a width x scheduler grid of one problem's cores.

    Width-major order, schedulers in the given order within each width —
    the deterministic flattening the sweep engine and the benchmarks
    both rely on.
    """
    results = []
    for width in tam_widths:
        sub = problem.at_width(width)
        for scheduler in schedulers:
            results.append(
                cooptimize(
                    sub,
                    scheduler=scheduler,
                    candidate_widths=candidate_widths,
                    runtime=runtime,
                )
            )
    return results


def pareto_front(results: Iterable[CoOptResult]) -> List[CoOptResult]:
    """The non-dominated (tam_width, makespan, delivered_bits) points.

    A result is dominated when another is no worse on all three axes
    and strictly better on at least one; survivors come back sorted by
    (tam_width, makespan, scheduler) for deterministic output.
    """
    pool = list(results)

    def dominates(a: CoOptResult, b: CoOptResult) -> bool:
        no_worse = (
            a.tam_width <= b.tam_width
            and a.makespan <= b.makespan
            and a.delivered_bits <= b.delivered_bits
        )
        strictly = (
            a.tam_width < b.tam_width
            or a.makespan < b.makespan
            or a.delivered_bits < b.delivered_bits
        )
        return no_worse and strictly

    front = [
        candidate
        for candidate in pool
        if not any(dominates(other, candidate) for other in pool)
    ]
    return sorted(front, key=lambda r: (r.tam_width, r.makespan, r.scheduler))


def _legacy_time_volume_tradeoff(
    specs: Sequence[CoreTestSpec],
    tam_widths: Sequence[int],
) -> List[Tuple[int, int, int]]:
    """The pre-redesign ``time_volume_tradeoff`` — greedy enumeration.

    Exposed through the deprecation shims only; new code calls
    :func:`design_space` and reads the richer :class:`CoOptResult`.
    """
    points = []
    for width in tam_widths:
        problem = TamProblem(cores=tuple(specs), tam_width=width)
        result = _cooptimize_active(problem, "greedy", None)
        points.append((width, result.makespan, result.delivered_bits))
    return points
