"""TAM and wrapper-design substrate (the paper's scoped-out dimension)."""

from .abort_on_fail import (
    AbortOnFailStudy,
    FailProbability,
    expected_abort_time,
    order_abort_aware,
    order_shortest_first,
    study,
)
from .cooptimization import (
    CoOptimizationResult,
    ParetoPoint,
    cooptimize,
    pareto_widths,
    time_volume_tradeoff,
    width_saturation,
)
from .power import (
    CorePower,
    default_power_model,
    peak_power,
    schedule_power_constrained,
    verify_power,
)
from .architectures import (
    ArchitectureResult,
    CoreTestSpec,
    compare_architectures,
    core_specs_from_soc,
    daisychain_architecture,
    distribution_architecture,
    multiplexing_architecture,
)
from .idle_bits import IdleBitReport, idle_bit_report, idle_bit_sweep, useful_bits_check
from .scheduling import (
    Schedule,
    ScheduledTest,
    schedule_greedy,
    schedule_serial,
    schedule_summary,
)
from .wrapper_design import (
    WrapperChain,
    WrapperDesign,
    balanced_chain_lengths,
    design_wrapper,
)

__all__ = [
    "AbortOnFailStudy",
    "ArchitectureResult",
    "FailProbability",
    "CoOptimizationResult",
    "CorePower",
    "ParetoPoint",
    "CoreTestSpec",
    "IdleBitReport",
    "Schedule",
    "ScheduledTest",
    "WrapperChain",
    "WrapperDesign",
    "balanced_chain_lengths",
    "compare_architectures",
    "cooptimize",
    "core_specs_from_soc",
    "daisychain_architecture",
    "default_power_model",
    "design_wrapper",
    "distribution_architecture",
    "expected_abort_time",
    "idle_bit_report",
    "idle_bit_sweep",
    "multiplexing_architecture",
    "order_abort_aware",
    "order_shortest_first",
    "pareto_widths",
    "peak_power",
    "schedule_greedy",
    "schedule_power_constrained",
    "schedule_serial",
    "schedule_summary",
    "study",
    "time_volume_tradeoff",
    "useful_bits_check",
    "verify_power",
    "width_saturation",
]
