"""TAM and wrapper-design substrate (the paper's scoped-out dimension).

The public surface is the unified co-optimization API:

* :class:`TamProblem` — the instance (core test specs + TAM width),
  built directly or via ``TamProblem.from_soc`` /
  ``TamProblem.from_benchmark``;
* :func:`cooptimize` — solve it with one of :data:`SCHEDULERS`
  (``"serial"``, ``"greedy"``, ``"binpack"``), optionally under a
  :class:`~repro.runtime.session.Runtime` for tracing;
* :class:`CoOptResult` — schedule, per-core widths, and the full
  test-time / test-data-volume accounting;
* :func:`design_space` / :func:`pareto_front` — evaluate a width x
  scheduler grid and prune it to the non-dominated points.

Everything shares the typed result hierarchy rooted at
:class:`TamResult` (``Schedule``, ``ArchitectureResult``,
``IdleBitReport``, ``AbortOnFailStudy``, ``CoOptResult``), each
flattening to a JSON-able record via ``as_record()`` for the sweep
engine.

Deprecated (import still works, with a :class:`DeprecationWarning`):
``CoOptimizationResult`` (now :class:`CoOptResult`),
``schedule_summary`` (now ``Schedule.as_record()``), and
``time_volume_tradeoff`` (now :func:`design_space`).
"""

import warnings as _warnings
from typing import Any

from .abort_on_fail import (
    AbortOnFailStudy,
    FailProbability,
    expected_abort_time,
    order_abort_aware,
    order_shortest_first,
    study,
)
from .architectures import (
    ArchitectureResult,
    compare_architectures,
    core_specs_from_soc,
    daisychain_architecture,
    distribution_architecture,
    multiplexing_architecture,
)
from .idle_bits import IdleBitReport, idle_bit_report, idle_bit_sweep, useful_bits_check
from .power import (
    CorePower,
    default_power_model,
    peak_power,
    schedule_power_constrained,
    verify_power,
)
from .problem import (
    DEFAULT_CANDIDATE_WIDTHS,
    SCHEDULERS,
    CoOptResult,
    TamProblem,
    cooptimize,
    design_space,
    pareto_front,
)
from .scheduling import (
    makespan_lower_bound,
    schedule_best_fit,
    schedule_greedy,
    schedule_serial,
)
from .types import (
    CoreTestSpec,
    ParetoPoint,
    Schedule,
    ScheduledTest,
    TamResult,
    pareto_widths,
    width_saturation,
)
from .wrapper_design import (
    WrapperChain,
    WrapperDesign,
    balanced_chain_lengths,
    design_wrapper,
    partition_scan_lengths,
    spread_level,
    wrapper_bottlenecks,
)

__all__ = [
    "AbortOnFailStudy",
    "ArchitectureResult",
    "CoOptResult",
    "CorePower",
    "CoreTestSpec",
    "DEFAULT_CANDIDATE_WIDTHS",
    "FailProbability",
    "IdleBitReport",
    "ParetoPoint",
    "SCHEDULERS",
    "Schedule",
    "ScheduledTest",
    "TamProblem",
    "TamResult",
    "WrapperChain",
    "WrapperDesign",
    "balanced_chain_lengths",
    "compare_architectures",
    "cooptimize",
    "core_specs_from_soc",
    "daisychain_architecture",
    "default_power_model",
    "design_space",
    "design_wrapper",
    "distribution_architecture",
    "expected_abort_time",
    "idle_bit_report",
    "idle_bit_sweep",
    "makespan_lower_bound",
    "multiplexing_architecture",
    "order_abort_aware",
    "order_shortest_first",
    "pareto_front",
    "pareto_widths",
    "partition_scan_lengths",
    "peak_power",
    "schedule_best_fit",
    "schedule_greedy",
    "schedule_power_constrained",
    "schedule_serial",
    "spread_level",
    "study",
    "useful_bits_check",
    "verify_power",
    "width_saturation",
    "wrapper_bottlenecks",
]

# Renamed/removed symbols of the pre-redesign API, kept importable
# behind DeprecationWarning (PEP 562): the warning fires on attribute
# access, so merely importing repro.tam stays deprecation-clean.
_DEPRECATED = {
    "CoOptimizationResult": "repro.tam.CoOptResult",
    "schedule_summary": "Schedule.as_record()",
    "time_volume_tradeoff": "repro.tam.design_space",
}


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED:
        _warnings.warn(
            f"repro.tam.{name} is deprecated; use {_DEPRECATED[name]} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if name == "CoOptimizationResult":
            return CoOptResult
        if name == "schedule_summary":
            from .scheduling import _schedule_summary

            return _schedule_summary
        from .problem import _legacy_time_volume_tradeoff

        return _legacy_time_volume_tradeoff
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
