"""Wrapper/TAM co-optimization (Iyengar, Chakrabarty & Marinissen, DATE 2002).

The classic companion problem to the paper's analysis: given a total TAM
width, choose per-core wrapper widths and a schedule minimizing test
time.  Two tools live here:

* per-core **Pareto-optimal widths** — the staircase of TAM widths at
  which a core's test time actually improves (adding a wire beyond a
  bottleneck chain buys nothing);
* a **width-enumeration co-optimizer** that, for each candidate core
  width from the Pareto set, greedily packs the schedule and keeps the
  best makespan.

These feed the test-time side of the modular story: TDV (this paper's
metric) and test time (the wider literature's) respond differently to
architecture choices, which the trade-off experiment charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .architectures import CoreTestSpec, _wrapper
from .scheduling import Schedule, schedule_greedy


@dataclass(frozen=True)
class ParetoPoint:
    """One useful (width, test time) operating point for a core."""

    width: int
    test_time_cycles: int


def pareto_widths(spec: CoreTestSpec, max_width: int) -> List[ParetoPoint]:
    """The Pareto-optimal TAM widths of one core, ascending width.

    A width is kept only if it strictly beats every narrower width —
    the staircase effect of unsplittable internal scan chains: once the
    longest chain is alone on a wire, extra wires stop helping.
    """
    if max_width < 1:
        raise ValueError("max_width must be >= 1")
    points: List[ParetoPoint] = []
    best = None
    for width in range(1, max_width + 1):
        time = _wrapper(spec, width).test_time_cycles(spec.patterns)
        if best is None or time < best:
            points.append(ParetoPoint(width=width, test_time_cycles=time))
            best = time
    return points


def width_saturation(spec: CoreTestSpec, max_width: int = 64) -> int:
    """The width beyond which a core's test time stops improving."""
    return pareto_widths(spec, max_width)[-1].width


@dataclass
class CoOptimizationResult:
    """Best schedule found and the width assignment behind it."""

    tam_width: int
    assigned_widths: Dict[str, int]
    schedule: Schedule

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def cooptimize(
    specs: Sequence[CoreTestSpec],
    tam_width: int,
    candidate_widths: Sequence[int] = (1, 2, 4, 8, 16),
) -> CoOptimizationResult:
    """Pick one shared core width from the candidates; keep the best.

    A deliberately simple co-optimizer (the literature's ILP/B&B
    variants buy a few percent): every candidate width bounded by the
    TAM is tried for all cores, schedules are packed greedily, and the
    smallest makespan wins.  Deterministic.
    """
    if not specs:
        raise ValueError("no cores to schedule")
    best: CoOptimizationResult = None  # type: ignore[assignment]
    for width in candidate_widths:
        if width > tam_width:
            continue
        schedule = schedule_greedy(specs, tam_width, preferred_width=width)
        if best is None or schedule.makespan < best.makespan:
            best = CoOptimizationResult(
                tam_width=tam_width,
                assigned_widths={spec.name: min(width, tam_width) for spec in specs},
                schedule=schedule,
            )
    if best is None:
        raise ValueError("no candidate width fits the TAM")
    return best


def time_volume_tradeoff(
    specs: Sequence[CoreTestSpec],
    tam_widths: Sequence[int],
) -> List[Tuple[int, int, int]]:
    """(TAM width, best makespan, delivered bits) along the width axis.

    Test *time* falls with TAM width while delivered test *data volume*
    rises (idle padding) — the two-axis picture the paper's useful-bits
    analysis deliberately projects down to one axis.
    """
    points = []
    for width in tam_widths:
        result = cooptimize(specs, width)
        delivered = 0
        for spec in specs:
            design = _wrapper(spec, result.assigned_widths[spec.name])
            delivered += spec.patterns * design.shifted_bits_per_pattern()
        points.append((width, result.makespan, delivered))
    return points
