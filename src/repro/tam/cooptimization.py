"""Backwards-compatibility shim for the old co-optimization module.

The real implementation moved in the API redesign: the Pareto staircase
lives in :mod:`repro.tam.types`, the solver behind the unified
``TamProblem`` / :func:`~repro.tam.problem.cooptimize` /
``CoOptResult`` surface in :mod:`repro.tam.problem`.  This module keeps
the old import paths alive:

* ``pareto_widths`` / ``width_saturation`` / ``ParetoPoint`` /
  ``cooptimize`` re-export unchanged (still public, just relocated);
* ``CoOptimizationResult`` and ``time_volume_tradeoff`` are deprecated
  and emit a :class:`DeprecationWarning` on first access —
  ``CoOptimizationResult`` *is* :class:`~repro.tam.problem.CoOptResult`
  (every old attribute still works), and ``time_volume_tradeoff`` is
  subsumed by :func:`~repro.tam.problem.design_space`.
"""

from __future__ import annotations

import warnings
from typing import Any

from .problem import CoOptResult, _legacy_time_volume_tradeoff, cooptimize
from .types import ParetoPoint, pareto_widths, width_saturation

__all__ = [
    "CoOptimizationResult",
    "ParetoPoint",
    "cooptimize",
    "pareto_widths",
    "time_volume_tradeoff",
    "width_saturation",
]

_DEPRECATED = {
    "CoOptimizationResult": (
        CoOptResult,
        "repro.tam.CoOptResult",
    ),
    "time_volume_tradeoff": (
        _legacy_time_volume_tradeoff,
        "repro.tam.design_space",
    ),
}


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED:
        replacement, advice = _DEPRECATED[name]
        warnings.warn(
            f"repro.tam.cooptimization.{name} is deprecated; "
            f"use {advice} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return replacement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
