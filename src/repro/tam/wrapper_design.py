"""Wrapper scan-chain design (IEEE 1500 wrapper optimization).

Given a core's internal scan chains and its wrapper input/output cells,
build ``w`` wrapper chains (one per TAM wire) whose scan-in/scan-out
lengths are balanced — the classic LPT-based heuristic of Marinissen et
al. (ITC 2000) / Goel & Marinissen.  The resulting per-pattern shift
length drives both test time and the *idle bits* that the paper's
Section 3 excludes from its comparative analysis and that
:mod:`repro.tam.idle_bits` quantifies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import ConfigError


@dataclass
class WrapperChain:
    """One wrapper chain: input cells, then scan chains, then output cells."""

    input_cells: int = 0
    scan_chains: List[int] = field(default_factory=list)

    output_cells: int = 0

    @property
    def scan_length(self) -> int:
        return sum(self.scan_chains)

    @property
    def scan_in_length(self) -> int:
        """Cells on the stimulus path: input cells plus internal scan."""
        return self.input_cells + self.scan_length

    @property
    def scan_out_length(self) -> int:
        """Cells on the response path: internal scan plus output cells."""
        return self.scan_length + self.output_cells


@dataclass
class WrapperDesign:
    """A core's wrapper partitioned over ``tam_width`` chains."""

    core_name: str
    tam_width: int
    chains: List[WrapperChain]

    @property
    def max_scan_in(self) -> int:
        return max(chain.scan_in_length for chain in self.chains)

    @property
    def max_scan_out(self) -> int:
        return max(chain.scan_out_length for chain in self.chains)

    def test_time_cycles(self, patterns: int) -> int:
        """Shift-dominated test time (Goel & Marinissen's formula).

        ``(1 + max(si, so)) * p + min(si, so)`` cycles: each pattern
        needs a load overlapped with the previous unload, plus one
        capture cycle, plus a final unload.
        """
        si, so = self.max_scan_in, self.max_scan_out
        return (1 + max(si, so)) * patterns + min(si, so)

    def useful_bits_per_pattern(self) -> int:
        """Care-capable bits per pattern: every cell once in, once out."""
        return sum(
            chain.scan_in_length + chain.scan_out_length for chain in self.chains
        )

    def shifted_bits_per_pattern(self) -> int:
        """Actually shifted bits per pattern when chains run in lockstep.

        All ``tam_width`` wires shift for ``max(si, so)`` cycles in and
        the same out, so shorter chains carry padding.
        """
        return self.tam_width * (self.max_scan_in + self.max_scan_out)

    def idle_bits_per_pattern(self) -> int:
        return self.shifted_bits_per_pattern() - self.useful_bits_per_pattern()


def design_wrapper(
    core_name: str,
    scan_chains: Sequence[int],
    input_cells: int,
    output_cells: int,
    tam_width: int,
) -> WrapperDesign:
    """Partition scan chains and wrapper cells over ``tam_width`` wires.

    Internal scan chains are assigned longest-processing-time-first to
    the currently shortest wrapper chain; wrapper input (output) cells
    are then spread to equalize scan-in (scan-out) lengths.  Fixed-length
    internal chains are not split, mirroring real wrapper design rules.
    """
    if tam_width < 1:
        raise ConfigError(f"tam_width must be >= 1, got {tam_width}")
    chains = [WrapperChain() for _ in range(tam_width)]
    for length in sorted(scan_chains, reverse=True):
        if length < 0:
            raise ConfigError("scan chain lengths must be >= 0")
        shortest = min(chains, key=lambda c: c.scan_length)
        shortest.scan_chains.append(length)
    _spread_cells(chains, input_cells, attr="input_cells", key=lambda c: c.scan_in_length)
    _spread_cells(chains, output_cells, attr="output_cells", key=lambda c: c.scan_out_length)
    return WrapperDesign(core_name=core_name, tam_width=tam_width, chains=chains)


def _spread_cells(chains: List[WrapperChain], cells: int, attr: str, key) -> None:
    """Greedy one-by-one assignment of wrapper cells to the shortest chain.

    Wrapper cells are single registers, so unlike internal chains they
    can be distributed freely; one-at-a-time to the current minimum is
    optimal for the bottleneck length.
    """
    if cells < 0:
        raise ConfigError("cell counts must be >= 0")
    for _ in range(cells):
        shortest = min(chains, key=key)
        setattr(shortest, attr, getattr(shortest, attr) + 1)


def balanced_chain_lengths(total_cells: int, chain_count: int) -> List[int]:
    """The paper's "perfectly balanced" internal-chain assumption."""
    if chain_count < 1:
        raise ConfigError("chain_count must be >= 1")
    base = total_cells // chain_count
    extra = total_cells % chain_count
    return [base + (1 if i < extra else 0) for i in range(chain_count)]


# -- closed-form fast path ---------------------------------------------------
#
# The co-optimizer enumerates a core's whole Pareto staircase (every TAM
# width 1..W), and the tam experiment does that for every core of every
# ITC'02 SOC.  Materializing a WrapperDesign per width is O(cells) per
# wrapper because _spread_cells places wrapper cells one at a time; the
# functions below compute only the two numbers the cost model needs —
# the scan-in/scan-out bottleneck lengths — in O(chains log width).
# They are differentially tested against design_wrapper.


def partition_scan_lengths(
    scan_chains: Sequence[int], tam_width: int
) -> List[int]:
    """Per-wrapper-chain internal scan lengths after LPT assignment.

    Replays :func:`design_wrapper`'s longest-first / currently-shortest
    assignment on a heap keyed ``(length, chain_index)`` — the same
    chain ``min()`` would pick, including ties — and returns just the
    resulting lengths, indexed by wrapper chain.
    """
    if tam_width < 1:
        raise ConfigError(f"tam_width must be >= 1, got {tam_width}")
    heap: List[Tuple[int, int]] = [(0, index) for index in range(tam_width)]
    lengths = [0] * tam_width
    for length in sorted(scan_chains, reverse=True):
        if length < 0:
            raise ConfigError("scan chain lengths must be >= 0")
        current, index = heapq.heappop(heap)
        lengths[index] = current + length
        heapq.heappush(heap, (lengths[index], index))
    return lengths


def spread_level(lengths: Sequence[int], cells: int) -> int:
    """Bottleneck after greedily spreading ``cells`` over ``lengths``.

    Equals ``max(chain lengths)`` after :func:`_spread_cells` adds
    ``cells`` single-register wrapper cells one at a time to the current
    minimum: water-filling — the cells fill the valleys below the
    existing top first, and only a surplus raises the bottleneck, to the
    least level whose capacity ``sum(max(0, level - s))`` holds them all.
    """
    if cells < 0:
        raise ConfigError("cell counts must be >= 0")
    if not lengths:
        raise ConfigError("need at least one chain to spread cells over")
    top = max(lengths)
    if sum(top - s for s in lengths) >= cells:
        return top
    low, high = top, top + cells
    while low < high:
        mid = (low + high) // 2
        if sum(mid - s for s in lengths) >= cells:
            high = mid
        else:
            low = mid + 1
    return low


def wrapper_bottlenecks(
    scan_chains: Sequence[int],
    input_cells: int,
    output_cells: int,
    tam_width: int,
) -> Tuple[int, int]:
    """``(max_scan_in, max_scan_out)`` of the LPT wrapper, closed-form.

    Input and output cells spread independently over the same internal
    scan partition (a wrapper cell sits on only one of the two paths),
    so each bottleneck is one :func:`spread_level` over the
    :func:`partition_scan_lengths` baseline.
    """
    lengths = partition_scan_lengths(scan_chains, tam_width)
    return (
        spread_level(lengths, input_cells),
        spread_level(lengths, output_cells),
    )
