"""repro — reproduction of Sinanoglu & Marinissen, DATE 2008.

*Analysis of The Test Data Volume Reduction Benefit of Modular SOC
Testing* quantifies how much test data volume (TDV) modular, wrapped,
core-based SOC testing saves over monolithic testing of the flattened
design.  This package implements the paper's TDV model (Equations 1-8)
and every substrate its evaluation depends on:

``repro.core``
    The TDV formulas, the penalty/benefit decomposition, variation
    statistics, design-space sweeps, and table rendering.
``repro.soc``
    The SOC data model: cores, hierarchy, IEEE 1500-style wrappers,
    flattening.
``repro.circuit`` / ``repro.atpg``
    A gate-level netlist model with full-scan insertion, logic cones,
    and a from-scratch stuck-at ATPG (PODEM + fault simulation +
    compaction), replacing the paper's ATALANTA runs.
``repro.synth``
    Deterministic cone-structured circuit generation with ISCAS'89
    profiles; assembles the paper's SOC1 and SOC2.
``repro.itc02``
    The ITC'02 benchmark SOCs (``.soc`` format, shipped data, calibrated
    reconstruction solver, published table values).
``repro.tam``
    Wrapper/TAM design and scheduling substrate for the ablations the
    paper scopes out (idle bits, imbalanced chains).
``repro.experiments``
    One module per paper table/figure, plus a CLI runner.
``repro.runtime``
    The execution layer: run identity (``AtpgConfig``), the
    content-addressed ATPG result cache, and the parallel executor
    behind every experiment (``Runtime``).
``repro.service``
    ATPG-as-a-service: a stdlib-only asyncio job server (fair-share
    multi-tenant queue, single-flight dedupe, durable resume) plus the
    thin client — ``repro serve`` / ``repro submit`` / ``repro bench``.
``repro.observability``
    Zero-dependency tracing/metrics: nested spans, typed counters,
    JSONL traces, per-run summaries — off (and free) by default.
``repro.io``
    The public design-file loaders (``load_soc``, ``load_netlist``)
    with their format sniffing.
``repro.errors``
    The typed exception hierarchy (everything derives from
    ``ReproError``; parser errors stay ``ValueError``-compatible).

:class:`Runtime` is the single public execution entry point: build one
(or use ``Runtime.from_flags``) and pass it as the uniform ``runtime=``
parameter every ATPG-running entry point accepts.
"""

from .core import (
    TdvSummary,
    analyze,
    decompose,
    summarize,
    tdv_benefit,
    tdv_modular,
    tdv_monolithic,
    tdv_monolithic_optimistic,
    tdv_penalty,
)
from .errors import (
    AbortedError,
    CacheCorruptionError,
    ConfigError,
    JobFailure,
    JobRetriesExhaustedError,
    JobStateError,
    JobTimeoutError,
    NetlistParseError,
    QuotaExceededError,
    RateLimitedError,
    ReproError,
    ServiceError,
    SocFormatError,
    UnknownBenchmarkError,
    UnknownJobError,
)
from .soc import Core, Soc, SocBuilder, flatten, isocost

__version__ = "1.0.0"


def __getattr__(name):
    # The runtime facade re-exported lazily: it drags in the ATPG stack,
    # which plain TDV-model users never need to import.
    if name in (
        "AtpgConfig",
        "Runtime",
        "AtpgResultCache",
        "RunManifest",
        "ExecutionPolicy",
        "ChaosConfig",
        "RunJournal",
        "JobOutcome",
    ):
        from . import runtime

        return getattr(runtime, name)
    if name in ("load_soc", "load_netlist"):
        from . import io

        return getattr(io, name)
    # The service facade, also lazy: it pulls in asyncio plumbing that
    # library users of the TDV model and engine never touch.
    if name in ("JobServer", "ServiceClient", "ServiceConfig"):
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AbortedError",
    "AtpgConfig",
    "AtpgResultCache",
    "CacheCorruptionError",
    "ChaosConfig",
    "ConfigError",
    "ExecutionPolicy",
    "JobFailure",
    "JobOutcome",
    "JobRetriesExhaustedError",
    "JobServer",
    "JobStateError",
    "JobTimeoutError",
    "NetlistParseError",
    "QuotaExceededError",
    "RateLimitedError",
    "ReproError",
    "RunJournal",
    "RunManifest",
    "Runtime",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SocFormatError",
    "UnknownBenchmarkError",
    "UnknownJobError",
    "Core",
    "Soc",
    "SocBuilder",
    "TdvSummary",
    "analyze",
    "decompose",
    "flatten",
    "isocost",
    "load_netlist",
    "load_soc",
    "summarize",
    "tdv_benefit",
    "tdv_modular",
    "tdv_monolithic",
    "tdv_monolithic_optimistic",
    "tdv_penalty",
    "__version__",
]
