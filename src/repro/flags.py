"""The shared CLI flag registry behind every ``repro`` subcommand.

One unified ``repro`` command fronts the whole reproduction — ``repro
run`` (single-netlist ATPG), ``repro experiments``, ``repro serve`` /
``repro submit`` / ``repro bench`` (the job service) — and they agree
on flags because the flags are defined exactly once, here, as
``add_*_arguments(parser)`` groups plus the matching ``*_from_args``
constructors:

=============================  ========================================
:func:`add_runtime_arguments`  ``--workers --cache-dir --no-cache
                               --backend --stream --trace --metrics
                               --deadline --retries --on-error
                               --run-dir --resume --profile``
                               (execution, shared by every
                               ATPG-running subcommand)
:func:`add_experiment_arguments`  experiment-specific knobs
                               (``--tam-widths``, ...)
:func:`add_service_arguments`  ``repro serve`` deployment knobs →
                               :class:`~repro.service.ServiceConfig`
:func:`add_client_arguments`   ``--host --port --tenant`` for
                               service-facing subcommands
=============================  ========================================

:mod:`repro.experiments.runner` re-exports the historical names so
pre-consolidation imports keep working.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from .runtime.session import Runtime

# -- shared validators --------------------------------------------------


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _int_list(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        )
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _str_list(text: str) -> List[str]:
    values = [part.strip() for part in text.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected at least one name")
    return values


# -- runtime execution flags --------------------------------------------


def add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution flags shared by every ATPG-running subcommand."""
    parser.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="worker processes for per-core/per-circuit ATPG fan-out "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="ATPG result cache directory (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro/atpg)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the ATPG result cache entirely",
    )
    parser.add_argument(
        "--backend", choices=("auto", "pure", "numpy"), default=None,
        help="fault-simulation kernel backend (default: $REPRO_BACKEND "
             "or auto; every backend is bit-identical)",
    )
    parser.add_argument(
        "--stream", type=int, choices=(1, 2), default=None,
        help="pattern-stream epoch: 1 = legacy sequential draws "
             "(default), 2 = counter-based order-independent stream "
             "(changes the generated bits; part of the cache key)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a JSONL span/counter trace of the whole run to FILE",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry summary table to stderr after the run",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock deadline; a job past it aborts "
             "cooperatively with a timeout (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="re-attempt failed jobs up to N extra times (implies "
             "--on-error retry; timeouts retry under a perturbed seed)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        help="what a failed job does to the run: raise (default), skip "
             "(record and continue), or retry",
    )
    parser.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="journal every completed job to DIR (jobs/ + manifest.json) "
             "so a killed run can be resumed",
    )
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="run under cProfile and dump pstats data to FILE "
             "(parent process only; inspect with python -m pstats FILE)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the run journaled in --run-dir: journaled jobs are "
             "skipped, output is bit-identical to an uninterrupted run",
    )


def runtime_from_args(args: argparse.Namespace, seed: Optional[int] = None) -> Runtime:
    """Build the Runtime the shared flags describe."""
    return Runtime.from_flags(
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        seed=seed,
        trace=args.trace,
        metrics=args.metrics,
        deadline=args.deadline,
        retries=args.retries,
        on_error=args.on_error,
        run_dir=args.run_dir,
        resume=args.resume,
        backend=getattr(args, "backend", None),
        stream=getattr(args, "stream", None),
    )


def report_runtime(runtime: Runtime) -> None:
    """Print the run manifest and telemetry to stderr (stdout carries
    only tables)."""
    if runtime.manifest.job_count:
        print(f"[runtime] {runtime.summary()}", file=sys.stderr)
    tracer = runtime.tracer
    if tracer is None:
        return
    if runtime.metrics_requested:
        print(f"[metrics]\n{tracer.summary()}", file=sys.stderr)
    tracer.flush()
    if runtime.trace_path:
        print(f"[trace] wrote {runtime.trace_path}", file=sys.stderr)


@contextmanager
def maybe_profile(args: argparse.Namespace):
    """cProfile the enclosed block when ``--profile FILE`` was given.

    The pstats dump lands on FILE even if the block raises, so a
    profile of a run that died at its deadline is still inspectable.
    Worker processes are not profiled — run with ``--workers 1`` to
    see the whole flow in one profile.
    """
    path = getattr(args, "profile", None)
    if not path:
        yield
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"[profile] wrote {path}", file=sys.stderr)


# -- experiment flags ---------------------------------------------------


def add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment-specific flags (each maps to one experiment's kwarg)."""
    from .tam import SCHEDULERS

    group = parser.add_argument_group("tam experiment")
    group.add_argument(
        "--tam-widths", type=_int_list, default=None, metavar="W,W,...",
        help="TAM widths to sweep, comma-separated "
             "(default: 8,16,24,32,48,64)",
    )
    group.add_argument(
        "--tam-socs", type=_str_list, default=None, metavar="SOC,SOC,...",
        help="ITC'02 SOCs to sweep, comma-separated "
             "(default: the full ten-SOC suite)",
    )
    group.add_argument(
        "--scheduler", choices=SCHEDULERS, default=None,
        help="restrict the sweep to one test scheduler "
             "(default: greedy and binpack, so their makespans compare)",
    )
    group.add_argument(
        "--tam-front", default=None, metavar="FILE",
        help="write the surviving (width, makespan, TDV) Pareto front "
             "as a JSON artifact to FILE",
    )


def experiment_options(args: argparse.Namespace) -> Dict[str, Any]:
    """The experiment keyword options the parsed flags describe."""
    mapping = {
        "tam_widths": getattr(args, "tam_widths", None),
        "socs": getattr(args, "tam_socs", None),
        "scheduler": getattr(args, "scheduler", None),
        "front_path": getattr(args, "tam_front", None),
    }
    return {key: value for key, value in mapping.items() if value is not None}


# -- service flags ------------------------------------------------------


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Deployment knobs of ``repro serve`` (one-to-one with
    :class:`~repro.service.ServiceConfig` — see its docstrings)."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port; 0 asks for an ephemeral one "
                             "(default: 8765)")
    parser.add_argument("--workers", type=_worker_count, default=1,
                        metavar="N",
                        help="executor worker processes per batch")
    parser.add_argument("--batch-size", type=int, default=16, metavar="N",
                        help="jobs drained from the fair-share queue per "
                             "executor round (default: 16)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared result-cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the shared result cache")
    parser.add_argument("--journal-dir", default=None, metavar="DIR",
                        help="durability root: spool every submission and "
                             "journal every result under DIR")
    parser.add_argument("--resume", action="store_true",
                        help="drain the backlog spooled in --journal-dir "
                             "by a previous (possibly killed) server")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS", help="per-job deadline")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-queue a failed job up to N times")
    parser.add_argument("--max-queued", type=int, default=100_000,
                        metavar="N",
                        help="per-tenant live-job quota (default: 100000)")
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="PER_SECOND",
                        help="per-tenant token-bucket submission rate "
                             "(default: unlimited)")
    parser.add_argument("--rate-burst", type=int, default=100, metavar="N",
                        help="token-bucket burst capacity (default: 100)")
    parser.add_argument("--backend", choices=("auto", "pure", "numpy"),
                        default=None,
                        help="default kernel backend for submitted jobs")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL trace of the server's lifetime")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the in-process telemetry tracer "
                             "(served at /v1/metrics)")
    parser.add_argument("--exit-when-idle", action="store_true",
                        help="exit once the queue drains (backlog replay "
                             "and CI smoke mode)")


def add_client_arguments(parser: argparse.ArgumentParser) -> None:
    """Where a service-facing subcommand finds its server."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="server port (default: 8765)")
