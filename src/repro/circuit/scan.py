"""Full-scan insertion and scan-chain construction.

Conventional full scan makes every flip-flop controllable and
observable "as if they were regular primary inputs and outputs"
(Section 3).  For test *generation* that is purely a view change —
:meth:`~repro.circuit.netlist.Netlist.combinational_inputs` — but test
*delivery* needs the flip-flops stitched into shift chains, and chain
balance determines the idle bits the paper's analysis deliberately
excludes.  This module builds the chains; the idle-bit ablation lives
in :mod:`repro.tam.idle_bits`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .gates import GateType
from .netlist import Netlist


@dataclass(frozen=True)
class ScanChain:
    """An ordered shift register of scan flip-flops."""

    name: str
    cells: tuple

    def __len__(self) -> int:
        return len(self.cells)


@dataclass
class ScanInsertion:
    """The scan configuration of one design."""

    netlist_name: str
    chains: List[ScanChain] = field(default_factory=list)

    @property
    def cell_count(self) -> int:
        return sum(len(chain) for chain in self.chains)

    @property
    def max_chain_length(self) -> int:
        """Shift cycles needed per load/unload — the test-time driver."""
        return max((len(chain) for chain in self.chains), default=0)

    @property
    def imbalance(self) -> int:
        """Longest minus shortest chain; 0 or 1 means balanced."""
        if not self.chains:
            return 0
        lengths = [len(chain) for chain in self.chains]
        return max(lengths) - min(lengths)

    def idle_bits_per_pattern(self) -> int:
        """Padding bits per load when all chains shift in lockstep.

        Every chain shorter than the longest receives (and emits)
        don't-care padding for the length difference; these are the
        "idle test bits" of the paper's Section 3 scoping remark.
        """
        longest = self.max_chain_length
        return sum(longest - len(chain) for chain in self.chains)


def insert_scan(
    netlist: Netlist,
    chain_count: int = 1,
    balanced: bool = True,
) -> ScanInsertion:
    """Partition a netlist's flip-flops into scan chains.

    ``balanced=True`` deals cells round-robin, producing chains whose
    lengths differ by at most one (the paper's "perfectly balanced"
    assumption).  ``balanced=False`` packs cells contiguously, yielding
    the worst-case imbalance used by the idle-bit ablation.
    """
    if chain_count < 1:
        raise ValueError(f"chain_count must be >= 1, got {chain_count}")
    cells = [ff.output for ff in netlist.flip_flops]
    groups: List[List[str]] = [[] for _ in range(chain_count)]
    if balanced:
        for index, cell in enumerate(cells):
            groups[index % chain_count].append(cell)
    else:
        # Contiguous fill: ceil-sized blocks until cells run out, which
        # can leave later chains empty — maximal imbalance.
        block = -(-len(cells) // chain_count) if cells else 0
        for index, cell in enumerate(cells):
            groups[index // block if block else 0].append(cell)
    chains = [
        ScanChain(name=f"{netlist.name}_chain{i}", cells=tuple(group))
        for i, group in enumerate(groups)
    ]
    return ScanInsertion(netlist_name=netlist.name, chains=chains)


def stitch_scan_chains(netlist: Netlist, insertion: ScanInsertion) -> Netlist:
    """Build the gate-level mux-scan netlist for a scan configuration.

    Every flip-flop's D input is replaced by a 2:1 mux: functional data
    when ``scan_enable`` is 0, the previous chain cell (or the chain's
    ``scan_in`` port) when 1.  Each chain's last cell drives a
    ``scan_out`` output.  The mux is synthesized from the existing
    primitives (``OR(AND(d, !se), AND(si, se))``), so the result is an
    ordinary netlist that every tool in the package — including the
    cycle-accurate simulator used to *prove* the shift behaviour —
    handles unchanged.
    """
    cells = {cell for chain in insertion.chains for cell in chain.cells}
    if cells != {ff.output for ff in netlist.flip_flops}:
        raise ValueError(
            f"{netlist.name}: scan insertion does not cover the flip-flops"
        )
    stitched = Netlist(f"{netlist.name}_scan")
    for net in netlist.inputs:
        stitched.add_input(net)
    stitched.add_input("scan_enable")
    stitched.add_gate(GateType.NOT, "scan_enable_n", ["scan_enable"])

    previous_in_chain: Dict[str, str] = {}
    for index, chain in enumerate(insertion.chains):
        scan_in = f"scan_in{index}"
        stitched.add_input(scan_in)
        upstream = scan_in
        for cell in chain.cells:
            previous_in_chain[cell] = upstream
            upstream = cell
        if chain.cells:
            scan_out = f"scan_out{index}"
            stitched.add_gate(GateType.BUF, scan_out, [chain.cells[-1]])
            stitched.mark_output(scan_out)

    for ff in netlist.flip_flops:
        mux = f"{ff.output}_scanmux"
        stitched.add_flip_flop(ff.output, mux)
        stitched.add_gate(
            GateType.AND, f"{mux}_func", [ff.data, "scan_enable_n"]
        )
        stitched.add_gate(
            GateType.AND, f"{mux}_shift",
            [previous_in_chain[ff.output], "scan_enable"],
        )
        stitched.add_gate(GateType.OR, mux, [f"{mux}_func", f"{mux}_shift"])

    for gate in netlist.topological_order():
        stitched.add_gate(gate.gate_type, gate.output, gate.inputs)
    for net in netlist.outputs:
        stitched.mark_output(net)
    stitched.validate()
    return stitched


def shift_in_sequence(
    insertion: ScanInsertion,
    load: Dict[str, int],
    functional_inputs: Optional[Dict[str, int]] = None,
) -> List[Dict[str, int]]:
    """The per-cycle input vectors that shift ``load`` into the chains.

    ``load`` maps scan-cell names to target values.  Returns
    ``max_chain_length`` cycles of assignments for the stitched netlist
    (scan_enable high, scan_in pins carrying the serial streams): cell
    values enter last-cell-first, so after the final cycle every cell
    holds its target — the claim the seqsim-based test proves.
    """
    cycles = insertion.max_chain_length
    functional_inputs = functional_inputs or {}
    sequence: List[Dict[str, int]] = []
    for cycle in range(cycles):
        step: Dict[str, int] = {"scan_enable": 1}
        step.update(functional_inputs)
        for index, chain in enumerate(insertion.chains):
            if not chain.cells:
                continue
            # A bit injected at cycle c undergoes (cycles-1-c) further
            # shifts, ending in cell (cycles-1-c).  Chains shorter than
            # the longest therefore lead with padding (those early bits
            # fall off the far end), then carry the real stream.
            position = cycles - 1 - cycle
            if position < len(chain.cells):
                step[f"scan_in{index}"] = load.get(chain.cells[position], 0)
            else:
                step[f"scan_in{index}"] = 0
        sequence.append(step)
    return sequence


def shift_cycles_per_pattern(insertion: ScanInsertion) -> int:
    """Shift cycles to load one pattern (and unload the previous one)."""
    return insertion.max_chain_length


def chain_lengths(insertion: ScanInsertion) -> Sequence[int]:
    return [len(chain) for chain in insertion.chains]
