"""Random-simulation equivalence checking between netlists.

The flattening and merge operations must preserve every core's logic
function — a correctness obligation of the monolithic-vs-modular
comparison (the paper compares two *test* strategies for the *same*
logic).  This checker drives both designs with the same random vectors
through the bit-parallel simulator and compares the mapped outputs.
Random simulation is refutation-complete in practice for the circuit
sizes here (thousands of vectors across all outputs) and is the
standard light-weight check before a full formal pass.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .netlist import Netlist

# NOTE: the simulators live in repro.atpg, which sits *above* this layer
# (it imports repro.circuit); they are imported inside the functions to
# keep the package import graph acyclic.


@dataclass(frozen=True)
class Counterexample:
    """One input vector on which the two designs disagree."""

    assignment: Dict[str, int]  # over the reference design's inputs
    output: str  # the reference output that differs
    reference_value: Optional[int]
    candidate_value: Optional[int]


@dataclass
class EquivalenceResult:
    equivalent: bool
    vectors_checked: int
    counterexample: Optional[Counterexample] = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    reference: Netlist,
    candidate: Netlist,
    input_map: Optional[Dict[str, str]] = None,
    output_map: Optional[Dict[str, str]] = None,
    vectors: int = 1024,
    seed: int = 0,
) -> EquivalenceResult:
    """Compare two netlists' combinational (full-scan) functions.

    ``input_map``/``output_map`` translate reference names to candidate
    names (identity by default).  X outputs are compared as X — both
    designs must be undefined together for fully-specified vectors that
    is vacuous, but the maps let callers compare partial cones too.
    """
    from ..atpg.compiled import CompiledCircuit
    from ..atpg.logicsim import (
        RailBatch,
        pack_patterns_flat,
        simulate_flat,
        unpack_value,
    )

    input_map = input_map or {}
    output_map = output_map or {}
    ref_inputs = reference.combinational_inputs()
    ref_outputs = reference.combinational_outputs()
    cand_inputs = {input_map.get(net, net) for net in ref_inputs}
    missing = cand_inputs - set(candidate.combinational_inputs())
    if missing:
        raise ValueError(f"candidate lacks mapped inputs: {sorted(missing)[:5]}")
    cand_outputs = {output_map.get(net, net) for net in ref_outputs}
    missing = cand_outputs - set(candidate.combinational_outputs())
    if missing:
        raise ValueError(f"candidate lacks mapped outputs: {sorted(missing)[:5]}")

    ref_circuit = CompiledCircuit(reference)
    cand_circuit = CompiledCircuit(candidate)
    rng = random.Random(seed)

    checked = 0
    while checked < vectors:
        block_size = min(64, vectors - checked)
        block = [
            {net: rng.getrandbits(1) for net in ref_inputs}
            for _ in range(block_size)
        ]
        ref_patterns = [
            {ref_circuit.net_ids[net]: value for net, value in vec.items()}
            for vec in block
        ]
        cand_patterns = [
            {
                cand_circuit.net_ids[input_map.get(net, net)]: value
                for net, value in vec.items()
            }
            for vec in block
        ]
        ref_ones, ref_zeros = pack_patterns_flat(ref_circuit, ref_patterns)
        simulate_flat(ref_circuit, ref_ones, ref_zeros, block_size)
        ref_values = RailBatch(ref_ones, ref_zeros, block_size)
        cand_ones, cand_zeros = pack_patterns_flat(cand_circuit, cand_patterns)
        simulate_flat(cand_circuit, cand_ones, cand_zeros, block_size)
        cand_values = RailBatch(cand_ones, cand_zeros, block_size)
        for bit in range(block_size):
            for net in ref_outputs:
                ref_value = unpack_value(
                    ref_values[ref_circuit.net_ids[net]], bit
                )
                cand_value = unpack_value(
                    cand_values[cand_circuit.net_ids[output_map.get(net, net)]],
                    bit,
                )
                if ref_value != cand_value:
                    return EquivalenceResult(
                        equivalent=False,
                        vectors_checked=checked + bit + 1,
                        counterexample=Counterexample(
                            assignment=block[bit],
                            output=net,
                            reference_value=ref_value,
                            candidate_value=cand_value,
                        ),
                    )
        checked += block_size
    return EquivalenceResult(equivalent=True, vectors_checked=checked)


def check_instance_in_flat(
    core: Netlist,
    flat: Netlist,
    rename: Dict[str, str],
    vectors: int = 512,
    seed: int = 0,
) -> EquivalenceResult:
    """Check an instantiated core inside a flattened design.

    ``rename`` is the map returned by :meth:`Netlist.merge`.  Only the
    core's *internal* function can be compared this way (its inputs in
    the flat design may be driven by other cores), so the flat netlist
    is probed through a fresh sandbox that re-declares the mapped input
    nets as primary inputs — i.e. we compare against the instantiated
    gate structure, not the surrounding system.
    """
    sandbox = Netlist(f"{flat.name}_probe")
    for net in core.combinational_inputs():
        sandbox.add_input(rename[net])
    needed = {rename[gate.output] for gate in core.gates}
    for gate in flat.topological_order():
        if gate.output in needed:
            sandbox.add_gate(gate.gate_type, gate.output, gate.inputs)
    for net in core.outputs:
        sandbox.mark_output(rename[net])
    for ff in core.flip_flops:
        # The sandbox is combinational: expose the D nets directly.
        sandbox.mark_output(rename[ff.data])
    sandbox.validate()
    output_map = {net: rename[net] for net in core.combinational_outputs()}
    input_map = {net: rename[net] for net in core.combinational_inputs()}
    return check_equivalence(
        core, sandbox, input_map=input_map, output_map=output_map,
        vectors=vectors, seed=seed,
    )
