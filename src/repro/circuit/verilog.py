"""Structural Verilog reader/writer (gate-primitive subset).

Interop with standard flows: one module per file, built from Verilog
gate primitives (``and``, ``nand``, ``or``, ``nor``, ``xor``, ``xnor``,
``not``, ``buf``) plus a positional ``dff`` cell (``dff d0 (Q, D);``).
The subset maps one-to-one onto :class:`~repro.circuit.netlist.Netlist`
and round-trips losslessly with the ``.bench`` format.

Grammar accepted::

    module NAME (port, port, ...);
      input a, b;
      output z;
      wire t1, t2;
      nand g1 (t1, a, b);   // output first, like Verilog primitives
      dff  d0 (q, t1);
    endmodule
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Union

from ..errors import NetlistParseError
from .gates import gate_type_from_name
from .netlist import Netlist, NetlistError

_PRIMITIVES = {"and", "nand", "or", "nor", "xor", "xnor", "not", "buf"}


class VerilogFormatError(NetlistParseError):
    """Raised on unsupported or malformed structural Verilog."""


_MODULE_RE = re.compile(
    r"module\s+([A-Za-z_][\w$]*)\s*\((.*?)\)\s*;", re.DOTALL
)
_STATEMENT_RE = re.compile(r"([^;]*);")
_INSTANCE_RE = re.compile(
    r"^([a-z][a-z0-9]*)\s+([A-Za-z_][\w$]*)\s*\(\s*(.*?)\s*\)$", re.DOTALL
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def parse_verilog(text: str, name: Optional[str] = None) -> Netlist:
    """Parse one structural module into a validated netlist."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogFormatError("no module declaration found")
    module_name, _ports = module.groups()
    if "endmodule" not in text:
        raise VerilogFormatError("missing endmodule")
    body = text[module.end():text.index("endmodule")]

    netlist = Netlist(name or module_name)
    outputs: List[str] = []
    for statement in (m.group(1).strip() for m in _STATEMENT_RE.finditer(body)):
        if not statement:
            continue
        keyword, _, rest = statement.partition(" ")
        if keyword == "input":
            for net in _split_nets(rest):
                try:
                    netlist.add_input(net)
                except NetlistError as exc:
                    raise VerilogFormatError(str(exc)) from None
        elif keyword == "output":
            outputs.extend(_split_nets(rest))
        elif keyword == "wire":
            continue  # declarations carry no structure here
        else:
            _parse_instance(netlist, statement)
    for net in outputs:
        try:
            netlist.mark_output(net)
        except NetlistError as exc:
            raise VerilogFormatError(str(exc)) from None
    try:
        netlist.validate()
    except NetlistError as exc:
        raise VerilogFormatError(str(exc)) from None
    return netlist


def _split_nets(declaration: str) -> List[str]:
    nets = [net.strip() for net in declaration.split(",")]
    for net in nets:
        if not re.fullmatch(r"[A-Za-z_][\w$]*", net):
            raise VerilogFormatError(f"unsupported net declaration {net!r}")
    return nets


def _parse_instance(netlist: Netlist, statement: str) -> None:
    match = _INSTANCE_RE.match(statement)
    if match is None:
        raise VerilogFormatError(f"unparseable statement: {statement!r}")
    cell, _instance_name, ports = match.groups()
    nets = [net.strip() for net in ports.split(",")]
    if len(nets) < 2:
        raise VerilogFormatError(f"instance needs >= 2 ports: {statement!r}")
    output, inputs = nets[0], nets[1:]
    try:
        if cell == "dff":
            if len(inputs) != 1:
                raise VerilogFormatError(
                    f"dff takes exactly (Q, D): {statement!r}"
                )
            netlist.add_flip_flop(output, inputs[0])
        elif cell in _PRIMITIVES:
            netlist.add_gate(gate_type_from_name(cell), output, inputs)
        else:
            raise VerilogFormatError(f"unsupported cell {cell!r}")
    except NetlistError as exc:
        raise VerilogFormatError(str(exc)) from None


def dump_verilog(netlist: Netlist, header_comment: Optional[str] = None) -> str:
    """Serialize a netlist as one structural Verilog module."""
    safe = _sanitize(netlist.name)
    lines: List[str] = []
    if header_comment:
        lines.extend(f"// {line}" for line in header_comment.splitlines())
    ports = netlist.inputs + netlist.outputs
    lines.append(f"module {safe} ({', '.join(ports)});")
    if netlist.inputs:
        lines.append(f"  input {', '.join(netlist.inputs)};")
    if netlist.outputs:
        lines.append(f"  output {', '.join(netlist.outputs)};")
    internal = [
        net for net in netlist.nets
        if net not in set(netlist.inputs) | set(netlist.outputs)
    ]
    if internal:
        lines.append(f"  wire {', '.join(internal)};")
    for index, ff in enumerate(netlist.flip_flops):
        lines.append(f"  dff d{index} ({ff.output}, {ff.data});")
    for index, gate in enumerate(netlist.gates):
        cell = gate.gate_type.value.lower()
        operands = ", ".join((gate.output,) + gate.inputs)
        lines.append(f"  {cell} g{index} ({operands});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    safe = re.sub(r"[^\w$]", "_", name)
    if not re.match(r"[A-Za-z_]", safe):
        safe = f"m_{safe}"
    return safe


def load_verilog_file(path: Union[str, Path], name: Optional[str] = None) -> Netlist:
    path = Path(path)
    return parse_verilog(path.read_text(), name=name or path.stem)


def save_verilog_file(
    path: Union[str, Path],
    netlist: Netlist,
    header_comment: Optional[str] = None,
) -> None:
    Path(path).write_text(dump_verilog(netlist, header_comment=header_comment))
