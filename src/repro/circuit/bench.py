"""Reader/writer for the ISCAS'89 ``.bench`` netlist format.

The format (Brglez, Bryan & Kozminski, ISCAS 1989) is line-oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G10 = NAND(G0, G5)
    G17 = NOT(G10)

Gate names follow :mod:`repro.circuit.gates` (with the ``BUFF`` alias).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..errors import NetlistParseError
from .gates import gate_type_from_name
from .netlist import Netlist, NetlistError


class BenchFormatError(NetlistParseError):
    """Raised on malformed ``.bench`` input."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(r"^([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(\s*(.*?)\s*\)$")


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a validated :class:`Netlist`."""
    netlist = Netlist(name)
    pending_outputs: List[Tuple[str, int]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, net = io_match.group(1).upper(), io_match.group(2)
            if keyword == "INPUT":
                try:
                    netlist.add_input(net)
                except NetlistError as exc:
                    raise BenchFormatError(str(exc), line_number) from None
            else:
                pending_outputs.append((net, line_number))
            continue
        assign_match = _ASSIGN_RE.match(line)
        if assign_match:
            output, func, args = assign_match.groups()
            operands = [token.strip() for token in args.split(",") if token.strip()]
            try:
                if func.upper() == "DFF":
                    if len(operands) != 1:
                        raise BenchFormatError(
                            f"DFF {output!r} takes exactly one input", line_number
                        )
                    netlist.add_flip_flop(output, operands[0])
                else:
                    gate_type = gate_type_from_name(func)
                    netlist.add_gate(gate_type, output, operands)
            except BenchFormatError:
                raise
            except (NetlistError, ValueError) as exc:
                raise BenchFormatError(str(exc), line_number) from None
            continue
        raise BenchFormatError(f"unparseable line: {line!r}", line_number)
    for net, line_number in pending_outputs:
        try:
            netlist.mark_output(net)
        except NetlistError as exc:
            raise BenchFormatError(str(exc), line_number) from None
    try:
        netlist.validate()
    except NetlistError as exc:
        raise BenchFormatError(str(exc)) from None
    return netlist


def dump_bench(netlist: Netlist, header_comment: Optional[str] = None) -> str:
    """Serialize a netlist to ``.bench`` text (round-trips with the parser)."""
    lines: List[str] = []
    if header_comment:
        lines.extend(f"# {line}" for line in header_comment.splitlines())
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    lines.extend(f"{ff.output} = DFF({ff.data})" for ff in netlist.flip_flops)
    for gate in netlist.gates:
        operands = ", ".join(gate.inputs)
        bench_name = "BUFF" if gate.gate_type.value == "BUF" else gate.gate_type.value
        lines.append(f"{gate.output} = {bench_name}({operands})")
    return "\n".join(lines) + "\n"


def load_bench_file(path: Union[str, Path], name: Optional[str] = None) -> Netlist:
    """Parse a ``.bench`` file; the netlist name defaults to the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=name or path.stem)


def save_bench_file(
    path: Union[str, Path],
    netlist: Netlist,
    header_comment: Optional[str] = None,
) -> None:
    Path(path).write_text(dump_bench(netlist, header_comment=header_comment))
