"""Gate-level circuit substrate: netlists, .bench I/O, cones, scan."""

from .bench import (
    BenchFormatError,
    dump_bench,
    load_bench_file,
    parse_bench,
    save_bench_file,
)
from .cones import (
    Cone,
    cone_width_stats,
    disjoint_cone_groups,
    extract_cones,
    overlap_fraction,
    overlap_matrix,
)
from .equivalence import (
    Counterexample,
    EquivalenceResult,
    check_equivalence,
    check_instance_in_flat,
)
from .gates import GateType, Trit, evaluate_gate, gate_type_from_name
from .netlist import (
    FlipFlop,
    Gate,
    Netlist,
    NetlistError,
    compose_soc_netlist,
    netlist_stats,
)
from .scan import (
    ScanChain,
    ScanInsertion,
    chain_lengths,
    insert_scan,
    shift_in_sequence,
    stitch_scan_chains,
)
from .seqsim import SequentialTrace, settle_combinational, simulate_sequence
from .verilog import (
    VerilogFormatError,
    dump_verilog,
    load_verilog_file,
    parse_verilog,
    save_verilog_file,
)
from .scoap import (
    NetTestability,
    hardest_nets,
    scoap_measures,
    testability_summary,
)

__all__ = [
    "BenchFormatError",
    "Cone",
    "Counterexample",
    "EquivalenceResult",
    "FlipFlop",
    "Gate",
    "GateType",
    "NetTestability",
    "Netlist",
    "NetlistError",
    "ScanChain",
    "ScanInsertion",
    "SequentialTrace",
    "Trit",
    "VerilogFormatError",
    "chain_lengths",
    "check_equivalence",
    "check_instance_in_flat",
    "compose_soc_netlist",
    "cone_width_stats",
    "disjoint_cone_groups",
    "dump_bench",
    "dump_verilog",
    "evaluate_gate",
    "extract_cones",
    "gate_type_from_name",
    "hardest_nets",
    "insert_scan",
    "load_bench_file",
    "load_verilog_file",
    "netlist_stats",
    "overlap_fraction",
    "overlap_matrix",
    "parse_bench",
    "parse_verilog",
    "save_bench_file",
    "save_verilog_file",
    "scoap_measures",
    "settle_combinational",
    "shift_in_sequence",
    "simulate_sequence",
    "stitch_scan_chains",
    "testability_summary",
]
