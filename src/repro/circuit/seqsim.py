"""Cycle-accurate sequential simulation.

Everything else in the package works on the full-scan *combinational
view*; this module simulates a netlist through real clock cycles —
evaluate the combinational logic, then update every flip-flop from its
D input.  It exists to validate that view: shifting a pattern through a
gate-level stitched scan chain (:mod:`repro.circuit.scan`) must load
exactly the state the abstract model assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .gates import Trit
from .netlist import Netlist


@dataclass
class SequentialTrace:
    """State and outputs over a simulated clock sequence."""

    states: List[Dict[str, Trit]] = field(default_factory=list)  # per cycle, post-clock
    outputs: List[Dict[str, Trit]] = field(default_factory=list)  # pre-clock

    @property
    def cycles(self) -> int:
        return len(self.states)

    def final_state(self) -> Dict[str, Trit]:
        if not self.states:
            raise ValueError("no cycles simulated")
        return self.states[-1]


def simulate_sequence(
    netlist: Netlist,
    input_sequence: Sequence[Dict[str, Trit]],
    initial_state: Optional[Dict[str, Trit]] = None,
) -> SequentialTrace:
    """Clock the netlist once per entry of ``input_sequence``.

    Each cycle: apply the cycle's primary-input values together with the
    current flip-flop state, record the primary outputs, then clock —
    every flip-flop captures its D net.  Missing inputs/state bits are X
    and propagate as such.
    """
    state: Dict[str, Trit] = {
        ff.output: None for ff in netlist.flip_flops
    }
    if initial_state:
        unknown = set(initial_state) - set(state)
        if unknown:
            raise ValueError(f"unknown flip-flops in initial state: {sorted(unknown)[:5]}")
        state.update(initial_state)

    trace = SequentialTrace()
    for cycle_inputs in input_sequence:
        assignment: Dict[str, Trit] = dict(state)
        assignment.update(cycle_inputs)
        values = netlist.evaluate(assignment)
        trace.outputs.append({net: values[net] for net in netlist.outputs})
        state = {ff.output: values[ff.data] for ff in netlist.flip_flops}
        trace.states.append(dict(state))
    return trace


def settle_combinational(
    netlist: Netlist,
    inputs: Dict[str, Trit],
    state: Dict[str, Trit],
) -> Dict[str, Trit]:
    """One combinational evaluation at a given state (no clock)."""
    assignment = dict(state)
    assignment.update(inputs)
    return netlist.evaluate(assignment)
