"""Gate primitives and three-valued logic evaluation.

The netlist model supports the ISCAS'89 ``.bench`` primitive set: AND,
NAND, OR, NOR, XOR, XNOR, NOT, BUF, plus D flip-flops handled at the
netlist level.  Logic evaluation here is three-valued (0, 1, X) over
Python's ``None``-as-X convention; the ATPG's five-valued D-algebra
builds on it in :mod:`repro.atpg.values`, and the bit-parallel
simulators in :mod:`repro.atpg.logicsim` implement the same semantics
on packed machine words.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence


class GateType(enum.Enum):
    """Combinational gate primitives of the ``.bench`` format."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"

    @property
    def min_inputs(self) -> int:
        return 1 if self in (GateType.NOT, GateType.BUF) else 2

    @property
    def max_inputs(self) -> Optional[int]:
        return 1 if self in (GateType.NOT, GateType.BUF) else None

    @property
    def inverting(self) -> bool:
        """Whether the gate's output is the complement of its base function."""
        return self in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)

    @property
    def controlling_value(self) -> Optional[int]:
        """The input value that determines the output regardless of others.

        0 for AND/NAND, 1 for OR/NOR; None for XOR/XNOR/NOT/BUF, which
        have no controlling value — a fact PODEM's backtrace relies on.
        """
        if self in (GateType.AND, GateType.NAND):
            return 0
        if self in (GateType.OR, GateType.NOR):
            return 1
        return None


_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
}


def gate_type_from_name(name: str) -> GateType:
    """Resolve a ``.bench`` primitive name (case-insensitive, with aliases)."""
    upper = name.upper()
    if upper in _ALIASES:
        return _ALIASES[upper]
    try:
        return GateType[upper]
    except KeyError:
        raise ValueError(f"unknown gate type {name!r}") from None


Trit = Optional[int]  # 0, 1, or None for X


def evaluate_gate(gate_type: GateType, inputs: Sequence[Trit]) -> Trit:
    """Three-valued evaluation of one gate.

    Controlling values win over X: ``AND(0, X) == 0`` but
    ``AND(1, X)`` is X.  XOR of anything with X is X.
    """
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return _not3(inputs[0])
    if gate_type in (GateType.AND, GateType.NAND):
        value = _fold(inputs, controlling=0, identity=1)
        return _not3(value) if gate_type is GateType.NAND else value
    if gate_type in (GateType.OR, GateType.NOR):
        value = _fold(inputs, controlling=1, identity=0)
        return _not3(value) if gate_type is GateType.NOR else value
    # XOR / XNOR: any X makes the output X.
    if any(value is None for value in inputs):
        return None
    parity = 0
    for value in inputs:
        parity ^= value
    return parity if gate_type is GateType.XOR else 1 - parity


def _not3(value: Trit) -> Trit:
    return None if value is None else 1 - value


def _fold(inputs: Sequence[Trit], controlling: int, identity: int) -> Trit:
    saw_x = False
    for value in inputs:
        if value == controlling:
            return controlling
        if value is None:
            saw_x = True
    return None if saw_x else identity
