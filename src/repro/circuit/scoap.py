"""SCOAP testability measures (Goldstein 1979).

Sandia Controllability/Observability Analysis: per net, the classic
combinational measures

* ``CC0`` / ``CC1`` — the cost of setting the net to 0 / 1 (in
  "number of net assignments", inputs cost 1);
* ``CO`` — the cost of propagating the net's value to an output.

Computed over the full-scan combinational view (flip-flop outputs are
free pseudo-inputs, D nets are observable pseudo-outputs), so the
measures explain *random-pattern resistance*: a net with huge CC1 or CO
is exactly what the BIST session misses and what test-point insertion
(:mod:`repro.atpg.testpoints`) targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .gates import GateType
from .netlist import Netlist

#: Cost representing "unreachable" (kept finite to keep sums meaningful).
INFINITY = 10**9


@dataclass(frozen=True)
class NetTestability:
    """SCOAP triple for one net."""

    cc0: int
    cc1: int
    co: int

    @property
    def detect_cost_sa0(self) -> int:
        """Cost proxy for detecting stuck-at-0: set to 1 and observe."""
        return min(INFINITY, self.cc1 + self.co)

    @property
    def detect_cost_sa1(self) -> int:
        return min(INFINITY, self.cc0 + self.co)


def _controllability(netlist: Netlist) -> Dict[str, Tuple[int, int]]:
    cc: Dict[str, Tuple[int, int]] = {}
    for net in netlist.combinational_inputs():
        cc[net] = (1, 1)
    for gate in netlist.topological_order():
        inputs = [cc[name] for name in gate.inputs]
        cc[gate.output] = _gate_controllability(gate.gate_type, inputs)
    return cc


def _gate_controllability(
    gate_type: GateType, inputs: List[Tuple[int, int]]
) -> Tuple[int, int]:
    zeros = [pair[0] for pair in inputs]
    ones = [pair[1] for pair in inputs]
    if gate_type is GateType.BUF:
        return (zeros[0] + 1, ones[0] + 1)
    if gate_type is GateType.NOT:
        return (ones[0] + 1, zeros[0] + 1)
    if gate_type in (GateType.AND, GateType.NAND):
        # Output 1 needs all inputs 1; output 0 needs the cheapest 0.
        base = (min(zeros) + 1, sum(ones) + 1)
    elif gate_type in (GateType.OR, GateType.NOR):
        base = (sum(zeros) + 1, min(ones) + 1)
    else:  # XOR / XNOR: parity — enumerate even/odd-ones combinations.
        base = _xor_controllability(inputs)
    if gate_type.inverting:
        return (base[1], base[0])
    return base


def _xor_controllability(inputs: List[Tuple[int, int]]) -> Tuple[int, int]:
    """Dynamic programming over the parity of ones among the inputs."""
    even, odd = 0, INFINITY  # cost of parity-0 / parity-1 so far
    for cc0, cc1 in inputs:
        even, odd = (
            min(even + cc0, odd + cc1),
            min(even + cc1, odd + cc0),
        )
        even, odd = min(even, INFINITY), min(odd, INFINITY)
    return (even + 1, odd + 1)


def _observability(
    netlist: Netlist, cc: Dict[str, Tuple[int, int]]
) -> Dict[str, int]:
    co: Dict[str, int] = {net: INFINITY for net in netlist.nets}
    for net in netlist.combinational_outputs():
        co[net] = 0
    for gate in reversed(netlist.topological_order()):
        out_co = co.get(gate.output, INFINITY)
        if out_co >= INFINITY:
            continue
        for pin, net in enumerate(gate.inputs):
            cost = out_co + 1 + _side_input_cost(gate, pin, cc)
            if cost < co.get(net, INFINITY):
                co[net] = min(cost, INFINITY)
    return co


def _side_input_cost(gate, pin: int, cc: Dict[str, Tuple[int, int]]) -> int:
    """Cost of setting the other inputs so ``pin`` propagates."""
    total = 0
    control = gate.gate_type.controlling_value
    for other_pin, net in enumerate(gate.inputs):
        if other_pin == pin:
            continue
        cc0, cc1 = cc[net]
        if control is None:
            # XOR-family: side inputs just need *known* values; the
            # cheaper polarity suffices for sensitization.
            total += min(cc0, cc1)
        else:
            # AND/OR-family: side inputs must hold the non-controlling value.
            total += cc1 if control == 0 else cc0
    return min(total, INFINITY)


def scoap_measures(netlist: Netlist) -> Dict[str, NetTestability]:
    """CC0/CC1/CO for every net of the full-scan combinational view."""
    netlist.validate()
    cc = _controllability(netlist)
    co = _observability(netlist, cc)
    return {
        net: NetTestability(cc0=cc[net][0], cc1=cc[net][1], co=co[net])
        for net in cc
    }


def hardest_nets(
    netlist: Netlist, count: int = 10
) -> List[Tuple[str, NetTestability]]:
    """Nets ranked by worst stuck-at detection cost, hardest first."""
    measures = scoap_measures(netlist)
    ranked = sorted(
        measures.items(),
        key=lambda item: (
            -max(item[1].detect_cost_sa0, item[1].detect_cost_sa1),
            item[0],
        ),
    )
    return ranked[:count]


def testability_summary(netlist: Netlist) -> Dict[str, float]:
    """Aggregate view: mean/max detection costs over all nets."""
    measures = scoap_measures(netlist)
    costs = [
        max(m.detect_cost_sa0, m.detect_cost_sa1) for m in measures.values()
    ]
    return {
        "nets": float(len(costs)),
        "mean_detect_cost": sum(costs) / len(costs),
        "max_detect_cost": float(max(costs)),
    }
