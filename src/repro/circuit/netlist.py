"""Gate-level netlist with flip-flops, in the ISCAS'89 structural style.

A :class:`Netlist` is a set of named nets, each driven by a primary
input, a combinational :class:`Gate`, or a D flip-flop.  Sequential
elements are kept at the netlist level (as in ``.bench``): a flip-flop's
output net is its state, its single input net is the next-state D
signal.  Full-scan test generation views flip-flop outputs as
pseudo-primary inputs and D nets as pseudo-primary outputs — the
:meth:`Netlist.combinational_inputs`/``outputs`` accessors encode that
view, and everything downstream (cones, ATPG) works on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import NetlistParseError
from .gates import GateType, Trit, evaluate_gate


class NetlistError(NetlistParseError):
    """Raised when a netlist is structurally invalid."""


@dataclass(frozen=True)
class Gate:
    """One combinational gate: ``output = type(inputs...)``."""

    gate_type: GateType
    output: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.inputs) < self.gate_type.min_inputs:
            raise NetlistError(
                f"{self.gate_type.value} gate {self.output!r} needs at least "
                f"{self.gate_type.min_inputs} inputs, got {len(self.inputs)}"
            )
        maximum = self.gate_type.max_inputs
        if maximum is not None and len(self.inputs) > maximum:
            raise NetlistError(
                f"{self.gate_type.value} gate {self.output!r} takes at most "
                f"{maximum} input, got {len(self.inputs)}"
            )


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop: ``output`` holds the state, ``data`` is the D input."""

    output: str
    data: str


class Netlist:
    """A named gate-level design.

    Construction is incremental (:meth:`add_input`, :meth:`add_gate`,
    :meth:`add_flip_flop`, :meth:`mark_output`); :meth:`validate` checks
    single-driver rules, dangling nets, and combinational cycles, and
    :meth:`topological_order` fixes the evaluation order used by every
    simulator in the package.
    """

    def __init__(self, name: str):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: List[Gate] = []
        self.flip_flops: List[FlipFlop] = []
        self._drivers: Dict[str, str] = {}  # net -> "input" | "gate" | "ff"
        self._gate_by_output: Dict[str, Gate] = {}
        self._ff_by_output: Dict[str, FlipFlop] = {}
        self._topo_cache: Optional[List[Gate]] = None

    # -- construction ---------------------------------------------------------

    def add_input(self, net: str) -> None:
        self._claim_driver(net, "input")
        self.inputs.append(net)

    def add_gate(
        self, gate_type: GateType, output: str, inputs: Sequence[str]
    ) -> Gate:
        gate = Gate(gate_type, output, tuple(inputs))
        self._claim_driver(output, "gate")
        self.gates.append(gate)
        self._gate_by_output[output] = gate
        self._topo_cache = None
        return gate

    def add_flip_flop(self, output: str, data: str) -> FlipFlop:
        ff = FlipFlop(output, data)
        self._claim_driver(output, "ff")
        self.flip_flops.append(ff)
        self._ff_by_output[output] = ff
        return ff

    def mark_output(self, net: str) -> None:
        if net in self.outputs:
            raise NetlistError(f"{self.name}: {net!r} already marked as output")
        self.outputs.append(net)

    def _claim_driver(self, net: str, kind: str) -> None:
        if net in self._drivers:
            raise NetlistError(
                f"{self.name}: net {net!r} already driven ({self._drivers[net]})"
            )
        self._drivers[net] = kind

    # -- lookup ---------------------------------------------------------------

    @property
    def nets(self) -> List[str]:
        """Every driven net, in driver insertion order."""
        return list(self._drivers.keys())

    def driver_kind(self, net: str) -> Optional[str]:
        """``"input"``, ``"gate"``, ``"ff"``, or None for undriven nets."""
        return self._drivers.get(net)

    def gate_driving(self, net: str) -> Optional[Gate]:
        return self._gate_by_output.get(net)

    def flip_flop_driving(self, net: str) -> Optional[FlipFlop]:
        return self._ff_by_output.get(net)

    def fanout_map(self) -> Dict[str, List[Gate]]:
        """For each net, the gates that read it."""
        fanout: Dict[str, List[Gate]] = {net: [] for net in self._drivers}
        for gate in self.gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)
        return fanout

    # -- the full-scan combinational view ---------------------------------------

    def combinational_inputs(self) -> List[str]:
        """Primary inputs plus pseudo-primary inputs (flip-flop outputs)."""
        return self.inputs + [ff.output for ff in self.flip_flops]

    def combinational_outputs(self) -> List[str]:
        """Primary outputs plus pseudo-primary outputs (flip-flop D nets)."""
        return self.outputs + [ff.data for ff in self.flip_flops]

    # -- structure ---------------------------------------------------------------

    def topological_order(self) -> List[Gate]:
        """Gates ordered so every gate follows its combinational fanin.

        Flip-flop outputs count as sources.  Raises on combinational
        cycles.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[Gate]] = {}
        for gate in self.gates:
            count = 0
            for net in gate.inputs:
                if self._drivers.get(net) == "gate":
                    count += 1
                    dependents.setdefault(net, []).append(gate)
            indegree[gate.output] = count
        ready = [gate for gate in self.gates if indegree[gate.output] == 0]
        order: List[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for dependent in dependents.get(gate.output, []):
                indegree[dependent.output] -= 1
                if indegree[dependent.output] == 0:
                    ready.append(dependent)
        if len(order) != len(self.gates):
            stuck = sorted(
                output for output, degree in indegree.items() if degree > 0
            )
            raise NetlistError(
                f"{self.name}: combinational cycle through {stuck[:5]}"
            )
        self._topo_cache = order
        return order

    def validate(self) -> None:
        """Check driver completeness: every read net must be driven."""
        for gate in self.gates:
            for net in gate.inputs:
                if net not in self._drivers:
                    raise NetlistError(
                        f"{self.name}: gate {gate.output!r} reads undriven net {net!r}"
                    )
        for ff in self.flip_flops:
            if ff.data not in self._drivers:
                raise NetlistError(
                    f"{self.name}: flip-flop {ff.output!r} reads undriven net "
                    f"{ff.data!r}"
                )
        for net in self.outputs:
            if net not in self._drivers:
                raise NetlistError(f"{self.name}: output {net!r} is undriven")
        self.topological_order()  # raises on cycles

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, Trit]) -> Dict[str, Trit]:
        """Three-valued evaluation of the combinational view.

        ``assignment`` maps (pseudo-)primary inputs to 0/1/None; missing
        inputs default to X.  Returns values for every net.
        """
        values: Dict[str, Trit] = {}
        for net in self.combinational_inputs():
            values[net] = assignment.get(net)
        for gate in self.topological_order():
            values[gate.output] = evaluate_gate(
                gate.gate_type, [values.get(net) for net in gate.inputs]
            )
        return values

    # -- composition ---------------------------------------------------------------

    def merge(
        self,
        other: "Netlist",
        prefix: str,
        connections: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        """Instantiate ``other`` inside this netlist.

        Every net of ``other`` is renamed ``{prefix}{net}``.  Inputs of
        ``other`` listed in ``connections`` are driven by the named
        existing net of ``self`` instead of becoming new primary inputs;
        unconnected inputs become primary inputs of ``self``.  Outputs
        of ``other`` are *not* marked as outputs of ``self`` — the
        caller decides what to expose.  Returns the rename map.
        """
        connections = connections or {}
        rename: Dict[str, str] = {}
        for net in other._drivers:
            rename[net] = f"{prefix}{net}"
        for net, target in connections.items():
            if net not in other.inputs:
                raise NetlistError(
                    f"{self.name}: connection to non-input {net!r} of {other.name}"
                )
            if target not in self._drivers:
                raise NetlistError(
                    f"{self.name}: connection from undriven net {target!r}"
                )
            rename[net] = target
        for net in other.inputs:
            if net not in connections:
                self.add_input(rename[net])
        for ff in other.flip_flops:
            self.add_flip_flop(rename[ff.output], rename[ff.data])
        for gate in other.gates:
            self.add_gate(
                gate.gate_type,
                rename[gate.output],
                [rename[net] for net in gate.inputs],
            )
        return rename

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self.gates)}, "
            f"flip_flops={len(self.flip_flops)})"
        )


def netlist_stats(netlist: Netlist) -> Dict[str, int]:
    """Size summary used by reports and tests."""
    return {
        "inputs": len(netlist.inputs),
        "outputs": len(netlist.outputs),
        "gates": len(netlist.gates),
        "flip_flops": len(netlist.flip_flops),
        "nets": len(netlist.nets),
    }


def compose_soc_netlist(
    name: str,
    cores: Iterable[Tuple[str, Netlist]],
) -> Tuple[Netlist, Dict[str, Dict[str, str]]]:
    """Flatten several core netlists into one monolithic netlist.

    Each core is instantiated under its instance name; all core inputs
    become primary inputs and all core outputs become primary outputs of
    the flattened design.  This is the "isolation logic ripped out"
    monolithic view of the paper — inter-core wiring is the SOC
    generator's job (:mod:`repro.synth.socgen`), which connects nets
    before exposing the remainder.
    """
    flat = Netlist(name)
    rename_maps: Dict[str, Dict[str, str]] = {}
    for instance, core in cores:
        rename = flat.merge(core, prefix=f"{instance}_")
        for net in core.outputs:
            flat.mark_output(rename[net])
        rename_maps[instance] = rename
    return flat, rename_maps
