"""Logic-cone extraction and overlap analysis (the paper's Section 3).

A logic cone is "all the combinational logic driving one flip-flop or
circuit output"; its inputs are the (pseudo-)primary inputs in the
transitive fanin.  The paper's whole argument rests on two cone-level
phenomena, both measurable here: the *variation* in per-cone test
pattern counts and the *overlap* between cones, which limits pattern
compaction (Figures 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .netlist import Gate, Netlist


@dataclass(frozen=True)
class Cone:
    """One logic cone: the fanin of one (pseudo-)primary output."""

    output: str  # the PO or flip-flop D net the cone drives
    inputs: FrozenSet[str]  # (pseudo-)primary inputs in the transitive fanin
    gates: Tuple[str, ...]  # gate output nets inside the cone, fanin order
    depth: int  # longest gate path from any cone input to the output

    @property
    def width(self) -> int:
        """Number of (pseudo-)primary inputs driving the cone."""
        return len(self.inputs)

    @property
    def size(self) -> int:
        """Number of gates in the cone."""
        return len(self.gates)

    def overlaps(self, other: "Cone") -> bool:
        """Whether the two cones share any (pseudo-)primary input."""
        return bool(self.inputs & other.inputs)

    def shared_inputs(self, other: "Cone") -> FrozenSet[str]:
        return self.inputs & other.inputs


def extract_cones(netlist: Netlist) -> List[Cone]:
    """All logic cones of the full-scan combinational view.

    One cone per primary output and per flip-flop D net, in that order.
    Cone membership is computed in one backward pass per cone over the
    (memoised) per-net fanin sets, so extraction is linear-ish in
    circuit size times cone size.
    """
    sources = set(netlist.combinational_inputs())
    fanin_inputs: Dict[str, FrozenSet[str]] = {net: frozenset([net]) for net in sources}
    fanin_gates: Dict[str, FrozenSet[str]] = {net: frozenset() for net in sources}
    depth: Dict[str, int] = {net: 0 for net in sources}
    for gate in netlist.topological_order():
        inputs: Set[str] = set()
        gates: Set[str] = {gate.output}
        gate_depth = 0
        for net in gate.inputs:
            inputs |= fanin_inputs.get(net, frozenset())
            gates |= fanin_gates.get(net, frozenset())
            gate_depth = max(gate_depth, depth.get(net, 0))
        fanin_inputs[gate.output] = frozenset(inputs)
        fanin_gates[gate.output] = frozenset(gates)
        depth[gate.output] = gate_depth + 1

    order_index = {gate.output: i for i, gate in enumerate(netlist.topological_order())}
    cones = []
    for net in netlist.combinational_outputs():
        gate_nets = sorted(fanin_gates.get(net, frozenset()), key=order_index.__getitem__)
        cones.append(
            Cone(
                output=net,
                inputs=fanin_inputs.get(net, frozenset()),
                gates=tuple(gate_nets),
                depth=depth.get(net, 0),
            )
        )
    return cones


def overlap_matrix(cones: Sequence[Cone]) -> List[List[int]]:
    """Pairwise shared-input counts (symmetric, zero diagonal)."""
    matrix = [[0] * len(cones) for _ in cones]
    for i, first in enumerate(cones):
        for j in range(i + 1, len(cones)):
            shared = len(first.shared_inputs(cones[j]))
            matrix[i][j] = shared
            matrix[j][i] = shared
    return matrix


def overlap_fraction(cones: Sequence[Cone]) -> float:
    """Fraction of cone pairs that share at least one input.

    0.0 is the paper's Figure 1(a)/2(a) regime (freely mergeable partial
    patterns); values near 1.0 are the heavily-overlapped regime where
    compaction conflicts inflate the monolithic pattern count.
    """
    if len(cones) < 2:
        return 0.0
    overlapping = 0
    pairs = 0
    for i, first in enumerate(cones):
        for j in range(i + 1, len(cones)):
            pairs += 1
            if first.overlaps(cones[j]):
                overlapping += 1
    return overlapping / pairs


def cone_width_stats(cones: Sequence[Cone]) -> Dict[str, float]:
    """Min/mean/max cone width — the per-pattern stimulus footprint."""
    if not cones:
        raise ValueError("no cones")
    widths = [cone.width for cone in cones]
    return {
        "min": float(min(widths)),
        "mean": sum(widths) / len(widths),
        "max": float(max(widths)),
    }


def disjoint_cone_groups(cones: Sequence[Cone]) -> List[List[Cone]]:
    """Partition cones into connected components of the overlap graph.

    Non-overlapping groups are exactly the units that could be wrapped
    as independent cores with no isolation cells lost to shared inputs —
    the idealized partitioning of Figure 2(a).
    """
    parent = list(range(len(cones)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, first in enumerate(cones):
        for j in range(i + 1, len(cones)):
            if first.overlaps(cones[j]):
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj
    groups: Dict[int, List[Cone]] = {}
    for i, cone in enumerate(cones):
        groups.setdefault(find(i), []).append(cone)
    return list(groups.values())
