"""The service's job model: one submitted ATPG run and its lifecycle.

A :class:`ServiceJob` is the server-side record of one submission: the
parsed netlist, the :class:`~repro.runtime.config.AtpgConfig`, the
content key they hash to (the same key the result cache and run journal
use), and the current :class:`JobState`.  Wall-clock timestamps are
kept **in memory only** — they are reported over the API for latency
accounting but never journaled, so every durable artifact of a run is
clock-free and byte-identical across reruns.

Submissions travel as JSON::

    {
      "tenant": "team-a",
      "netlist": {"format": "bench", "name": "c17", "text": "INPUT(a)..."},
      "config": {"seed": 3, "backtrack_limit": 100, ...}
    }

The ``bench`` netlist format is the package's own BENCH dialect
(:func:`repro.circuit.parse_bench` / :func:`repro.circuit.dump_bench`),
which round-trips every netlist the loaders produce.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..atpg.engine import AtpgResult
from ..circuit import dump_bench, parse_bench
from ..circuit.netlist import Netlist
from ..errors import ConfigError
from ..runtime.cache import result_key
from ..runtime.config import AtpgConfig

_TENANT_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

DEFAULT_TENANT = "default"


class JobState(enum.Enum):
    """Where a job is in its lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def validate_tenant(tenant: str) -> str:
    """A tenant name fit for quotas, spool files, and reports."""
    if not isinstance(tenant, str) or not _TENANT_PATTERN.match(tenant):
        raise ConfigError(
            f"tenant must match [A-Za-z0-9._-]{{1,64}}, got {tenant!r}"
        )
    return tenant


@dataclass
class ServiceJob:
    """One submitted ATPG run, from accept to terminal state."""

    seq: int  # global submission order; job ids are "j<seq>"
    tenant: str
    name: str
    netlist: Netlist
    config: AtpgConfig
    key: str  # content key: result_key(netlist, config)
    state: JobState = JobState.QUEUED
    #: True when this submission attached to an identical in-flight job
    #: (single-flight dedupe) instead of queueing its own execution.
    deduped: bool = False
    error: Optional[str] = None
    outcome: Optional[str] = None  # JobOutcome.value once terminal
    pattern_count: Optional[int] = None
    result: Optional[AtpgResult] = None
    # In-memory latency accounting (API-only; never journaled).
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done_seq: Optional[int] = None  # global completion order

    @property
    def job_id(self) -> str:
        return f"j{self.seq}"

    def info(self) -> Dict[str, Any]:
        """The job's API representation (status endpoint payload)."""
        return {
            "id": self.job_id,
            "seq": self.seq,
            "tenant": self.tenant,
            "name": self.name,
            "key": self.key,
            "state": self.state.value,
            "deduped": self.deduped,
            "outcome": self.outcome,
            "pattern_count": self.pattern_count,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "done_seq": self.done_seq,
        }

    def manifest_row(self) -> Dict[str, Any]:
        """The job's row in the deterministic service manifest.

        No clocks, no completion order — only submission-determined
        fields plus the terminal status, so an uninterrupted drain and
        a killed-and-resumed drain produce identical manifests.
        """
        return {
            "seq": self.seq,
            "id": self.job_id,
            "tenant": self.tenant,
            "name": self.name,
            "key": self.key,
            "status": self.state.value if self.state.terminal else "pending",
            "outcome": self.outcome,
            "pattern_count": self.pattern_count,
        }

    def spool_record(self) -> Dict[str, Any]:
        """The job's durable spool entry (clock-free, replayable)."""
        return {
            "seq": self.seq,
            "tenant": self.tenant,
            "name": self.name,
            "netlist": {
                "format": "bench",
                "name": self.netlist.name,
                "text": dump_bench(self.netlist),
            },
            "config": self.config.to_dict(),
            "key": self.key,
            "state": self.state.value,
            "deduped": self.deduped,
            "outcome": self.outcome,
            "pattern_count": self.pattern_count,
            "error": self.error,
        }


def parse_netlist_payload(payload: Any) -> Netlist:
    """The netlist a submission's ``netlist`` object describes."""
    if not isinstance(payload, dict):
        raise ConfigError("submission 'netlist' must be an object")
    fmt = payload.get("format", "bench")
    if fmt != "bench":
        raise ConfigError(f"unknown netlist format {fmt!r}: only 'bench'")
    text = payload.get("text")
    if not isinstance(text, str) or not text.strip():
        raise ConfigError("submission netlist 'text' must be non-empty")
    name = payload.get("name", "bench")
    if not isinstance(name, str) or not name:
        raise ConfigError("submission netlist 'name' must be a string")
    return parse_bench(text, name=name)


def job_from_submission(payload: Any, seq: int, submitted_at: float) -> ServiceJob:
    """Validate one submission payload into a :class:`ServiceJob`.

    Raises :class:`~repro.errors.ConfigError` (HTTP 400) on anything
    malformed — tenant, netlist, or config.
    """
    if not isinstance(payload, dict):
        raise ConfigError("submission body must be a JSON object")
    tenant = validate_tenant(payload.get("tenant", DEFAULT_TENANT))
    netlist = parse_netlist_payload(payload.get("netlist"))
    config_data = payload.get("config", {})
    if not isinstance(config_data, dict):
        raise ConfigError("submission 'config' must be an object")
    config = AtpgConfig.from_dict(config_data)
    name = payload.get("name", netlist.name)
    if not isinstance(name, str) or not name:
        raise ConfigError("submission 'name' must be a non-empty string")
    return ServiceJob(
        seq=seq,
        tenant=tenant,
        name=name,
        netlist=netlist,
        config=config,
        key=result_key(netlist, config),
        submitted_at=submitted_at,
    )


def job_from_spool(record: Dict[str, Any], submitted_at: float) -> ServiceJob:
    """Rebuild a job from its spool entry (on server resume)."""
    netlist = parse_netlist_payload(record["netlist"])
    config = AtpgConfig.from_dict(record.get("config", {}))
    job = ServiceJob(
        seq=int(record["seq"]),
        tenant=validate_tenant(record.get("tenant", DEFAULT_TENANT)),
        name=record.get("name", netlist.name),
        netlist=netlist,
        config=config,
        key=record.get("key") or result_key(netlist, config),
        state=JobState(record.get("state", "queued")),
        deduped=bool(record.get("deduped", False)),
        outcome=record.get("outcome"),
        pattern_count=record.get("pattern_count"),
        error=record.get("error"),
        submitted_at=submitted_at,
    )
    return job


def submission_payload(
    netlist: Netlist,
    config: Optional[AtpgConfig] = None,
    tenant: str = DEFAULT_TENANT,
    name: Optional[str] = None,
) -> Dict[str, Any]:
    """The JSON submission body for one (netlist, config) run —
    the client-side inverse of :func:`job_from_submission`."""
    return {
        "tenant": tenant,
        "name": name or netlist.name,
        "netlist": {
            "format": "bench",
            "name": netlist.name,
            "text": dump_bench(netlist),
        },
        "config": (config if config is not None else AtpgConfig()).to_dict(),
    }
