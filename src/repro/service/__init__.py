"""ATPG-as-a-service: a job server over the repro runtime stack.

The package turns the in-process runtime (executor + cache + journal)
into a long-lived multi-tenant service without adding a single
dependency — asyncio, raw HTTP/1.1 framing, JSON bodies:

``repro.service.config``
    :class:`ServiceConfig` — the frozen, validated deployment identity
    of one server process (no environment side channels).
``repro.service.jobs``
    :class:`ServiceJob` / :class:`JobState` — one submission's
    lifecycle, its API/manifest/spool representations.
``repro.service.queue``
    :class:`FairShareQueue` (per-tenant round-robin) and
    :class:`TokenBucket` (admission rate limiting).
``repro.service.spool``
    :class:`SubmissionSpool` — accepted-but-unfinished work made
    durable, so a killed server resumes its queue byte-identically.
``repro.service.server``
    :class:`JobServer` — the asyncio event loop: accept → fair-share
    queue → executor batches → respond, with single-flight dedupe and
    the shared content-addressed cache.
``repro.service.client``
    :class:`ServiceClient` — the stdlib client; server-side typed
    errors re-raise client-side by type.
``repro.service.loadtest``
    The multi-tenant load harness behind ``repro bench`` and the CI
    smoke job.
"""

from .client import ServiceClient
from .config import ServiceConfig
from .jobs import (
    DEFAULT_TENANT,
    JobState,
    ServiceJob,
    job_from_submission,
    submission_payload,
)
from .queue import FairShareQueue, TokenBucket
from .server import JobServer
from .spool import SubmissionSpool

__all__ = [
    "DEFAULT_TENANT",
    "FairShareQueue",
    "JobServer",
    "JobState",
    "ServiceClient",
    "ServiceConfig",
    "ServiceJob",
    "SubmissionSpool",
    "TokenBucket",
    "job_from_submission",
    "submission_payload",
]
