"""ATPG-as-a-service: the long-lived async job server.

One :class:`JobServer` wraps the whole runtime stack — fair-share
queue, retry executor, content-addressed result cache, run journal —
behind a small JSON-over-HTTP API served by a single ``asyncio`` event
loop (stdlib only; the HTTP/1.1 framing is hand-rolled over
``asyncio.start_server`` streams):

========  ==========================  ====================================
POST      ``/v1/jobs``                submit one ATPG job
GET       ``/v1/jobs``                list jobs (``?tenant=`` filter)
GET       ``/v1/jobs/<id>``           job status
GET       ``/v1/jobs/<id>/result``    the finished AtpgResult (JSON)
GET       ``/v1/jobs/<id>/stream``    state transitions as JSON lines
POST      ``/v1/jobs/<id>/cancel``    withdraw a queued job
GET       ``/v1/health``              queue depths, state counts, config
GET       ``/v1/metrics``             telemetry summary (when traced)
POST      ``/v1/admin/pause``         hold the dispatcher (jobs still accepted)
POST      ``/v1/admin/resume``        release the dispatcher
POST      ``/v1/admin/shutdown``      graceful stop
========  ==========================  ====================================

Execution model: a single dispatcher coroutine drains up to
``batch_size`` jobs per round from the :class:`FairShareQueue` (which
interleaves tenants round-robin) and runs the batch through the
existing retry executor (:func:`repro.runtime.executor.run_jobs`) in a
worker thread, so the event loop keeps accepting submissions and
serving status while ATPG runs.  Identical in-flight submissions — same
netlist fingerprint, same :class:`AtpgConfig` fingerprint — are
**single-flighted**: the first becomes the leader, later ones attach as
followers and share its one execution.  Completed results land in the
shared content-addressed cache (every tenant benefits) and, when a
``journal_dir`` is configured, in the crash-safe run journal; admitted
jobs are spooled durably *before* the submit response, so a SIGKILLed
server restarted with ``resume=True`` drains exactly the jobs it owed —
no duplicates, no losses — and writes a byte-identical
``service-manifest.json``.

Failure handling stays policy: batches run ``on_error="skip"`` so one
bad job never poisons its neighbors, and failed jobs are re-queued up
to ``config.retries`` times at the service level.  Fault injection
follows the runtime convention: the ``REPRO_CHAOS`` environment
variable configures the chaos harness of the *execution policy* —
deployment identity (:class:`ServiceConfig`) itself has no environment
side channels.
"""

from __future__ import annotations

import asyncio
import json
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import (
    ConfigError,
    JobStateError,
    QuotaExceededError,
    RateLimitedError,
    ReproError,
    ServiceError,
    UnknownJobError,
)
from ..observability import (
    JsonlSink,
    Tracer,
    get_tracer,
    register_counter,
    register_gauge,
    use_tracer,
)
from ..runtime.cache import AtpgResultCache, default_cache_dir
from ..runtime.chaos import ChaosConfig
from ..runtime.executor import AtpgJob, run_jobs
from ..runtime.journal import RunJournal
from ..runtime.policy import ExecutionPolicy
from ..core.serialization import atpg_result_to_dict
from .config import ServiceConfig
from .jobs import (
    JobState,
    ServiceJob,
    job_from_spool,
    job_from_submission,
)
from .queue import FairShareQueue, TokenBucket
from .spool import SubmissionSpool

SERVICE_SUBMITTED = register_counter("service.submitted", "jobs accepted")
SERVICE_DEDUPED = register_counter(
    "service.deduped", "submissions single-flighted onto an identical in-flight job"
)
SERVICE_REJECTED = register_counter(
    "service.rejected", "submissions rejected (rate limit, quota, bad input)"
)
SERVICE_COMPLETED = register_counter("service.completed", "jobs finished ok")
SERVICE_FAILED = register_counter("service.failed", "jobs finished failed")
SERVICE_CANCELLED = register_counter("service.cancelled", "jobs cancelled")
SERVICE_RETRIED = register_counter(
    "service.retried", "failed jobs re-queued by the service retry policy"
)
SERVICE_RESUMED = register_counter(
    "service.resumed", "spooled jobs reloaded on server resume"
)
SERVICE_QUEUE_DEPTH = register_gauge(
    "service.queue_depth", "fair-share queue depth after the last change"
)

MANIFEST_NAME = "service-manifest.json"
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _error_status(error: Exception) -> int:
    if isinstance(error, RateLimitedError):
        return 429
    if isinstance(error, QuotaExceededError):
        return 403
    if isinstance(error, UnknownJobError):
        return 404
    if isinstance(error, JobStateError):
        return 409
    if isinstance(error, (ConfigError, ValueError)):
        return 400
    return 500


class JobServer:
    """The long-lived multi-tenant ATPG job service."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        self.cache: Optional[AtpgResultCache] = None
        if not self.config.no_cache:
            self.cache = AtpgResultCache(
                self.config.cache_dir
                if self.config.cache_dir
                else default_cache_dir()
            )
        self.journal: Optional[RunJournal] = None
        if self.config.journal_dir:
            self.journal = RunJournal(
                self.config.journal_dir, resume=self.config.resume
            )
        self.spool = SubmissionSpool(self.config.journal_dir)
        self.policy = ExecutionPolicy(
            deadline_seconds=self.config.deadline_seconds,
            chaos=ChaosConfig.from_env(),
        )
        self.tracer: Optional[Tracer] = None
        if self.config.trace or self.config.metrics:
            self.tracer = Tracer()
            if self.config.trace:
                self.tracer.sinks.append(JsonlSink(self.config.trace))

        self.queue = FairShareQueue()
        self.jobs: Dict[int, ServiceJob] = {}
        self._inflight: Dict[str, ServiceJob] = {}  # key -> leader job
        self._followers: Dict[int, List[ServiceJob]] = {}  # leader seq -> jobs
        self._retries_used: Dict[int, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._subscribers: Dict[int, List[asyncio.Queue]] = {}
        self._seq = 0
        self._done_seq = 0
        self.paused = self.config.start_paused
        self.port: Optional[int] = None
        self._running_batch = False
        self._stopping = False
        self._wake: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -------------------------------------------------------

    async def serve(self, ready: Optional[asyncio.Event] = None) -> None:
        """Bind, load any spooled backlog, and serve until shut down."""
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        with use_tracer(self.tracer) if self.tracer is not None else _nullcontext():
            self._load_spool()
            self._server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            print(
                f"repro-service listening on "
                f"http://{self.config.host}:{self.port}",
                flush=True,
            )
            if ready is not None:
                ready.set()
            dispatcher = asyncio.ensure_future(self._dispatch_loop())
            try:
                await self._stopped.wait()
            finally:
                self._stopping = True
                self._wake.set()
                await dispatcher
                self._server.close()
                await self._server.wait_closed()
                self._write_service_manifest()
                if self.tracer is not None:
                    self.tracer.flush()

    def run(self) -> int:
        """Blocking entry point (``repro serve``)."""
        try:
            asyncio.run(self.serve())
        except KeyboardInterrupt:
            pass
        return 0

    def shutdown(self) -> None:
        self._stopping = True
        if self._stopped is not None:
            self._stopped.set()
        if self._wake is not None:
            self._wake.set()

    # -- resume ----------------------------------------------------------

    def _load_spool(self) -> None:
        """Reload the durable backlog of a previous server process."""
        records = self.spool.load()
        if not records:
            return
        if not self.config.resume:
            raise ConfigError(
                f"journal directory {self.config.journal_dir} already holds "
                f"{len(records)} spooled submissions; pass resume=True "
                f"(--resume) to drain them, or choose a fresh directory"
            )
        tracer = get_tracer()
        now = time.time()
        for record in records:
            job = job_from_spool(record, now)
            self.jobs[job.seq] = job
            if job.state.terminal:
                continue
            # Anything admitted but not finished — queued *or* mid-batch
            # when the server died — goes back through the executor; the
            # run journal turns already-completed work into instant hits.
            job.state = JobState.QUEUED
            tracer.count(SERVICE_RESUMED)
            if job.key in self._inflight:
                job.deduped = True
                leader = self._inflight[job.key]
                self._followers.setdefault(leader.seq, []).append(job)
            else:
                self._inflight[job.key] = job
                self.queue.put(job)
        self._seq = records[-1]["seq"] + 1
        tracer.gauge(SERVICE_QUEUE_DEPTH, len(self.queue))

    # -- submission ------------------------------------------------------

    def submit(self, payload: Any) -> Tuple[ServiceJob, bool]:
        """Admit one submission; returns (job, deduped).

        Raises the typed service errors on rejection; the HTTP layer
        maps them onto status codes.
        """
        tracer = get_tracer()
        with tracer.span("service.accept"):
            tenant_raw = payload.get("tenant", "default") if isinstance(
                payload, dict
            ) else "default"
            tenant = str(tenant_raw)
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.config.rate_limit_per_second,
                    self.config.rate_limit_burst,
                )
            if not bucket.try_take():
                tracer.count(SERVICE_REJECTED)
                raise RateLimitedError(
                    f"tenant {tenant!r} exceeded its submission rate "
                    f"({self.config.rate_limit_per_second}/s, burst "
                    f"{self.config.rate_limit_burst})"
                )
            live = sum(
                1
                for job in self.jobs.values()
                if job.tenant == tenant and not job.state.terminal
            )
            if live >= self.config.max_queued_per_tenant:
                tracer.count(SERVICE_REJECTED)
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {live} live jobs "
                    f"(quota {self.config.max_queued_per_tenant})"
                )
            try:
                job = job_from_submission(payload, self._seq, time.time())
            except ReproError:
                tracer.count(SERVICE_REJECTED)
                raise
            if self.config.backend is not None and job.config.backend is None:
                # Deployment default, applied before the key was used
                # anywhere: backend is fingerprint-excluded anyway.
                from dataclasses import replace

                job.config = replace(job.config, backend=self.config.backend)
            self._seq += 1
            self.jobs[job.seq] = job
            tracer.count(SERVICE_SUBMITTED)

            deduped = False
            leader = self._inflight.get(job.key)
            if leader is not None and not leader.state.terminal:
                job.deduped = True
                deduped = True
                self._followers.setdefault(leader.seq, []).append(job)
                tracer.count(SERVICE_DEDUPED)
            else:
                self._inflight[job.key] = job
                self.queue.put(job)
            self.spool.append(job.spool_record())
            tracer.gauge(SERVICE_QUEUE_DEPTH, len(self.queue))
            if self._wake is not None:
                self._wake.set()
            return job, deduped

    def cancel(self, job: ServiceJob) -> ServiceJob:
        """Withdraw a queued job; running/terminal jobs are conflicts."""
        if job.state.terminal:
            raise JobStateError(
                f"job {job.job_id} already {job.state.value}; nothing to cancel"
            )
        if job.state is JobState.RUNNING:
            raise JobStateError(
                f"job {job.job_id} is running; in-flight batches cannot "
                f"be cancelled"
            )
        if job.deduped:
            # A follower never entered the queue; just detach it.
            for followers in self._followers.values():
                if job in followers:
                    followers.remove(job)
                    break
        else:
            self.queue.remove(job)
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            # Promote the first follower (if any) into the queue so the
            # leader's cancellation doesn't strand identical jobs.
            followers = self._followers.pop(job.seq, [])
            if followers:
                new_leader = followers[0]
                new_leader.deduped = False
                self._inflight[new_leader.key] = new_leader
                self.queue.put(new_leader)
                self._followers[new_leader.seq] = followers[1:]
                self.spool.update(new_leader.spool_record())
        self._finish(job, JobState.CANCELLED, outcome="cancelled")
        get_tracer().count(SERVICE_CANCELLED)
        get_tracer().gauge(SERVICE_QUEUE_DEPTH, len(self.queue))
        return job

    # -- the dispatcher --------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        assert self._wake is not None and self._stopped is not None
        while True:
            while not self._stopping and (self.paused or not self.queue):
                if (
                    self.config.exit_when_idle
                    and not self.paused
                    and not self.queue
                ):
                    self.shutdown()
                    break
                self._wake.clear()
                await self._wake.wait()
            if self._stopping:
                return
            batch = self.queue.take_batch(self.config.batch_size)
            if not batch:
                continue
            tracer = get_tracer()
            started = time.time()
            for job in batch:
                job.state = JobState.RUNNING
                job.started_at = started
                self.spool.update(job.spool_record())
                self._notify(job)
            tracer.gauge(SERVICE_QUEUE_DEPTH, len(self.queue))
            self._running_batch = True
            try:
                with tracer.span("service.batch", jobs=len(batch)):
                    results, manifest = await loop.run_in_executor(
                        None, self._run_batch, batch
                    )
            except Exception:
                # A bug, not a job failure (run_jobs runs on_error="skip").
                # Fail the batch's jobs rather than killing the service.
                traceback.print_exc()
                for job in batch:
                    self._finish(job, JobState.FAILED, outcome="failed",
                                 error="internal executor error")
                continue
            finally:
                self._running_batch = False
            self._apply_batch(batch, results, manifest)
            self._write_service_manifest()

    def _run_batch(self, batch: List[ServiceJob]):
        """Worker-thread body: one executor round for one batch."""
        atpg_jobs = [
            AtpgJob(name=job.name, netlist=job.netlist, config=job.config)
            for job in batch
        ]
        return run_jobs(
            atpg_jobs,
            workers=self.config.workers,
            cache=self.cache,
            policy=self.policy,
            on_error="skip",
            journal=self.journal,
        )

    def _apply_batch(self, batch, results, manifest) -> None:
        tracer = get_tracer()
        for job, result, record in zip(batch, results, manifest.records):
            if result is not None:
                job.result = result
                job.pattern_count = result.pattern_count
                self._finish(job, JobState.DONE, outcome=record.outcome.value)
                tracer.count(SERVICE_COMPLETED)
                continue
            used = self._retries_used.get(job.seq, 0)
            if used < self.config.retries:
                self._retries_used[job.seq] = used + 1
                job.state = JobState.QUEUED
                job.error = record.error
                self.queue.put(job)
                self.spool.update(job.spool_record())
                self._notify(job)
                tracer.count(SERVICE_RETRIED)
                continue
            tracer.count(SERVICE_FAILED)
            self._finish(
                job,
                JobState.FAILED,
                outcome=record.outcome.value,
                error=record.error,
            )
        tracer.gauge(SERVICE_QUEUE_DEPTH, len(self.queue))

    def _finish(
        self,
        job: ServiceJob,
        state: JobState,
        outcome: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        """Move one job (and its followers) into a terminal state."""
        job.state = state
        job.outcome = outcome
        if error is not None:
            job.error = error
        job.finished_at = time.time()
        job.done_seq = self._done_seq
        self._done_seq += 1
        self._retries_used.pop(job.seq, None)
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self.spool.update(job.spool_record())
        self._notify(job)
        for follower in self._followers.pop(job.seq, []):
            follower.result = job.result
            follower.pattern_count = job.pattern_count
            follower.started_at = job.started_at
            self._finish(follower, state, outcome=outcome, error=error)

    # -- durable reporting -----------------------------------------------

    def _write_service_manifest(self) -> None:
        """The deterministic run record: every job, in submission order.

        No clocks and no completion order, so an uninterrupted drain
        and a killed-and-resumed drain of the same submissions produce
        byte-identical manifests (the run journal's own ``manifest.json``
        intentionally records per-process batch order instead).
        """
        if not self.config.journal_dir:
            return
        rows = [
            self.jobs[seq].manifest_row() for seq in sorted(self.jobs)
        ]
        payload = {"schema": 1, "jobs": rows}
        path = Path(self.config.journal_dir) / MANIFEST_NAME
        tmp = path.with_name(f"{MANIFEST_NAME}.{self.port or 0}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        tmp.replace(path)

    # -- job lookup ------------------------------------------------------

    def lookup(self, job_id: str) -> ServiceJob:
        try:
            seq = int(job_id[1:]) if job_id.startswith("j") else int(job_id)
        except ValueError:
            raise UnknownJobError(f"malformed job id {job_id!r}")
        job = self.jobs.get(seq)
        if job is None:
            raise UnknownJobError(f"unknown job id {job_id!r}")
        return job

    def result_payload(self, job: ServiceJob) -> Dict[str, Any]:
        if job.state in (JobState.FAILED, JobState.CANCELLED):
            raise JobStateError(
                f"job {job.job_id} {job.state.value}"
                + (f": {job.error}" if job.error else "")
            )
        if job.state is not JobState.DONE:
            raise JobStateError(
                f"job {job.job_id} is {job.state.value}; result not ready"
            )
        result = job.result
        if result is None and self.journal is not None:
            # Reloaded on resume: the result lives in the journal.
            result = self.journal.get(job.key)
            job.result = result
        if result is None and self.cache is not None:
            result = self.cache.get(job.netlist, job.config)
            job.result = result
        if result is None:
            raise JobStateError(
                f"job {job.job_id} finished in a previous server process "
                f"and no journal/cache holds its result"
            )
        return {
            "id": job.job_id,
            "key": job.key,
            "result": atpg_result_to_dict(result),
        }

    def health_payload(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "status": "ok",
            "paused": self.paused,
            "jobs": states,
            "queued": len(self.queue),
            "tenants": self.queue.tenant_depths(),
            "submitted": self._seq,
            "config": self.config.to_dict(),
        }

    # -- event streams ---------------------------------------------------

    def _notify(self, job: ServiceJob) -> None:
        for subscriber in self._subscribers.get(job.seq, []):
            subscriber.put_nowait(job.info())

    # -- HTTP ------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(method, path, query, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # bugs become 500s, not dead connections
            if not isinstance(exc, ReproError):
                traceback.print_exc()
            try:
                await self._send_json(
                    writer,
                    _error_status(exc),
                    {
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                        }
                    },
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise ConfigError(f"malformed request line {line!r}")
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length > MAX_BODY_BYTES:
            raise ConfigError(f"request body of {length} bytes is too large")
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {
            name: values[0] for name, values in parse_qs(parts.query).items()
        }
        return method.upper(), parts.path, query, body

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        segments = [part for part in path.split("/") if part]
        if len(segments) < 2 or segments[0] != "v1":
            raise UnknownJobError(f"no such endpoint {path!r}")

        if segments[1] == "health" and method == "GET":
            await self._send_json(writer, 200, self.health_payload())
            return
        if segments[1] == "metrics" and method == "GET":
            summary = self.tracer.summary() if self.tracer is not None else None
            await self._send_json(
                writer,
                200,
                {"enabled": self.tracer is not None, "summary": summary},
            )
            return
        if segments[1] == "admin" and method == "POST" and len(segments) == 3:
            await self._admin(segments[2], writer)
            return
        if segments[1] != "jobs":
            raise UnknownJobError(f"no such endpoint {path!r}")

        if len(segments) == 2:
            if method == "POST":
                payload = json.loads(body.decode("utf-8")) if body else {}
                job, deduped = self.submit(payload)
                await self._send_json(
                    writer, 202, {"job": job.info(), "deduped": deduped}
                )
                return
            if method == "GET":
                tenant = query.get("tenant")
                jobs = [
                    self.jobs[seq].info()
                    for seq in sorted(self.jobs)
                    if tenant is None or self.jobs[seq].tenant == tenant
                ]
                await self._send_json(writer, 200, {"jobs": jobs})
                return
            raise JobStateError(f"{method} not supported on /v1/jobs")

        job = self.lookup(segments[2])
        action = segments[3] if len(segments) > 3 else None
        if action is None and method == "GET":
            await self._send_json(writer, 200, {"job": job.info()})
        elif action == "result" and method == "GET":
            await self._send_json(writer, 200, self.result_payload(job))
        elif action == "cancel" and method == "POST":
            self.cancel(job)
            await self._send_json(writer, 200, {"job": job.info()})
        elif action == "stream" and method == "GET":
            await self._stream(job, writer)
        else:
            raise UnknownJobError(f"no such endpoint {path!r}")

    async def _admin(self, verb: str, writer: asyncio.StreamWriter) -> None:
        if verb == "pause":
            self.paused = True
        elif verb == "resume":
            self.paused = False
            if self._wake is not None:
                self._wake.set()
        elif verb == "shutdown":
            await self._send_json(writer, 200, {"status": "stopping"})
            self.shutdown()
            return
        else:
            raise UnknownJobError(f"no such admin verb {verb!r}")
        await self._send_json(writer, 200, self.health_payload())

    async def _stream(
        self, job: ServiceJob, writer: asyncio.StreamWriter
    ) -> None:
        """Job state transitions as JSON lines until a terminal state.

        The response has no Content-Length — the connection closing is
        the end of the stream — so any HTTP client can consume it line
        by line.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/jsonl\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))

        def emit(info: Dict[str, Any]) -> None:
            writer.write(json.dumps(info, sort_keys=True).encode() + b"\n")

        emit(job.info())
        await writer.drain()
        if job.state.terminal:
            return
        subscriber: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job.seq, []).append(subscriber)
        try:
            while True:
                info = await subscriber.get()
                emit(info)
                await writer.drain()
                if JobState(info["state"]).terminal:
                    return
        finally:
            subscribers = self._subscribers.get(job.seq, [])
            if subscriber in subscribers:
                subscribers.remove(subscriber)
            if not subscribers:
                self._subscribers.pop(job.seq, None)


class _nullcontext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False
