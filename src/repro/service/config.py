"""The frozen, typed configuration of one job-server process.

Everything the server's behavior depends on — bind address, tenancy
limits, executor policy, durability directories — lives in one
:class:`ServiceConfig` value, validated at construction, with **no
environment-variable side channels**: a config built from the same
flags is the same config on any machine.  This mirrors the layering of
:class:`~repro.runtime.config.AtpgConfig` (run identity) and
:class:`~repro.runtime.policy.ExecutionPolicy` (failure handling):
``ServiceConfig`` is *deployment* identity, and none of its fields ever
leak into a job's content key.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of a :class:`~repro.service.server.JobServer`.

    Tenancy defaults are deliberately generous: a bare
    ``ServiceConfig()`` serves a trusting single-machine deployment;
    multi-tenant deployments tighten ``max_queued_per_tenant`` /
    ``rate_limit_per_second`` explicitly.
    """

    #: Bind address.  ``port=0`` asks the kernel for an ephemeral port;
    #: the server prints (and exposes) the port it actually bound.
    host: str = "127.0.0.1"
    port: int = 8765

    #: Worker processes handed to the retry executor for each batch —
    #: the same fan-out knob as ``Runtime(workers=...)``.
    workers: int = 1
    #: Jobs drained from the fair-share queue per executor round.  The
    #: queue interleaves tenants *within* a batch, so this also bounds
    #: how long one tenant's burst can monopolize the executor.
    batch_size: int = 16

    #: Result-cache directory (``None`` = the runtime default); the one
    #: cache is shared by every tenant — content-addressed keys make
    #: cross-tenant reuse safe by construction.
    cache_dir: Optional[str] = None
    no_cache: bool = False

    #: Durability root.  ``None`` runs fully in memory (useful for
    #: tests); a path makes every submitted job durable *at submit
    #: time* (``queue/`` spool) and every finished result durable at
    #: completion (``jobs/`` journal), so a SIGKILLed server resumes
    #: its queue byte-identically with ``resume=True``.
    journal_dir: Optional[str] = None
    resume: bool = False

    #: Per-job execution policy, forwarded to
    #: :class:`~repro.runtime.policy.ExecutionPolicy`.
    deadline_seconds: Optional[float] = None
    retries: int = 0

    #: Tenancy: maximum live (queued + running) jobs per tenant, and a
    #: token-bucket submission rate (``None`` = unlimited) with burst
    #: capacity.
    max_queued_per_tenant: int = 100_000
    rate_limit_per_second: Optional[float] = None
    rate_limit_burst: int = 100

    #: Kernel backend request forwarded into every job's AtpgConfig
    #: default (submissions may still pin their own).
    backend: Optional[str] = None

    #: Telemetry: a JSONL trace path and/or a metrics summary on exit.
    trace: Optional[str] = None
    metrics: bool = False

    #: Exit once the queue is drained (used by ``repro serve --resume
    #: --exit-when-idle`` to replay a killed server's backlog and by the
    #: CI smoke job).
    exit_when_idle: bool = False
    #: Start with the dispatcher paused; jobs are accepted and spooled
    #: but not executed until a resume call — the deterministic way to
    #: build up a queue in tests and load harnesses.
    start_paused: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_queued_per_tenant < 1:
            raise ConfigError(
                f"max_queued_per_tenant must be >= 1, "
                f"got {self.max_queued_per_tenant}"
            )
        if self.rate_limit_per_second is not None and self.rate_limit_per_second <= 0:
            raise ConfigError(
                f"rate_limit_per_second must be > 0 (or None), "
                f"got {self.rate_limit_per_second}"
            )
        if self.rate_limit_burst < 1:
            raise ConfigError(
                f"rate_limit_burst must be >= 1, got {self.rate_limit_burst}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"deadline_seconds must be > 0 (or None), "
                f"got {self.deadline_seconds}"
            )
        if self.resume and self.journal_dir is None:
            raise ConfigError("resume=True needs a journal_dir to resume from")

    def with_port(self, port: int) -> "ServiceConfig":
        return replace(self, port=port)

    def to_dict(self) -> Dict[str, Any]:
        """The config as JSON-serializable data (for /v1/health)."""
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "no_cache": self.no_cache,
            "journal_dir": self.journal_dir,
            "resume": self.resume,
            "deadline_seconds": self.deadline_seconds,
            "retries": self.retries,
            "max_queued_per_tenant": self.max_queued_per_tenant,
            "rate_limit_per_second": self.rate_limit_per_second,
            "rate_limit_burst": self.rate_limit_burst,
            "backend": self.backend,
        }

    @classmethod
    def from_flags(cls, args: Any) -> "ServiceConfig":
        """Build the config a parsed ``repro serve`` namespace describes."""
        return cls(
            host=args.host,
            port=args.port,
            workers=args.workers,
            batch_size=args.batch_size,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            journal_dir=args.journal_dir,
            resume=args.resume,
            deadline_seconds=args.deadline,
            retries=args.retries if args.retries is not None else 0,
            max_queued_per_tenant=args.max_queued,
            rate_limit_per_second=args.rate_limit,
            rate_limit_burst=args.rate_burst,
            backend=args.backend,
            trace=args.trace,
            metrics=args.metrics,
            exit_when_idle=args.exit_when_idle,
        )
