"""The durable submission spool: what makes a killed server resumable.

The run journal (:mod:`repro.runtime.journal`) makes *finished* work
durable; the spool makes *accepted* work durable.  Every admitted job
is written to ``JOURNAL_DIR/queue/q<seq>.json`` before the submit call
returns, created with ``O_EXCL`` so two writers can never interleave on
one entry, and updated atomically (unique tmp + rename) on every state
change.  A resumed server replays the spool in submission order:
entries whose content key is already journaled complete instantly;
everything else re-enters the fair-share queue.  Together with the
clock-free journal this makes a SIGKILLed server's drained queue
byte-identical to an uninterrupted run's.

Corrupt spool entries are quarantined (like cache/journal entries) and
dropped — a torn write can only lose the one job that was being
accepted when the process died, never the backlog.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..observability import get_tracer, register_counter
from ..runtime.cache import quarantine_file

SPOOL_DIR = "queue"

SPOOL_WRITES = register_counter("service.spool.writes", "spool entries written")
SPOOL_QUARANTINED = register_counter(
    "service.spool.quarantined", "corrupt spool entries quarantined"
)


class SubmissionSpool:
    """Durable per-submission records under ``<directory>/queue/``.

    ``directory=None`` disables durability: every call is a cheap
    no-op and :meth:`load` reports an empty backlog.
    """

    def __init__(self, directory: Optional[Union[str, Path]]):
        self.directory = Path(directory) / SPOOL_DIR if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _path(self, seq: int) -> Path:
        assert self.directory is not None
        return self.directory / f"q{seq:08d}.json"

    def append(self, record: Dict[str, Any]) -> None:
        """Durably add one submission (O_EXCL: a seq is written once)."""
        if self.directory is None:
            return
        path = self._path(int(record["seq"]))
        data = json.dumps(record, sort_keys=True).encode("utf-8")
        fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        get_tracer().count(SPOOL_WRITES)

    def update(self, record: Dict[str, Any]) -> None:
        """Rewrite one entry atomically (unique tmp + rename)."""
        if self.directory is None:
            return
        path = self._path(int(record["seq"]))
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record, sort_keys=True))
        tmp.replace(path)
        get_tracer().count(SPOOL_WRITES)

    def load(self) -> List[Dict[str, Any]]:
        """Every spooled submission, in submission (seq) order."""
        if self.directory is None:
            return []
        records: List[Dict[str, Any]] = []
        for path in sorted(self.directory.glob("q*.json")):
            try:
                record = json.loads(path.read_text())
                record["seq"] = int(record["seq"])
            except (ValueError, KeyError, TypeError, OSError):
                quarantine_file(path)
                get_tracer().count(SPOOL_QUARANTINED)
                continue
            records.append(record)
        records.sort(key=lambda record: record["seq"])
        return records

    def max_seq(self) -> int:
        """The highest spooled seq (-1 when empty) — resume counts on."""
        records = self.load()
        return records[-1]["seq"] if records else -1
