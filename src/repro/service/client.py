"""The thin stdlib client for the ATPG job service.

:class:`ServiceClient` speaks the server's JSON-over-HTTP API with
nothing beyond ``http.client``.  Server-side rejections arrive as
``{"error": {"type": ..., "message": ...}}`` payloads and are re-raised
*by type*: a quota rejection raises the same
:class:`~repro.errors.QuotaExceededError` on the client that the server
raised, so callers handle remote failures exactly like local ones.

Typical round trip::

    client = ServiceClient(port=port)
    info = client.submit(netlist, AtpgConfig(seed=3), tenant="team-a")
    done = client.wait(info["id"])
    result = client.result(info["id"])       # a real AtpgResult
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional

from .. import errors as _errors
from ..atpg.engine import AtpgResult
from ..circuit.netlist import Netlist
from ..core.serialization import atpg_result_from_dict
from ..errors import JobStateError, ServiceError
from ..runtime.config import AtpgConfig
from .jobs import DEFAULT_TENANT, submission_payload


def _raise_remote(status: int, payload: Any) -> None:
    """Re-raise a server error payload as its typed exception."""
    detail = payload.get("error", {}) if isinstance(payload, dict) else {}
    type_name = detail.get("type", "ServiceError")
    message = detail.get("message", f"service returned HTTP {status}")
    exc_type = getattr(_errors, type_name, None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, Exception)):
        exc_type = ServiceError
    raise exc_type(message)


class ServiceClient:
    """A connection-per-request client for one job server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            decoded = json.loads(data.decode("utf-8")) if data else {}
            if response.status >= 400:
                _raise_remote(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # -- service-level calls ---------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def pause(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/admin/pause")

    def resume(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/admin/resume")

    def shutdown_server(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/admin/shutdown")

    # -- job calls -------------------------------------------------------

    def submit_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a raw JSON body; returns ``{"job": ..., "deduped": ...}``."""
        return self._request("POST", "/v1/jobs", payload)

    def submit(
        self,
        netlist: Netlist,
        config: Optional[AtpgConfig] = None,
        tenant: str = DEFAULT_TENANT,
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one (netlist, config) run; returns the job info dict."""
        reply = self.submit_payload(
            submission_payload(netlist, config, tenant=tenant, name=name)
        )
        info = reply["job"]
        info["deduped"] = reply.get("deduped", info.get("deduped", False))
        return info

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    def result(self, job_id: str) -> AtpgResult:
        """The finished job's :class:`AtpgResult` (typed errors otherwise)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        return atpg_result_from_dict(payload["result"])

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final info."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            info = self.job(job_id)
            if info["state"] in ("done", "failed", "cancelled"):
                return info
            if deadline is not None and time.monotonic() > deadline:
                raise JobStateError(
                    f"job {job_id} still {info['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's state transitions (JSONL) until terminal."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                _raise_remote(
                    response.status,
                    json.loads(data.decode("utf-8")) if data else {},
                )
            while True:
                line = response.readline()
                if not line:
                    return
                yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()
