"""The service load harness: thousands of jobs, multiple tenants.

This module generates a deterministic multi-tenant workload (synthetic
cone-structured circuits from :mod:`repro.synth.generator`, several
seeds each, with deliberate duplicates to exercise single-flight and
the shared cache), drives it through a running job server, and reports:

* submit/queue/drain throughput and per-tenant latency percentiles,
* fair-share evidence — the maximum prefix imbalance of per-tenant
  completion counts over the global completion order (a perfectly fair
  two-tenant drain never exceeds 1),
* single-flight and cache-hit counts,
* optional **byte-identity verification**: a sample of service results
  is recomputed through a direct in-process
  :class:`~repro.runtime.session.Runtime` and compared as serialized
  bytes — the service must be a transport, never a transformation.

It is both a library (``benchmarks/bench_service.py`` and the tests
import it) and the engine behind ``repro bench``, which can boot its
own throwaway server subprocess (:func:`spawn_server`) so one command
demonstrates the whole loop.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError, ServiceError
from ..runtime.config import AtpgConfig
from ..runtime.session import Runtime
from ..core.serialization import atpg_result_to_dict
from ..synth.generator import GeneratorSpec, generate_circuit
from .client import ServiceClient
from .jobs import submission_payload


@dataclass(frozen=True)
class LoadPlan:
    """Shape of one deterministic load run.

    ``jobs`` submissions are spread round-robin across ``tenants``;
    the circuit/seed pair cycles with period ``circuits * seeds``, so
    any run with ``jobs`` beyond that period re-submits earlier keys —
    duplicates that must be absorbed by single-flight (while in
    flight) or the shared cache (once done).
    """

    jobs: int = 1000
    tenants: int = 2
    circuits: int = 6
    seeds: int = 4
    inputs: int = 10
    outputs: int = 3
    target_gates: int = 28

    def __post_init__(self) -> None:
        if self.jobs < 1 or self.tenants < 1:
            raise ValueError("jobs and tenants must be >= 1")
        if self.circuits < 1 or self.seeds < 1:
            raise ValueError("circuits and seeds must be >= 1")


def tenant_name(index: int) -> str:
    return f"tenant-{chr(ord('a') + index % 26)}{index // 26 or ''}"


def build_payloads(plan: LoadPlan) -> List[Dict[str, Any]]:
    """The full submission list, in deterministic submission order."""
    netlists = [
        generate_circuit(
            GeneratorSpec(
                name=f"svc{k}",
                inputs=plan.inputs,
                outputs=plan.outputs,
                target_gates=plan.target_gates,
                seed=100 + k,
            )
        )
        for k in range(plan.circuits)
    ]
    payloads: List[Dict[str, Any]] = []
    for index in range(plan.jobs):
        variant = index % (plan.circuits * plan.seeds)
        netlist = netlists[variant % plan.circuits]
        config = AtpgConfig(seed=variant // plan.circuits)
        payloads.append(
            submission_payload(
                netlist,
                config,
                tenant=tenant_name(index % plan.tenants),
                name=f"{netlist.name}-s{config.seed}",
            )
        )
    return payloads


def max_prefix_imbalance(completed: List[Dict[str, Any]]) -> int:
    """Fairness metric over the global completion order.

    Walk jobs in ``done_seq`` order and track how many each tenant has
    completed; the metric is the largest (max - min) gap seen while
    every tenant still had work outstanding.  Round-robin draining
    keeps this at 1 for balanced two-tenant load; a plain FIFO under a
    one-sided burst makes it grow with the burst.
    """
    totals: Dict[str, int] = {}
    for info in completed:
        totals[info["tenant"]] = totals.get(info["tenant"], 0) + 1
    remaining = dict(totals)
    counts = {tenant: 0 for tenant in totals}
    worst = 0
    ordered = sorted(
        (info for info in completed if info.get("done_seq") is not None),
        key=lambda info: info["done_seq"],
    )
    for info in ordered:
        tenant = info["tenant"]
        counts[tenant] += 1
        remaining[tenant] -= 1
        if all(count > 0 for count in remaining.values()):
            live = [counts[t] for t in totals]
            worst = max(worst, max(live) - min(live))
    return worst


def _percentiles(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {}
    ordered = sorted(samples)

    def pick(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    return {
        "p50": round(pick(0.50), 6),
        "p90": round(pick(0.90), 6),
        "p99": round(pick(0.99), 6),
        "max": round(ordered[-1], 6),
    }


def run_load(
    client: ServiceClient,
    payloads: List[Dict[str, Any]],
    pause_during_submit: bool = True,
    drain_timeout: float = 900.0,
) -> Dict[str, Any]:
    """Drive one workload through a live server; returns the report.

    ``pause_during_submit`` builds the whole queue before the
    dispatcher runs — the deterministic mode the fairness metric wants
    (otherwise early jobs finish while late ones are still arriving
    and prefix imbalance measures submission order, not scheduling).
    """
    if pause_during_submit:
        client.pause()
    submitted: List[str] = []
    rejected = 0
    deduped = 0
    submit_started = time.monotonic()
    for payload in payloads:
        try:
            reply = client.submit_payload(payload)
        except ServiceError:
            rejected += 1
            continue
        submitted.append(reply["job"]["id"])
        if reply.get("deduped"):
            deduped += 1
    submit_seconds = time.monotonic() - submit_started

    drain_started = time.monotonic()
    if pause_during_submit:
        client.resume()
    deadline = time.monotonic() + drain_timeout
    while True:
        health = client.health()
        live = health["jobs"].get("queued", 0) + health["jobs"].get("running", 0)
        if live == 0:
            break
        if time.monotonic() > deadline:
            raise ServiceError(
                f"load run did not drain within {drain_timeout}s "
                f"({live} jobs still live)"
            )
        time.sleep(0.05)
    drain_seconds = time.monotonic() - drain_started

    infos = client.jobs()
    by_state: Dict[str, int] = {}
    latencies: Dict[str, List[float]] = {}
    for info in infos:
        by_state[info["state"]] = by_state.get(info["state"], 0) + 1
        if info["state"] == "done" and info.get("finished_at"):
            latencies.setdefault(info["tenant"], []).append(
                info["finished_at"] - info["submitted_at"]
            )
    done = [info for info in infos if info["state"] == "done"]
    # Two fairness views: "scheduled" counts only jobs the queue really
    # dispatched (the scheduling decisions); the overall number also
    # includes single-flighted followers, which complete in bursts when
    # their leader does and so can legitimately spike the imbalance.
    scheduled = [info for info in done if not info["deduped"]]
    total_seconds = submit_seconds + drain_seconds
    return {
        "jobs_requested": len(payloads),
        "jobs_submitted": len(submitted),
        "jobs_rejected": rejected,
        "deduped_submissions": deduped,
        "tenants": sorted({info["tenant"] for info in infos}),
        "states": by_state,
        "fairness_max_prefix_imbalance": max_prefix_imbalance(done),
        "fairness_max_prefix_imbalance_scheduled": max_prefix_imbalance(
            scheduled
        ),
        "submit_seconds": round(submit_seconds, 3),
        "drain_seconds": round(drain_seconds, 3),
        "jobs_per_second": round(len(submitted) / total_seconds, 2)
        if total_seconds > 0
        else None,
        "latency_seconds": {
            tenant: _percentiles(samples)
            for tenant, samples in sorted(latencies.items())
        },
    }


def verify_against_runtime(
    client: ServiceClient,
    payloads: List[Dict[str, Any]],
    sample: int = 8,
) -> Dict[str, Any]:
    """Recompute a sample of results directly; compare serialized bytes.

    The acceptance bar for the service: fetching a result over the API
    is byte-identical to running the same (netlist, config) through an
    in-process :class:`Runtime`.
    """
    from ..circuit import parse_bench

    infos = {info["key"]: info for info in client.jobs()
             if info["state"] == "done"}
    seen: set = set()
    checked = 0
    mismatches: List[str] = []
    runtime = Runtime(workers=1, cache=None)
    for payload in payloads:
        if checked >= sample:
            break
        netlist = parse_bench(
            payload["netlist"]["text"], name=payload["netlist"]["name"]
        )
        config = AtpgConfig.from_dict(payload["config"])
        from ..runtime.cache import result_key

        key = result_key(netlist, config)
        if key in seen or key not in infos:
            continue
        seen.add(key)
        checked += 1
        remote = client.result(infos[key]["id"])
        local = runtime.generate(netlist, config=config)
        remote_bytes = json.dumps(
            atpg_result_to_dict(remote), sort_keys=True
        ).encode()
        local_bytes = json.dumps(
            atpg_result_to_dict(local), sort_keys=True
        ).encode()
        if remote_bytes != local_bytes:
            mismatches.append(key)
    return {
        "checked": checked,
        "mismatches": mismatches,
        "byte_identical": not mismatches,
    }


# -- server subprocess management ---------------------------------------


def spawn_server(
    extra_args: Optional[List[str]] = None,
    env: Optional[Dict[str, str]] = None,
    timeout: float = 30.0,
) -> Tuple[subprocess.Popen, int]:
    """Boot ``repro serve --port 0 ...`` and return (process, port).

    The server prints ``repro-service listening on http://host:port``
    once bound; this parses the port from that line.  Used by ``repro
    bench --serve``, the kill-and-resume tests, and the CI smoke job.
    """
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
    ] + (extra_args or [])
    process_env = dict(os.environ)
    if env:
        process_env.update(env)
    process_env.setdefault("PYTHONUNBUFFERED", "1")
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=process_env,
        text=True,
    )
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if "listening on" in line:
            port = int(line.rstrip().rsplit(":", 1)[1])
            return process, port
        if not line and process.poll() is not None:
            raise ServiceError(
                f"server exited with {process.returncode} before binding"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise ServiceError(f"server did not bind within {timeout}s")


def kill_server(process: subprocess.Popen, hard: bool = False) -> None:
    """Stop a spawned server (SIGKILL when ``hard`` — the crash test)."""
    if process.poll() is not None:
        return
    process.send_signal(signal.SIGKILL if hard else signal.SIGTERM)
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


# -- the ``repro bench`` entry point ------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro bench`` flags (shared with the standalone runner)."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="port of a running server; omitted = boot a throwaway one",
    )
    parser.add_argument("--jobs", type=int, default=1000)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--circuits", type=int, default=6)
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument(
        "--no-pause",
        action="store_true",
        help="submit against a live dispatcher instead of building "
        "the queue under pause first",
    )
    parser.add_argument(
        "--verify",
        type=int,
        default=4,
        metavar="N",
        help="recompute N distinct results in-process and compare bytes "
        "(0 disables)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report here (e.g. BENCH_service.json)",
    )


def bench_from_args(args: argparse.Namespace) -> int:
    """Run the load harness a parsed ``repro bench`` namespace asks for."""
    plan = LoadPlan(
        jobs=args.jobs,
        tenants=args.tenants,
        circuits=args.circuits,
        seeds=args.seeds,
    )
    payloads = build_payloads(plan)

    process: Optional[subprocess.Popen] = None
    port = args.port
    try:
        if port is None:
            process, port = spawn_server(["--no-cache"])
        client = ServiceClient(args.host, port)
        report = run_load(
            client, payloads, pause_during_submit=not args.no_pause
        )
        if args.verify:
            report["verification"] = verify_against_runtime(
                client, payloads, sample=args.verify
            )
        report["plan"] = {
            "jobs": plan.jobs,
            "tenants": plan.tenants,
            "circuits": plan.circuits,
            "seeds": plan.seeds,
        }
        text = json.dumps(report, indent=2, sort_keys=True)
        print(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        if report.get("verification", {}).get("mismatches"):
            return 1
        failed = report["states"].get("failed", 0)
        return 1 if failed else 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if process is not None:
            kill_server(process)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Load-test a repro ATPG job server.",
    )
    add_bench_arguments(parser)
    return bench_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
