"""Fair-share scheduling: per-tenant FIFOs drained round-robin.

The queue is deliberately *not* a single FIFO: under one shared FIFO a
tenant that bursts 10,000 submissions starves everyone behind it for
the whole burst.  :class:`FairShareQueue` keeps one FIFO per tenant and
drains them round-robin in first-seen tenant order, so every tenant
with pending work advances at the same rate regardless of backlog
shape — the scheduling analogue of the paper's per-core modularity
argument.

Admission control (token-bucket rate limiting, live-job quotas) lives
in the server's accept path, not here: the queue schedules whatever was
admitted.  :class:`TokenBucket` is provided here because it is the
rate-limit primitive the server uses per tenant.

The queue is plain synchronous state.  The server only touches it from
its event loop, so no locking is needed; tests drive it directly.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional

from .jobs import ServiceJob


class TokenBucket:
    """A per-tenant submission rate limiter.

    ``rate`` tokens refill per second up to ``burst``; each admission
    takes one.  ``rate=None`` disables the limiter (every take
    succeeds).  The clock is injectable so tests are deterministic.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at", "clock")

    def __init__(
        self,
        rate: Optional[float],
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self.clock = clock
        self.updated_at = clock()

    def try_take(self) -> bool:
        if self.rate is None:
            return True
        now = self.clock()
        self.tokens = min(
            float(self.burst), self.tokens + (now - self.updated_at) * self.rate
        )
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class FairShareQueue:
    """Per-tenant FIFOs with round-robin draining.

    Tenants enter the rotation in first-submission order and keep
    their slot while they have pending jobs; an emptied tenant drops
    out and re-enters at the back on its next submission.  Draining
    ``take_batch(n)`` therefore interleaves tenants *within* each
    executor batch: with tenants A and B both backlogged, every batch
    is A, B, A, B, ...
    """

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, Deque[ServiceJob]]" = OrderedDict()

    def put(self, job: ServiceJob) -> None:
        queue = self._queues.get(job.tenant)
        if queue is None:
            queue = self._queues[job.tenant] = deque()
        queue.append(job)

    def take_batch(self, limit: int) -> List[ServiceJob]:
        """Up to ``limit`` jobs, one per live tenant per rotation."""
        batch: List[ServiceJob] = []
        while len(batch) < limit and self._queues:
            progressed = False
            for tenant in list(self._queues):
                if len(batch) >= limit:
                    break
                queue = self._queues[tenant]
                if queue:
                    batch.append(queue.popleft())
                    progressed = True
                if not queue:
                    del self._queues[tenant]
            if not progressed:
                break
        return batch

    def remove(self, job: ServiceJob) -> bool:
        """Withdraw one queued job (cancellation); False if not queued."""
        queue = self._queues.get(job.tenant)
        if queue is None:
            return False
        try:
            queue.remove(job)
        except ValueError:
            return False
        if not queue:
            del self._queues[job.tenant]
        return True

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            queue = self._queues.get(tenant)
            return len(queue) if queue is not None else 0
        return sum(len(queue) for queue in self._queues.values())

    def tenant_depths(self) -> Dict[str, int]:
        return {tenant: len(queue) for tenant, queue in self._queues.items()}

    def __len__(self) -> int:
        return self.depth()

    def __bool__(self) -> bool:
        return any(self._queues.values())
