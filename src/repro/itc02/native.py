"""Tolerant reader for the native ITC'02 benchmark file dialect.

The published ITC'02 SOC Test Benchmark files are line-oriented module
blocks::

    SocName p34392
    TotalModules 20
    Module 0 'p34392'
        Level 0
        Inputs 32
        Outputs 27
        Bidirs 114
        TotalTests 1
        Test 1
            TamUse 1
            ScanUse 1
            Patterns 27
    Module 1 ...

Distribution copies differ in small ways (keyword spellings, optional
scan-chain length lists, comment styles), so this reader is *tolerant*:
recognized keys are listed in ``_MODULE_KEYS``/``_TEST_KEYS`` with their
aliases, unknown keys are skipped (collected in
:attr:`NativeSocFile.ignored_keys` for inspection), and hierarchy is
reconstructed from each module's ``Level`` by nesting order — module at
level L is embedded in the most recent module at level L-1, exactly the
p34392 structure.

Pattern counts follow the paper's selection: the first test with
``TamUse 1`` and ``ScanUse 1`` (falling back to the first test).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from ..errors import SocFormatError
from ..soc.model import Core, Soc


class NativeFormatError(SocFormatError):
    """Raised when the file cannot be interpreted as ITC'02 data."""


_MODULE_KEYS = {
    "level": ("level",),
    "inputs": ("inputs", "totalinputs"),
    "outputs": ("outputs", "totaloutputs"),
    "bidirs": ("bidirs", "bidirectionals", "totalbidirs"),
    "scan_chains": ("totalscanchains", "scanchains"),
}

_TEST_KEYS = {
    "patterns": ("patterns", "totalpatterns", "testpatterns"),
    "tam_use": ("tamuse",),
    "scan_use": ("scanuse",),
}


@dataclass
class NativeTest:
    index: int
    patterns: int = 0
    tam_use: int = 1
    scan_use: int = 1


@dataclass
class NativeModule:
    index: int
    name: str = ""
    level: int = 0
    inputs: int = 0
    outputs: int = 0
    bidirs: int = 0
    scan_cells: int = 0
    scan_chain_lengths: List[int] = field(default_factory=list)
    tests: List[NativeTest] = field(default_factory=list)

    def selected_patterns(self) -> int:
        """The paper's test selection: first TamUse=1, ScanUse=1 test."""
        for test in self.tests:
            if test.tam_use == 1 and test.scan_use == 1:
                return test.patterns
        return self.tests[0].patterns if self.tests else 0


@dataclass
class NativeSocFile:
    """A parsed native-format file plus provenance details."""

    name: str
    modules: List[NativeModule]
    ignored_keys: Set[str] = field(default_factory=set)

    def to_soc(self) -> Soc:
        """Convert to the analysis model, reconstructing the hierarchy."""
        last_at_level: Dict[int, NativeModule] = {}
        children: Dict[int, List[str]] = {m.index: [] for m in self.modules}
        for module in self.modules:
            last_at_level[module.level] = module
            if module.level > 0:
                parent = last_at_level.get(module.level - 1)
                if parent is None:
                    raise NativeFormatError(
                        f"module {module.index} at level {module.level} has "
                        f"no preceding level-{module.level - 1} parent"
                    )
                children[parent.index].append(str(module.index))
        cores = [
            Core(
                name=str(module.index),
                inputs=module.inputs,
                outputs=module.outputs,
                bidirs=module.bidirs,
                scan_cells=module.scan_cells,
                patterns=module.selected_patterns(),
                children=children[module.index],
            )
            for module in self.modules
        ]
        top = str(min(m.index for m in self.modules if m.level == 0))
        return Soc(self.name, cores, top=top)


_MODULE_RE = re.compile(r"^module\s+(\d+)(?:\s+'([^']*)')?", re.IGNORECASE)
_TEST_RE = re.compile(r"^test\s+(\d+)", re.IGNORECASE)


def parse_native(text: str) -> NativeSocFile:
    """Parse native ITC'02 text, tolerantly."""
    name: Optional[str] = None
    modules: List[NativeModule] = []
    ignored: Set[str] = set()
    module: Optional[NativeModule] = None
    test: Optional[NativeTest] = None

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("socname"):
            name = line.split(None, 1)[1].strip() if " " in line else ""
            continue
        if lowered.startswith("totalmodules"):
            continue  # informational; the module blocks are authoritative
        match = _MODULE_RE.match(line)
        if match:
            module = NativeModule(
                index=int(match.group(1)), name=match.group(2) or ""
            )
            modules.append(module)
            test = None
            continue
        match = _TEST_RE.match(line)
        if match and module is not None:
            test = NativeTest(index=int(match.group(1)))
            module.tests.append(test)
            continue
        key, *rest = line.split()
        key_lower = key.lower()
        values = rest
        if module is None:
            ignored.add(key_lower)
            continue
        if test is not None and _match_key(key_lower, _TEST_KEYS):
            field_name = _match_key(key_lower, _TEST_KEYS)
            setattr(test, field_name, _int(values, key, 0))
            continue
        field_name = _match_key(key_lower, _MODULE_KEYS)
        if field_name == "scan_chains":
            # "ScanChains <count> [len len ...]" or "TotalScanChains <count>"
            lengths = [int(v) for v in values[1:]] if len(values) > 1 else []
            module.scan_chain_lengths = lengths
            if lengths:
                module.scan_cells = sum(lengths)
            continue
        if field_name == "level":
            module.level = _int(values, key, 0)
        elif field_name:
            setattr(module, field_name, _int(values, key, 0))
        elif key_lower.startswith("scanchain"):
            # "ScanChain <i> <length>" per-chain form.
            if len(values) >= 2:
                length = int(values[1])
                module.scan_chain_lengths.append(length)
                module.scan_cells += length
        else:
            ignored.add(key_lower)

    if name is None:
        raise NativeFormatError("missing SocName header")
    if not modules:
        raise NativeFormatError(f"{name}: no Module blocks found")
    return NativeSocFile(name=name, modules=modules, ignored_keys=ignored)


def _match_key(key: str, table: Dict[str, tuple]) -> Optional[str]:
    for field_name, aliases in table.items():
        if key in aliases:
            return field_name
    return None


def _int(values: List[str], key: str, default: int) -> int:
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        raise NativeFormatError(f"{key}: expected an integer, got {values[0]!r}")


def load_native_file(path: Union[str, Path]) -> NativeSocFile:
    return parse_native(Path(path).read_text())


def native_to_soc(text: str) -> Soc:
    """One-step convenience: native text to the analysis model."""
    return parse_native(text).to_soc()
