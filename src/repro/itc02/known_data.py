"""Genuine per-core ITC'02 data that survives in the open literature.

Three of the ten Table-4 SOCs can be (partially) reconstructed from
published sources rather than calibrated from aggregates alone:

* **p34392** — the paper's own Table 3 lists every core verbatim; we
  rebuild it exactly, with the hierarchy of Figure 3 (cores 1, 2, 10 and
  18 at the top level).
* **d695** — the per-core table of this ISCAS'85/89-based SOC appears in
  many wrapper/TAM papers (e.g. Iyengar, Chakrabarty & Marinissen, DATE
  2002); we pin the pattern counts and seed the scan/terminal counts
  from it, letting the calibrator repair the handful of cells needed to
  meet the published aggregates.
* **g12710** — the paper itself quotes the four core pattern counts
  (852, 1314, 1223, 1223) in Section 5.2; they are pinned.
"""

from __future__ import annotations

from typing import List

from ..soc.model import Core, Soc
from .paper_tables import G12710_PATTERN_COUNTS, TABLE3_P34392

# d695 cores in ITC'02 order: c6288, c7552, s838, s9234, s38584, s13207,
# s15850, s5378, s35932, s38417.
D695_CIRCUITS: List[str] = [
    "c6288", "c7552", "s838", "s9234", "s38584",
    "s13207", "s15850", "s5378", "s35932", "s38417",
]
D695_PATTERN_COUNTS: List[int] = [12, 73, 75, 105, 110, 234, 95, 97, 12, 68]
D695_SCAN_SEED: List[int] = [0, 0, 32, 228, 1426, 638, 534, 179, 1728, 1636]
# Per-core functional terminals (inputs + outputs), from the same tables.
D695_IO_SEED: List[int] = [64, 315, 35, 75, 342, 214, 227, 84, 355, 134]
D695_CHIP_IO = 24  # solved so the Eq. 3 bit width matches Table 4's 12,768

G12710_PATTERNS: List[int] = list(G12710_PATTERN_COUNTS)

# Figure 3 places cores 1, 2, 10 and 18 at the SOC top level; Table 3's
# "Embeds" entry for core 0 lists only 1, 2 and 18, which is one of the
# paper's internal inconsistencies (DESIGN.md).  We follow the figure.
P34392_TOP_CHILDREN = ("1", "2", "10", "18")


def build_p34392() -> Soc:
    """The p34392 SOC exactly as published in the paper's Table 3."""
    cores = []
    for row in TABLE3_P34392:
        children = P34392_TOP_CHILDREN if row.core == "0" else row.embeds
        cores.append(
            Core(
                name=row.core,
                inputs=row.inputs,
                outputs=row.outputs,
                bidirs=row.bidirs,
                scan_cells=row.scan_cells,
                patterns=row.patterns,
                children=list(children),
            )
        )
    return Soc("p34392", cores, top="0")
