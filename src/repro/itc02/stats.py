"""Descriptive statistics over the ITC'02 benchmark suite.

Characterizes each SOC along the axes the TDV analysis cares about —
scan population, terminal population, pattern-count spread, hierarchy —
and explains each SOC's Table 4 outcome from those inputs (the
"why does g12710 lose" question, answered quantitatively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.analysis import pattern_count_variation
from ..core.tdv import summarize
from ..soc.model import Soc
from .benchmarks import BENCHMARK_NAMES, load


@dataclass(frozen=True)
class BenchmarkStats:
    """One SOC's structural profile."""

    name: str
    core_count: int  # functional cores
    hierarchical_cores: int
    total_scan_cells: int
    total_core_terminals: int  # functional-core I+O+2B
    pattern_min: int
    pattern_max: int
    pattern_variation: float
    terminals_per_scan_cell: float  # the g12710 indicator

    @property
    def io_dominated(self) -> bool:
        """True when terminals outnumber scan cells — the regime the
        paper identifies as g12710's reason for losing."""
        return self.terminals_per_scan_cell > 1.0


def soc_stats(soc: Soc) -> BenchmarkStats:
    functional = [core for core in soc if core.name != soc.top_name]
    total_terms = sum(core.io_terminals for core in functional)
    total_scan = sum(core.scan_cells for core in functional)
    counts = [core.patterns for core in functional]
    return BenchmarkStats(
        name=soc.name,
        core_count=len(functional),
        hierarchical_cores=sum(1 for core in functional if core.is_hierarchical),
        total_scan_cells=total_scan,
        total_core_terminals=total_terms,
        pattern_min=min(counts),
        pattern_max=max(counts),
        pattern_variation=pattern_count_variation(soc),
        terminals_per_scan_cell=(
            total_terms / total_scan if total_scan else float("inf")
        ),
    )


def suite_stats() -> List[BenchmarkStats]:
    """Profiles for all ten shipped benchmarks, Table-4 order."""
    return [soc_stats(load(name)) for name in BENCHMARK_NAMES]


def explain_outcome(soc: Soc) -> str:
    """A one-paragraph quantitative reading of an SOC's Table 4 row."""
    stats = soc_stats(soc)
    summary = summarize(soc)
    change = 100.0 * summary.modular_change_fraction
    lines = [
        f"{stats.name}: modular testing changes TDV by {change:+.1f}%.",
        f"Pattern counts span {stats.pattern_min:,}..{stats.pattern_max:,} "
        f"(normalized stdev {stats.pattern_variation:.2f}) over "
        f"{stats.core_count} cores, so the monolithic test tops off "
        f"{stats.total_scan_cells:,} scan cells to {stats.pattern_max:,} "
        f"patterns.",
        f"Isolation costs {stats.total_core_terminals:,} wrapper cells "
        f"({stats.terminals_per_scan_cell:.2f} per scan cell) — "
        + (
            "terminal-dominated, so the penalty can overwhelm the benefit."
            if stats.io_dominated
            else "scan-dominated, so the benefit dominates the penalty."
        ),
    ]
    return "\n".join(lines)


def suite_report() -> str:
    """The whole suite's profile as an aligned table."""
    from ..core.report import format_table

    rows = []
    for stats in suite_stats():
        rows.append([
            stats.name,
            stats.core_count,
            stats.hierarchical_cores,
            stats.total_scan_cells,
            stats.total_core_terminals,
            f"{stats.pattern_min:,}..{stats.pattern_max:,}",
            round(stats.pattern_variation, 2),
            "io" if stats.io_dominated else "scan",
        ])
    return format_table(
        ["SOC", "Cores", "Hier", "Scan cells", "Terminals", "Patterns",
         "NSD", "Dominated by"],
        rows,
    )
