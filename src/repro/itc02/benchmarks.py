"""Loading API for the shipped ITC'02 benchmark SOC descriptions.

The ten SOCs of the paper's Table 4 ship as ``.soc`` files under
``repro/itc02/data/``.  They are produced by :mod:`repro.itc02.make_data`
(run once; the files are committed) from the genuine per-core data in
:mod:`repro.itc02.known_data` plus the calibrated reconstructions of
:mod:`repro.itc02.calibrate`.
"""

from __future__ import annotations

from importlib import resources
from pathlib import Path
from typing import Dict, Iterable, List

from ..errors import UnknownBenchmarkError
from ..soc.model import Soc
from .format import SocFile, parse_soc

#: Table-4 order of the benchmark SOCs.
BENCHMARK_NAMES: List[str] = [
    "d695", "h953", "f2126", "g1023", "g12710",
    "p22810", "p34392", "p93791", "t512505", "a586710",
]


def data_dir() -> Path:
    """Directory holding the shipped ``.soc`` files."""
    return Path(str(resources.files("repro.itc02") / "data"))


def benchmark_names() -> List[str]:
    """The ten Table-4 SOC names, in the paper's order."""
    return list(BENCHMARK_NAMES)


def load_file(name: str) -> SocFile:
    """Load one benchmark's full parsed ``.soc`` file."""
    if name not in BENCHMARK_NAMES:
        raise UnknownBenchmarkError(
            f"unknown ITC'02 benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )
    path = data_dir() / f"{name}.soc"
    if not path.exists():
        raise FileNotFoundError(
            f"benchmark data file {path} is missing; regenerate it with "
            f"'python -m repro.itc02.make_data'"
        )
    return parse_soc(path.read_text())


def load(name: str) -> Soc:
    """Load one benchmark SOC by name."""
    return load_file(name).soc


def load_many(names: Iterable[str]) -> Dict[str, Soc]:
    """A subset of the benchmark SOCs, keyed by name, in Table-4 order.

    Unknown names raise :class:`~repro.errors.UnknownBenchmarkError`
    before anything loads, so a typo in a sweep's SOC list fails fast
    rather than after the first shards have run.
    """
    requested = list(names)
    unknown = [name for name in requested if name not in BENCHMARK_NAMES]
    if unknown:
        raise UnknownBenchmarkError(
            f"unknown ITC'02 benchmark(s) {unknown}; choose from {BENCHMARK_NAMES}"
        )
    ordered = [name for name in BENCHMARK_NAMES if name in set(requested)]
    return {name: load(name) for name in ordered}


def load_all() -> Dict[str, Soc]:
    """All ten benchmark SOCs, keyed by name, in Table-4 order."""
    return {name: load(name) for name in BENCHMARK_NAMES}
