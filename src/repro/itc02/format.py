"""Reader/writer for the ``.soc`` SOC-description format.

The ITC'02 SOC Test Benchmarks (Marinissen, Iyengar, Chakrabarty, ITC
2002) distribute each SOC as a text file listing, per module, its
terminal counts, scan chains, and test-set sizes.  This module implements
a faithful, line-oriented dialect of that format restricted to the fields
the paper's analysis consumes — for each core: inputs, outputs,
bidirectionals, scan cells (optionally as explicit scan-chain lengths,
which the TAM substrate uses), the stand-alone pattern count, and the
embedding hierarchy.

Grammar (``#`` starts a comment, blank lines ignored)::

    Soc <name>
    Top <core-name>
    Core <core-name>
        Inputs <int>
        Outputs <int>
        Bidirs <int>
        ScanCells <int>            # or: ScanChains <len> <len> ...
        Patterns <int>
        Embeds <core-name> ...
    End

Every ``Core``/``End`` block may omit fields, which default to zero /
empty.  ``ScanCells`` and ``ScanChains`` are mutually exclusive within a
block; ``ScanChains`` also records the chain partition in
:attr:`SocFile.scan_chains`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import SocFormatError
from ..soc.model import Core, Soc

# Re-exported for back-compat: the class moved to repro.errors so every
# layer can catch it without importing the parser.
__all__ = ["SocFile", "SocFormatError", "parse_soc"]


@dataclass
class SocFile:
    """Parsed contents of a ``.soc`` file.

    Besides the :class:`~repro.soc.model.Soc` proper, keeps the
    scan-chain partition of each core (empty when the file used the
    aggregate ``ScanCells`` form), which downstream wrapper/TAM design
    needs but the TDV formulas do not.
    """

    soc: Soc
    scan_chains: Dict[str, List[int]] = field(default_factory=dict)


def parse_soc(text: str) -> SocFile:
    """Parse ``.soc`` text into a :class:`SocFile`."""
    soc_name: Optional[str] = None
    top_name: Optional[str] = None
    cores: List[Core] = []
    chains: Dict[str, List[int]] = {}
    current: Optional[Dict[str, object]] = None

    def finish_block(line_number: int) -> None:
        nonlocal current
        if current is None:
            raise SocFormatError("'End' without matching 'Core'", line_number)
        name = str(current["name"])
        scan_cells = current["scan_cells"]
        core_chains = current["chains"]
        if core_chains:
            scan_cells = sum(core_chains)  # type: ignore[arg-type]
            chains[name] = list(core_chains)  # type: ignore[arg-type]
        cores.append(
            Core(
                name=name,
                inputs=int(current["inputs"]),  # type: ignore[call-overload]
                outputs=int(current["outputs"]),  # type: ignore[call-overload]
                bidirs=int(current["bidirs"]),  # type: ignore[call-overload]
                scan_cells=int(scan_cells),  # type: ignore[call-overload]
                patterns=int(current["patterns"]),  # type: ignore[call-overload]
                children=list(current["children"]),  # type: ignore[call-overload]
            )
        )
        current = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        keyword, *rest = line.split()
        if keyword == "Soc":
            soc_name = _one_token(rest, "Soc", line_number)
        elif keyword == "Top":
            top_name = _one_token(rest, "Top", line_number)
        elif keyword == "Core":
            if current is not None:
                raise SocFormatError("nested 'Core' block", line_number)
            current = {
                "name": _one_token(rest, "Core", line_number),
                "inputs": 0, "outputs": 0, "bidirs": 0,
                "scan_cells": 0, "patterns": 0,
                "children": [], "chains": [],
            }
        elif keyword == "End":
            finish_block(line_number)
        elif keyword in ("Inputs", "Outputs", "Bidirs", "ScanCells", "Patterns"):
            if current is None:
                raise SocFormatError(f"{keyword!r} outside a Core block", line_number)
            value = _one_int(rest, keyword, line_number)
            slot = {
                "Inputs": "inputs", "Outputs": "outputs", "Bidirs": "bidirs",
                "ScanCells": "scan_cells", "Patterns": "patterns",
            }[keyword]
            if keyword == "ScanCells" and current["chains"]:
                raise SocFormatError(
                    "ScanCells and ScanChains are mutually exclusive", line_number
                )
            current[slot] = value
        elif keyword == "ScanChains":
            if current is None:
                raise SocFormatError("'ScanChains' outside a Core block", line_number)
            if current["scan_cells"]:
                raise SocFormatError(
                    "ScanCells and ScanChains are mutually exclusive", line_number
                )
            current["chains"] = [_as_int(token, line_number) for token in rest]
        elif keyword == "Embeds":
            if current is None:
                raise SocFormatError("'Embeds' outside a Core block", line_number)
            current["children"].extend(rest)  # type: ignore[union-attr]
        else:
            raise SocFormatError(f"unknown keyword {keyword!r}", line_number)

    if current is not None:
        raise SocFormatError("unterminated Core block (missing 'End')")
    if soc_name is None:
        raise SocFormatError("missing 'Soc <name>' header")
    if not cores:
        raise SocFormatError(f"SOC {soc_name!r} defines no cores")
    soc = Soc(soc_name, cores, top=top_name)
    return SocFile(soc=soc, scan_chains=chains)


def _one_token(tokens: List[str], keyword: str, line_number: int) -> str:
    if len(tokens) != 1:
        raise SocFormatError(
            f"{keyword!r} expects exactly one value, got {len(tokens)}", line_number
        )
    return tokens[0]


def _one_int(tokens: List[str], keyword: str, line_number: int) -> int:
    return _as_int(_one_token(tokens, keyword, line_number), line_number)


def _as_int(token: str, line_number: int) -> int:
    try:
        value = int(token)
    except ValueError:
        raise SocFormatError(f"expected an integer, got {token!r}", line_number) from None
    if value < 0:
        raise SocFormatError(f"expected a non-negative integer, got {value}", line_number)
    return value


def dump_soc(
    source: Union[Soc, SocFile],
    header_comment: Optional[str] = None,
) -> str:
    """Serialize an SOC (or parsed :class:`SocFile`) back to ``.soc`` text."""
    if isinstance(source, SocFile):
        soc, chains = source.soc, source.scan_chains
    else:
        soc, chains = source, {}
    lines: List[str] = []
    if header_comment:
        lines.extend(f"# {line}" for line in header_comment.splitlines())
    lines.append(f"Soc {soc.name}")
    lines.append(f"Top {soc.top_name}")
    for core in soc:
        lines.append(f"Core {core.name}")
        lines.append(f"    Inputs {core.inputs}")
        lines.append(f"    Outputs {core.outputs}")
        if core.bidirs:
            lines.append(f"    Bidirs {core.bidirs}")
        if core.name in chains:
            chain_list = " ".join(str(length) for length in chains[core.name])
            lines.append(f"    ScanChains {chain_list}")
        elif core.scan_cells:
            lines.append(f"    ScanCells {core.scan_cells}")
        lines.append(f"    Patterns {core.patterns}")
        if core.children:
            lines.append(f"    Embeds {' '.join(core.children)}")
        lines.append("End")
    return "\n".join(lines) + "\n"


def load_soc_file(path: Union[str, Path]) -> SocFile:
    """Parse a ``.soc`` file from disk."""
    return parse_soc(Path(path).read_text())


def save_soc_file(
    path: Union[str, Path],
    source: Union[Soc, SocFile],
    header_comment: Optional[str] = None,
) -> None:
    """Write an SOC to disk in ``.soc`` format."""
    Path(path).write_text(dump_soc(source, header_comment=header_comment))


def parse_many(texts: Iterable[Tuple[str, str]]) -> Dict[str, SocFile]:
    """Parse several named ``.soc`` texts; keys are the given names."""
    return {name: parse_soc(text) for name, text in texts}
