"""ITC'02 SOC test benchmarks: format, data, calibration, published tables."""

from .benchmarks import (
    BENCHMARK_NAMES,
    benchmark_names,
    load,
    load_all,
    load_file,
    load_many,
)
from .calibrate import (
    CalibrationError,
    CalibrationHints,
    CalibrationResult,
    CalibrationTarget,
    auto_hints,
    calibrate,
    generate_pattern_counts,
)
from .format import (
    SocFile,
    SocFormatError,
    dump_soc,
    load_soc_file,
    parse_soc,
    save_soc_file,
)
from .known_data import build_p34392
from .native import (
    NativeFormatError,
    NativeSocFile,
    load_native_file,
    native_to_soc,
    parse_native,
)
from .stats import BenchmarkStats, explain_outcome, soc_stats, suite_report, suite_stats

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkStats",
    "CalibrationError",
    "CalibrationHints",
    "CalibrationResult",
    "CalibrationTarget",
    "NativeFormatError",
    "NativeSocFile",
    "SocFile",
    "SocFormatError",
    "auto_hints",
    "benchmark_names",
    "build_p34392",
    "calibrate",
    "dump_soc",
    "explain_outcome",
    "generate_pattern_counts",
    "load",
    "load_all",
    "load_file",
    "load_many",
    "load_native_file",
    "load_soc_file",
    "native_to_soc",
    "parse_native",
    "parse_soc",
    "save_soc_file",
    "soc_stats",
    "suite_report",
    "suite_stats",
]
