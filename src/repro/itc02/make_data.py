"""Generate the shipped ``.soc`` data files for the ten Table-4 SOCs.

Run as ``python -m repro.itc02.make_data``.  Deterministic: rerunning
reproduces the committed files byte-for-byte.

* p34392 is written verbatim from the paper's Table 3.
* d695 and g12710 use the genuine seeds in :mod:`repro.itc02.known_data`
  with calibration repair.
* The remaining seven SOCs are calibrated reconstructions whose hints
  come from :func:`repro.itc02.calibrate.auto_hints`.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Optional

from .benchmarks import BENCHMARK_NAMES, data_dir
from .calibrate import (
    CalibrationHints,
    CalibrationResult,
    CalibrationTarget,
    auto_hints,
    calibrate,
)
from .format import save_soc_file
from .known_data import (
    D695_CHIP_IO,
    D695_IO_SEED,
    D695_PATTERN_COUNTS,
    D695_SCAN_SEED,
    G12710_PATTERNS,
    build_p34392,
)
from .paper_tables import TABLE4_BY_NAME

#: Hand-picked hints for the SOCs with genuine per-core seeds.
SEEDED_HINTS: Dict[str, CalibrationHints] = {
    "d695": CalibrationHints(
        max_patterns=max(D695_PATTERN_COUNTS),
        chip_io=D695_CHIP_IO,
        pattern_counts=D695_PATTERN_COUNTS,
        scan_seed=D695_SCAN_SEED,
        io_seed=D695_IO_SEED,
    ),
    "g12710": CalibrationHints(
        max_patterns=max(G12710_PATTERNS),
        chip_io=128,
        pattern_counts=G12710_PATTERNS,
    ),
}


def calibrated_result(name: str) -> CalibrationResult:
    """Run the calibrator for one non-p34392 benchmark."""
    target = CalibrationTarget.from_table4(TABLE4_BY_NAME[name])
    hints = SEEDED_HINTS.get(name)
    if hints is None:
        hints = auto_hints(target)
    return calibrate(target, hints)


def generate_all(out_dir: Optional[Path] = None, verbose: bool = True) -> Dict[str, Path]:
    """Write every benchmark's ``.soc`` file; returns name -> path."""
    out_dir = data_dir() if out_dir is None else Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    for name in BENCHMARK_NAMES:
        path = out_dir / f"{name}.soc"
        if name == "p34392":
            comment = (
                "ITC'02 SOC p34392, verbatim from Table 3 of Sinanoglu & "
                "Marinissen, DATE 2008.\nHierarchy follows Figure 3 (cores "
                "1, 2, 10, 18 at the top level)."
            )
            save_soc_file(path, build_p34392(), header_comment=comment)
        else:
            result = calibrated_result(name)
            errors = ", ".join(
                f"{key}={value:+.2e}" for key, value in result.relative_errors.items()
            )
            comment = (
                f"ITC'02 SOC {name}: calibrated reconstruction matching the "
                f"Table 4 aggregates of\nSinanoglu & Marinissen, DATE 2008 "
                f"(see DESIGN.md for the substitution rationale).\n"
                f"Relative errors vs the published row: {errors}"
            )
            save_soc_file(path, result.soc, header_comment=comment)
        written[name] = path
        if verbose:
            print(f"wrote {path}")
    return written


def main() -> int:
    generate_all()
    return 0


if __name__ == "__main__":
    sys.exit(main())
