"""Calibrated reconstruction of ITC'02 SOC descriptions.

The original ITC'02 benchmark files are not redistributable from memory,
but the paper's Table 4 reports, per SOC: the functional core count, the
normalized (sample) standard deviation of core pattern counts, and four
TDV aggregates (optimistic monolithic volume, isolation penalty,
variation benefit, modular volume).  This module *solves the inverse
problem*: it synthesizes a flat SOC — per-core inputs/outputs, scan
cells, and pattern counts — whose aggregates under Equations 3, 4, 7 and
8 match the published row.

Exact integer matches are provably impossible for several rows (the
published benefit of d695 and p93791 has the wrong parity for any
integer SOC — see DESIGN.md), so the solver targets and verifies a small
relative tolerance instead.  Where genuine per-core data survives in the
literature it is passed in as *seeds* (fixed pattern counts for d695,
the four pattern counts the paper quotes for g12710) and only repaired,
never replaced.

The decomposition identity with the chip-I/O residual (see
:mod:`repro.core.decomposition`) guarantees that matching the optimistic
monolithic volume, the penalty, and the identity-convention benefit also
matches the modular volume, so only three aggregates are solved for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.analysis import normalized_stdev
from ..core.tdv import summarize
from ..errors import ReproError
from ..soc.model import Core, Soc
from .paper_tables import Table4Row


class CalibrationError(ReproError, ValueError):
    """Raised when no SOC close to the published aggregates can be built."""


@dataclass(frozen=True)
class CalibrationTarget:
    """The published aggregates a reconstruction must reproduce."""

    soc: str
    cores: int  # functional cores, excluding the top level
    norm_stdev: float
    tdv_opt_mono: int
    tdv_penalty: int
    tdv_benefit: int  # identity convention (includes the chip-I/O residual)
    tdv_modular: int

    @classmethod
    def from_table4(cls, row: Table4Row) -> "CalibrationTarget":
        return cls(
            soc=row.soc,
            cores=row.cores,
            norm_stdev=row.norm_stdev,
            tdv_opt_mono=row.tdv_opt_mono,
            tdv_penalty=row.tdv_penalty,
            tdv_benefit=row.tdv_benefit,
            tdv_modular=row.tdv_modular,
        )


@dataclass
class CalibrationHints:
    """Solver knobs; good values come from :func:`auto_hints`.

    ``pattern_counts`` pins the per-core pattern counts (genuine data);
    ``scan_seed``/``io_seed`` start the allocators from known per-core
    values, which the repair passes then perturb minimally.
    """

    max_patterns: int
    chip_io: int = 128
    top_patterns: int = 0
    pattern_counts: Optional[Sequence[int]] = None
    scan_seed: Optional[Sequence[int]] = None
    io_seed: Optional[Sequence[int]] = None


@dataclass
class CalibrationResult:
    """A reconstructed SOC plus its achieved-vs-target errors."""

    soc: Soc
    target: CalibrationTarget
    relative_errors: Dict[str, float] = field(default_factory=dict)

    @property
    def max_relative_error(self) -> float:
        return max(abs(err) for err in self.relative_errors.values())


def generate_pattern_counts(
    count: int,
    max_patterns: int,
    norm_stdev_target: float,
    clamp_second: bool = True,
) -> List[int]:
    """Deterministic pattern counts with a given max and normalized stdev.

    Uses a geometric-decay family ``t_i = max * exp(-lam * i/(n-1))``
    whose normalized sample stdev grows monotonically with ``lam``;
    ``lam`` is found by bisection.  With ``clamp_second`` the
    second-largest count is clamped to ``max - 1``, giving the benefit
    repair pass a unit-sized adjustment handle (see
    :func:`_allocate_scan`); the clamp lowers the family's maximum
    reachable spread, so it is dropped automatically when the target
    spread needs the unclamped family (e.g. a586710's 1.95 with 7
    cores).
    """
    if count < 2:
        raise CalibrationError("need at least 2 cores to shape a pattern-count spread")
    if max_patterns < 2:
        raise CalibrationError("max_patterns must be >= 2")

    def counts_for(lam: float, clamp: bool) -> List[int]:
        values = [
            max(1, round(max_patterns * math.exp(-lam * i / (count - 1))))
            for i in range(count)
        ]
        values[0] = max_patterns
        if clamp and count >= 3:
            values[1] = max(1, max_patterns - 1)
        return values

    lo, hi = 0.0, 80.0
    clamp = clamp_second
    if clamp and normalized_stdev(counts_for(hi, clamp)) < norm_stdev_target:
        clamp = False  # the clamp caps the reachable spread; drop it
    if normalized_stdev(counts_for(hi, clamp)) < norm_stdev_target:
        raise CalibrationError(
            f"normalized stdev {norm_stdev_target} unreachable with "
            f"{count} cores (family saturates below the target)"
        )
    for _ in range(80):
        mid = (lo + hi) / 2
        if normalized_stdev(counts_for(mid, clamp)) < norm_stdev_target:
            lo = mid
        else:
            hi = mid
    return counts_for((lo + hi) / 2, clamp)


def _repair_weighted_sum(
    values: List[int],
    weights: Sequence[int],
    target: int,
    minimum: int = 0,
) -> int:
    """Nudge integer ``values`` so ``sum(w*v)`` approaches ``target``.

    Greedy unit adjustments, largest useful weight first; respects the
    per-entry ``minimum``.  Returns the remaining error, which is smaller
    in magnitude than the smallest positive weight (or zero).
    """
    error = target - sum(w * v for w, v in zip(weights, values))
    by_weight = sorted(
        (i for i, w in enumerate(weights) if w > 0),
        key=lambda i: weights[i],
        reverse=True,
    )
    progress = True
    while error != 0 and progress:
        progress = False
        if error > 0:
            for i in by_weight:
                steps = error // weights[i]
                if steps > 0:
                    values[i] += steps
                    error -= steps * weights[i]
                    progress = True
        else:
            for i in by_weight:
                steps = min((-error) // weights[i], values[i] - minimum)
                if steps > 0:
                    values[i] -= steps
                    error += steps * weights[i]
                    progress = True
    return error


def _allocate_scan(
    pattern_counts: Sequence[int],
    total_scan: int,
    strict_benefit: int,
    seed: Optional[Sequence[int]] = None,
) -> List[int]:
    """Distribute ``total_scan`` cells so Eq. 8 gives ``strict_benefit``.

    Works with the per-core deficits ``d_i = t_max - t_i``: the benefit
    is ``2 * sum(d_i * s_i)``, while the optimistic monolithic volume
    fixes ``sum(s_i)``.  A linear blend between a uniform allocation and
    a point mass (on the max-deficit core to raise the benefit, on the
    max-pattern core to lower it) hits the target in the reals; integer
    rounding is then repaired by unit transfers against the zero-deficit
    core, which leave ``sum(s_i)`` untouched.
    """
    t_max = max(pattern_counts)
    deficits = [t_max - t for t in pattern_counts]
    n = len(pattern_counts)
    target = strict_benefit // 2  # benefit summands are 2*d*s, always even
    anchor = deficits.index(0)  # a max-pattern core: transfers via it are free

    if seed is not None:
        scaled = total_scan / max(1, sum(seed))
        scan = [max(0, round(s * scaled)) for s in seed]
    else:
        max_deficit = max(deficits)
        if target > total_scan * max_deficit:
            raise CalibrationError(
                f"benefit target {2 * target} exceeds the maximum reachable "
                f"{2 * total_scan * max_deficit} for this pattern spread"
            )
        uniform_benefit = total_scan * sum(deficits) / n
        if target >= uniform_benefit:
            hot = deficits.index(max_deficit)
            theta = (target - uniform_benefit) / (total_scan * max_deficit - uniform_benefit)
        else:
            hot = anchor
            theta = 1.0 - target / uniform_benefit if uniform_benefit else 1.0
        theta = min(1.0, max(0.0, theta))
        scan = [round((1 - theta) * total_scan / n) for _ in range(n)]
        scan[hot] += round(theta * total_scan)

    # Restore the exact cell total on the anchor (benefit-neutral there).
    scan[anchor] = max(0, scan[anchor] + total_scan - sum(scan))
    _repair_scan_benefit(scan, deficits, target, anchor)
    return scan


def _repair_scan_benefit(
    scan: List[int], deficits: Sequence[int], target: int, anchor: int
) -> None:
    """Unit transfers between the anchor and other cores to fix the benefit."""
    error = target - sum(d * s for d, s in zip(deficits, scan))
    candidates = sorted(
        (i for i, d in enumerate(deficits) if d > 0),
        key=lambda i: deficits[i],
        reverse=True,
    )
    progress = True
    while error != 0 and progress:
        progress = False
        if error > 0:
            for i in candidates:
                steps = min(error // deficits[i], scan[anchor])
                if steps > 0:
                    scan[anchor] -= steps
                    scan[i] += steps
                    error -= steps * deficits[i]
                    progress = True
        else:
            for i in candidates:
                steps = min((-error) // deficits[i], scan[i])
                if steps > 0:
                    scan[anchor] += steps
                    scan[i] -= steps
                    error += steps * deficits[i]
                    progress = True


def _allocate_io(
    pattern_counts: Sequence[int],
    scan: Sequence[int],
    penalty_target: int,
    top_patterns: int,
    seed: Optional[Sequence[int]] = None,
) -> List[int]:
    """Choose per-core terminal counts so Eq. 7 gives ``penalty_target``.

    For a flat SOC whose top embeds every core, the penalty is
    ``sum((t_i + t_top) * io_i) + t_top * io_top``; the caller removes
    the constant top term, so each core's terminals enter with weight
    ``t_i + t_top``.
    """
    weights = [t + top_patterns for t in pattern_counts]
    n = len(pattern_counts)
    if seed is not None:
        io = [max(2, int(x)) for x in seed]
    else:
        # Uniform terminal counts across cores: io = P* / sum(w) keeps
        # every core's pin count physically plausible.  (Allocating equal
        # penalty *contributions* instead would hand a one-pattern core
        # millions of pins.)
        uniform = max(2, round(penalty_target / max(1, sum(weights))))
        io = [uniform] * n
    floor = sum(2 * w for w in weights)
    if penalty_target < floor:
        raise CalibrationError(
            f"penalty target {penalty_target} below the 2-terminal-per-core "
            f"floor {floor}"
        )
    _repair_weighted_sum(io, weights, penalty_target, minimum=2)
    return io


def calibrate(target: CalibrationTarget, hints: CalibrationHints) -> CalibrationResult:
    """Reconstruct one SOC from its published Table 4 aggregates."""
    n = target.cores
    if hints.pattern_counts is not None:
        patterns = list(hints.pattern_counts)
        if len(patterns) != n:
            raise CalibrationError(
                f"{target.soc}: {len(patterns)} pinned pattern counts for {n} cores"
            )
    else:
        patterns = generate_pattern_counts(n, hints.max_patterns, target.norm_stdev)
    t_max = max(patterns)
    if hints.top_patterns > t_max:
        raise CalibrationError("top_patterns must not exceed the core maximum")

    per_pattern_bits = target.tdv_opt_mono / t_max
    total_scan = round((per_pattern_bits - hints.chip_io) / 2)
    if total_scan <= 0:
        raise CalibrationError(
            f"{target.soc}: max_patterns {t_max} leaves no scan cells "
            f"(per-pattern bits {per_pattern_bits:.0f} vs chip I/O {hints.chip_io})"
        )

    strict_benefit = target.tdv_benefit - hints.chip_io * t_max
    if strict_benefit < 0:
        raise CalibrationError(f"{target.soc}: chip I/O {hints.chip_io} too large")
    scan = _allocate_scan(patterns, total_scan, strict_benefit, seed=hints.scan_seed)

    top_name = f"{target.soc}_top"
    core_names = [f"{target.soc}_core{i + 1}" for i in range(n)]
    penalty_for_cores = target.tdv_penalty - hints.top_patterns * hints.chip_io
    # The top's ISOCOST includes every child's terminals (Eq. 5), so each
    # core's io enters the total with weight t_i + t_top.
    io = _allocate_io(
        patterns, scan, penalty_for_cores, hints.top_patterns, seed=hints.io_seed
    )

    cores = [
        Core(
            name=top_name,
            inputs=hints.chip_io // 2,
            outputs=hints.chip_io - hints.chip_io // 2,
            scan_cells=0,
            patterns=hints.top_patterns,
            children=core_names,
        )
    ]
    for i in range(n):
        cores.append(
            Core(
                name=core_names[i],
                inputs=io[i] // 2,
                outputs=io[i] - io[i] // 2,
                scan_cells=scan[i],
                patterns=patterns[i],
            )
        )
    soc = Soc(target.soc, cores, top=top_name)
    return CalibrationResult(
        soc=soc, target=target, relative_errors=_relative_errors(soc, target)
    )


def _relative_errors(soc: Soc, target: CalibrationTarget) -> Dict[str, float]:
    summary = summarize(soc)
    achieved_stdev = normalized_stdev(
        [core.patterns for core in soc if core.name != soc.top_name]
    )
    return {
        "tdv_opt_mono": _rel(summary.tdv_monolithic, target.tdv_opt_mono),
        "tdv_penalty": _rel(summary.tdv_penalty, target.tdv_penalty),
        "tdv_benefit": _rel(summary.tdv_benefit, target.tdv_benefit),
        "tdv_modular": _rel(summary.tdv_modular, target.tdv_modular),
        "norm_stdev": _rel(achieved_stdev, target.norm_stdev),
    }


def _rel(achieved: float, target: float) -> float:
    return (achieved - target) / target if target else 0.0


_MAX_PATTERN_CANDIDATES = [
    100, 150, 234, 300, 452, 700, 1_000, 1_314, 1_500, 2_200, 3_300, 5_000,
    7_500, 10_000, 15_000, 22_000, 33_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000,
]
_CHIP_IO_CANDIDATES = [64, 128, 256]


def auto_hints(
    target: CalibrationTarget,
    stdev_tolerance: float = 0.02,
    aggregate_tolerance: float = 5e-4,
) -> CalibrationHints:
    """Search the hint grid for the best-matching reconstruction.

    Tries every (max_patterns, chip_io) candidate pair, runs the full
    solver, and keeps the pair with the smallest worst-case aggregate
    error among those whose achieved normalized stdev rounds to the
    published value.  Deterministic; raises if nothing fits.

    The score covers the optimistic monolithic volume, the penalty, and
    the benefit only: the modular volume is then pinned by the exact
    decomposition identity, so its achieved error simply reflects any
    inconsistency of the published row itself (p22810's printed modular
    volume is off by exactly 600,000 from its own opt/penalty/benefit
    columns — see DESIGN.md).
    """
    best: Optional[CalibrationHints] = None
    best_error = math.inf
    for max_patterns in _MAX_PATTERN_CANDIDATES:
        for chip_io in _CHIP_IO_CANDIDATES:
            hints = CalibrationHints(max_patterns=max_patterns, chip_io=chip_io)
            try:
                result = calibrate(target, hints)
            except CalibrationError:
                continue
            if abs(result.relative_errors["norm_stdev"]) * target.norm_stdev > stdev_tolerance:
                continue
            if not _plausible(result):
                continue
            error = max(
                abs(result.relative_errors[key])
                for key in ("tdv_opt_mono", "tdv_penalty", "tdv_benefit")
            )
            if error < best_error:
                best_error = error
                best = hints
    if best is None or best_error > aggregate_tolerance:
        raise CalibrationError(
            f"{target.soc}: no hint candidate within tolerance "
            f"(best worst-case error {best_error:.2e})"
        )
    return best


# Plausibility caps for reconstructed cores, in the spirit of the real
# ITC'02 designs (the largest genuine core has ~25k scan cells; no core
# has more than a few thousand terminals).  Without these, an
# aggregate-optimal reconstruction of a586710 puts 10^8 scan cells on
# one core instead of the paper-described "small core ... tested with an
# extremely large number of patterns".
_MAX_CORE_SCAN_CELLS = 200_000
_MAX_CORE_TERMINALS = 20_000


def _plausible(result: CalibrationResult) -> bool:
    for core in result.soc:
        if core.scan_cells > _MAX_CORE_SCAN_CELLS:
            return False
        if core.io_terminals > _MAX_CORE_TERMINALS:
            return False
    return True
