"""Published numbers from the paper, verbatim, for paper-vs-measured checks.

Everything here is transcribed from Sinanoglu & Marinissen, DATE 2008:
Tables 1–4 plus the Section 3 worked example.  These constants are the
*targets* of the reproduction — the library never computes from them
except in the calibrated-reconstruction solver, which synthesizes core
data matching the Table 4 aggregates for the SOCs whose original ITC'02
files are unavailable offline (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Table4Row:
    """One row of Table 4 (ITC'02 SOC comparison)."""

    soc: str
    cores: int  # functional cores (excluding the top level)
    norm_stdev: float  # normalized sample stdev of core pattern counts
    tdv_opt_mono: int
    tdv_penalty: int
    penalty_percent: float  # vs tdv_opt_mono; positive = overhead
    tdv_benefit: int
    benefit_percent: float  # vs tdv_opt_mono; negative = reduction
    tdv_modular: int
    modular_percent: float  # change vs tdv_opt_mono; negative = reduction


TABLE4: List[Table4Row] = [
    Table4Row("d695", 10, 0.70, 2_987_712, 164_894, +5.5,
              1_935_953, -64.8, 1_216_653, -59.3),
    Table4Row("h953", 8, 0.92, 3_176_074, 147_298, +4.6,
              1_121_480, -35.3, 2_201_892, -30.7),
    Table4Row("f2126", 4, 0.68, 11_812_624, 400_418, +3.4,
              1_982_992, -16.8, 10_230_050, -13.4),
    Table4Row("g1023", 14, 1.05, 828_120, 233_207, +28.2,
              479_124, -57.9, 582_203, -29.7),
    Table4Row("g12710", 4, 0.18, 34_140_348, 16_223_802, +47.5,
              3_036_376, -8.9, 47_327_774, +38.6),
    Table4Row("p22810", 28, 2.72, 612_736_956, 2_657_286, +0.4,
              601_177_672, -98.1, 13_616_570, -97.7),
    Table4Row("p34392", 19, 1.29, 522_738_000, 4_991_278, +9.5,
              499_191_248, -95.5, 28_538_030, -86.0),
    Table4Row("p93791", 32, 1.79, 1_101_977_712, 5_451_526, +0.5,
              1_060_719_663, -96.3, 46_709_575, -95.8),
    Table4Row("t512505", 31, 0.93, 459_196_200, 4_293_188, +0.9,
              136_793_570, -29.8, 326_695_818, -28.9),
    Table4Row("a586710", 7, 1.95, 144_302_301_808, 728_526_992, +0.5,
              144_080_555_088, -99.8, 950_273_712, -99.3),
]

TABLE4_BY_NAME: Dict[str, Table4Row] = {row.soc: row for row in TABLE4}

TABLE4_AVERAGE_PENALTY_PERCENT = +10.1
TABLE4_AVERAGE_BENEFIT_PERCENT = -60.3
TABLE4_AVERAGE_MODULAR_PERCENT = -50.2

# The four g12710 core pattern counts the paper quotes in Section 5.2.
G12710_PATTERN_COUNTS: Tuple[int, int, int, int] = (852, 1314, 1223, 1223)


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3 (per-core computation for p34392)."""

    core: str
    embeds: Tuple[str, ...]
    inputs: int
    outputs: int
    bidirs: int
    scan_cells: int
    patterns: int
    tdv: int


TABLE3_P34392: List[Table3Row] = [
    Table3Row("0", ("1", "2", "18"), 32, 27, 114, 0, 27, 39_069),
    Table3Row("1", (), 15, 94, 0, 806, 210, 361_410),
    Table3Row("2", ("3", "4", "5", "6", "7", "8", "9"), 165, 263, 0, 8_856, 514, 9_521_850),
    Table3Row("3", (), 37, 25, 0, 0, 3_108, 192_696),
    Table3Row("4", (), 38, 25, 0, 0, 6_180, 389_340),
    Table3Row("5", (), 62, 25, 0, 0, 12_336, 1_073_232),
    Table3Row("6", (), 11, 8, 0, 0, 1_965, 37_335),
    Table3Row("7", (), 9, 8, 0, 0, 512, 8_704),
    Table3Row("8", (), 46, 17, 0, 0, 9_930, 625_590),
    Table3Row("9", (), 41, 33, 0, 0, 228, 16_872),
    Table3Row("10", ("11", "12", "13", "14", "15", "16", "17"), 129, 207, 0, 4_827, 454, 4_559_068),
    Table3Row("11", (), 23, 8, 0, 0, 9_285, 287_835),
    Table3Row("12", (), 7, 4, 0, 0, 173, 1_903),
    Table3Row("13", (), 12, 16, 0, 0, 2_560, 71_680),
    Table3Row("14", (), 11, 8, 0, 0, 432, 8_208),
    Table3Row("15", (), 22, 8, 0, 0, 4_440, 133_200),
    Table3Row("16", (), 7, 7, 0, 0, 128, 1_792),
    Table3Row("17", (), 15, 4, 0, 0, 786, 14_934),
    Table3Row("18", ("19",), 175, 212, 0, 6_555, 745, 10_120_080),
    Table3Row("19", (), 62, 25, 0, 0, 12_336, 1_073_232),
]

TABLE3_SOC_TDV = 28_538_030

# Rows of Table 3 whose published TDV does not satisfy Eq. 4/5 applied to
# the row's own published parameters (see DESIGN.md, "Known internal
# inconsistencies"): core 0 (published 39,069; Eq. 4/5 gives 27 x 1211 =
# 32,697 with the listed embeds) and core 10 (published 4,559,068;
# Eq. 4/5 gives 454 x 10,142 = 4,604,468).
TABLE3_INCONSISTENT_CORES: Tuple[str, ...] = ("0", "10")


@dataclass(frozen=True)
class Table12Row:
    """One row of Table 1 or 2 (ISCAS'89-based SOC experiments)."""

    core: str
    circuit: Optional[str]
    inputs: int
    outputs: int
    scan_cells: int
    patterns: int
    tdv: int


TABLE1_SOC1: List[Table12Row] = [
    Table12Row("Core 1", "s713", 35, 23, 19, 52, 4_992),
    Table12Row("Core 2", "s953", 16, 23, 29, 85, 8_245),
    Table12Row("Core 3", "s1423", 17, 5, 74, 62, 10_540),
    Table12Row("Core 4", "s1423", 17, 5, 74, 62, 10_540),
    Table12Row("Core 5", "s1423", 17, 5, 74, 62, 10_540),
    Table12Row("Core 0", None, 51, 10, 0, 2, 326),
]
TABLE1_SOC_TDV = 45_183
TABLE1_MONO_PATTERNS = 216
TABLE1_MONO_TDV = 129_816
TABLE1_MONO_OPT_TDV = 51_085
TABLE1_PENALTY = 10_627
TABLE1_BENEFIT = 95_260
TABLE1_REDUCTION_RATIO = 2.87
TABLE1_PESSIMISTIC_RATIO = 1.13

TABLE2_SOC2: List[Table12Row] = [
    Table12Row("Core 1", "s953", 16, 23, 29, 85, 8_245),
    Table12Row("Core 2", "s5378", 35, 49, 179, 244, 107_848),
    Table12Row("Core 3", "s13207", 31, 121, 669, 452, 673_480),
    Table12Row("Core 4", "s15850", 14, 87, 597, 428, 554_260),
    Table12Row("Core 0", None, 14, 198, 0, 2, 752),
]
TABLE2_SOC_TDV = 1_344_585
TABLE2_MONO_PATTERNS = 945
TABLE2_MONO_TDV = 2_986_200
TABLE2_MONO_OPT_TDV = 1_428_320
TABLE2_PENALTY = 97_701
TABLE2_BENEFIT = 1_739_316
TABLE2_REDUCTION_RATIO = 2.22
TABLE2_PESSIMISTIC_RATIO = 1.06

# Section 3 worked example (Figures 1-2): cones A/B/C with 20/10/20 scan
# flip-flops and 200/300/400 partial patterns.
CONE_EXAMPLE_FLIP_FLOPS: Tuple[int, int, int] = (20, 10, 20)
CONE_EXAMPLE_PATTERNS: Tuple[int, int, int] = (200, 300, 400)
CONE_EXAMPLE_MONOLITHIC_BITS = 20_000
CONE_EXAMPLE_MODULAR_BITS = 15_000
CONE_EXAMPLE_REDUCTION_PERCENT = 25.0
