"""Statistics tying TDV reduction to pattern-count variation.

Section 5.2 of the paper observes that the TDV reduction of modular
testing "is correlated to the normalized standard deviation of core
pattern counts" (Table 4, column 3), with g12710 (norm. stdev 0.18, the
only SOC where modular testing *loses*) and a586710 (1.95, a 99.3%
reduction) as the two extremes.  This module computes those statistics
plus the "pessimism factor" of Tables 1–2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..soc.model import Soc
from .tdv import TdvSummary, summarize


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float], ddof: int = 1) -> float:
    """Standard deviation with ``ddof`` delta degrees of freedom.

    Cross-checking Table 4 against the known d695 and g12710 pattern
    counts shows the paper used the *sample* standard deviation
    (``ddof=1``): g12710's counts (852, 1314, 1223, 1223) give 0.178
    with ``ddof=1`` (the paper rounds to 0.18) versus 0.154 with
    ``ddof=0``.
    """
    if len(values) <= ddof:
        raise ValueError(f"need more than {ddof} values for stdev with ddof={ddof}")
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / (len(values) - ddof))


def normalized_stdev(values: Sequence[float], ddof: int = 1) -> float:
    """Standard deviation divided by the mean (coefficient of variation).

    This is the paper's Table 4 column 3, computed over the pattern
    counts of an SOC's cores.
    """
    mu = mean(values)
    if mu == 0:
        raise ValueError("normalized stdev undefined for zero-mean values")
    return stdev(values, ddof=ddof) / mu


def pattern_count_variation(soc: Soc, include_top: bool = False, ddof: int = 1) -> float:
    """Normalized stdev of an SOC's core pattern counts.

    Table 4's "Cores" column and its variation statistic cover the
    functional cores only, so the default excludes the top-level glue
    core; pass ``include_top=True`` to keep it.
    """
    counts = [
        core.patterns
        for core in soc
        if include_top or core.name != soc.top_name
    ]
    if len(counts) <= ddof:
        return 0.0  # a single core has no pattern-count variation
    return normalized_stdev(counts, ddof=ddof)


def pessimism_factor(actual_monolithic_patterns: int, soc: Soc) -> float:
    """How far the Eq. 2 bound understates the real monolithic pattern count.

    Tables 1–2 report this indirectly: the actual/optimistic monolithic
    TDV ratio is 129K/51K ≈ 2.5x for SOC1 and 2.98M/1.43M ≈ 2.1x for
    SOC2.  Since both volumes share the per-pattern bit width, the ratio
    equals the pattern-count ratio computed here.
    """
    bound = soc.max_core_patterns
    if bound == 0:
        raise ValueError("SOC has no test patterns; pessimism factor undefined")
    if actual_monolithic_patterns < bound:
        raise ValueError(
            f"actual monolithic pattern count {actual_monolithic_patterns} "
            f"violates the Eq. 2 lower bound {bound}"
        )
    return actual_monolithic_patterns / bound


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("correlation needs at least two points")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("correlation undefined for a constant series")
    # Clamp float noise so perfectly correlated series return exactly +/-1.
    return max(-1.0, min(1.0, cov / math.sqrt(vx * vy)))


@dataclass(frozen=True)
class SocAnalysis:
    """One SOC's row in a Table-4-style comparison."""

    summary: TdvSummary
    pattern_variation: float

    @property
    def reduction_percent(self) -> float:
        """Percent TDV change of modular vs monolithic (negative = reduction)."""
        return 100.0 * self.summary.modular_change_fraction


def analyze(soc: Soc) -> SocAnalysis:
    """Summarize one SOC under the Table-4 conventions (optimistic T_mono)."""
    return SocAnalysis(
        summary=summarize(soc),
        pattern_variation=pattern_count_variation(soc),
    )


def reduction_variation_correlation(socs: Sequence[Soc]) -> float:
    """Correlation between pattern-count variation and TDV reduction.

    Reduction is taken as ``-modular_change_fraction`` so a positive
    correlation means "more variation, more reduction" — the paper's
    Section 5.2 observation.
    """
    analyses = [analyze(soc) for soc in socs]
    variations = [a.pattern_variation for a in analyses]
    reductions = [-a.summary.modular_change_fraction for a in analyses]
    return pearson_correlation(variations, reductions)


def rank_by_reduction(socs: Sequence[Soc]) -> List[SocAnalysis]:
    """SOCs ordered from largest TDV reduction to smallest."""
    return sorted(
        (analyze(soc) for soc in socs),
        key=lambda a: a.summary.modular_change_fraction,
    )
