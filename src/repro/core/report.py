"""Plain-text table rendering in the layouts of the paper's Tables 1–4."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..soc.hierarchy import core_tdv
from ..soc.model import Soc
from .analysis import SocAnalysis, analyze
from .tdv import (
    monolithic_pattern_lower_bound,
    tdv_modular,
    tdv_monolithic,
    tdv_monolithic_optimistic,
)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as an aligned plain-text table.

    ``aligns`` is one of ``"l"``/``"r"`` per column; numeric-looking
    columns default to right alignment.
    """
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if aligns is None:
        aligns = ["l"] + ["r"] * (len(headers) - 1)
    lines = [
        "  ".join(_pad(header, widths[i], "l") for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(_pad(cell, widths[i], aligns[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def _pad(text: str, width: int, align: str) -> str:
    return text.rjust(width) if align == "r" else text.ljust(width)


def percent(fraction: float, signed: bool = True) -> str:
    """Format a fraction as a Table-4-style percentage string."""
    value = 100.0 * fraction
    return f"{value:+.1f}%" if signed else f"{value:.1f}%"


def soc_table(
    soc: Soc,
    actual_monolithic_patterns: Optional[int] = None,
) -> str:
    """Render a Table-1/2-style per-core TDV comparison for one SOC.

    One row per core (I, O, S, T, TDV), an SOC total, and — when the
    measured flattened-ATPG pattern count is supplied — "Mono" and
    "Mono opt" rows plus the penalty/benefit footer of Tables 1–2.
    """
    rows: List[List[object]] = []
    for core in soc:
        rows.append(
            [core.name, core.inputs, core.outputs, core.scan_cells, core.patterns,
             core_tdv(soc, core.name)]
        )
    rows.append(["SOC", "", "", "", "", tdv_modular(soc)])
    top = soc.top
    bound = monolithic_pattern_lower_bound(soc)
    if actual_monolithic_patterns is not None:
        rows.append(
            ["Mono", top.inputs, top.outputs, soc.total_scan_cells,
             actual_monolithic_patterns,
             tdv_monolithic(soc, actual_monolithic_patterns)]
        )
    rows.append(
        ["Mono opt", top.inputs, top.outputs, soc.total_scan_cells, bound,
         tdv_monolithic_optimistic(soc)]
    )
    return format_table(["Core", "I", "O", "S", "T", "TDV"], rows)


def hierarchy_table(soc: Soc) -> str:
    """Render a Table-3-style per-core computation for a hierarchical SOC."""
    rows = []
    for core in soc:
        embeds = ",".join(core.children) if core.children else "-"
        rows.append(
            [core.name, embeds, core.inputs, core.outputs, core.bidirs,
             core.scan_cells, core.patterns, core_tdv(soc, core.name)]
        )
    rows.append(["SOC", "", "", "", "", "", "", tdv_modular(soc)])
    return format_table(
        ["Core", "Embeds", "I", "O", "B", "S", "T", "TDV"], rows
    )


def comparison_table(socs: Sequence[Soc]) -> str:
    """Render a Table-4-style cross-SOC comparison."""
    rows = []
    for soc in socs:
        rows.append(_comparison_row(analyze(soc)))
    return format_table(
        ["SOC", "Cores", "Norm.STDEV", "TDVopt_mono", "TDVpenalty", "TDVbenefit",
         "TDVmodular", "Change"],
        rows,
    )


def _comparison_row(analysis: SocAnalysis) -> List[object]:
    summary = analysis.summary
    return [
        summary.soc_name,
        summary.core_count - 1,  # Table 4 counts functional cores, not the top
        round(analysis.pattern_variation, 2),
        summary.tdv_monolithic,
        f"{summary.tdv_penalty:,} = {percent(summary.penalty_fraction)}",
        f"{summary.tdv_benefit:,} = {percent(-summary.benefit_fraction)}",
        summary.tdv_modular,
        percent(summary.modular_change_fraction),
    ]


def paper_vs_measured_table(
    rows: Sequence[Sequence[object]],
    value_label: str = "Value",
) -> str:
    """Render (name, paper value, measured value) triples with % deltas."""
    table_rows = []
    for name, paper, measured in rows:
        if paper:
            delta = percent((measured - paper) / paper)
        else:
            delta = "n/a"
        table_rows.append([name, paper, measured, delta])
    return format_table(
        ["Quantity", f"Paper {value_label}", f"Measured {value_label}", "Delta"],
        table_rows,
    )
