"""Test data volume (TDV) model — Equations 1 through 8 of the paper.

The paper compares two ways of testing the same SOC:

* **Monolithic**: the design is flattened (isolation logic ripped out)
  and tested with one SOC-wide ATPG pattern set.  Every pattern carries a
  stimulus/response bit for every chip terminal and every scan cell
  (Eq. 1), and the pattern count is at least the maximum stand-alone
  pattern count over the cores (Eq. 2), which yields the *optimistic*
  monolithic volume of Eq. 3.
* **Modular**: every core is wrapped and tested stand-alone; each core's
  test pays its own scan bits plus the wrapper isolation cost (Eq. 4/5).

Equations 6–8 decompose the modular volume as the monolithic volume plus
an isolation *penalty* minus a pattern-count-variation *benefit*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..soc.hierarchy import core_tdv, isocost
from ..soc.model import Soc


def tdv_monolithic(soc: Soc, patterns: int) -> int:
    """Monolithic test data volume, Eq. 1.

    ``TDV_mono = (I_chip + O_chip + 2 B_chip + 2 S_chip) * T_mono``

    ``patterns`` is the pattern count of the flattened design's ATPG run
    (``T_mono``); it must satisfy the Eq. 2 lower bound, which the caller
    can check with :func:`monolithic_pattern_lower_bound`.
    """
    if patterns < 0:
        raise ValueError(f"monolithic pattern count must be >= 0, got {patterns}")
    return (soc.chip_io_terminals + 2 * soc.total_scan_cells) * patterns


def monolithic_pattern_lower_bound(soc: Soc) -> int:
    """Eq. 2: ``T_mono >= max_i T_i`` over all cores."""
    return soc.max_core_patterns


def tdv_monolithic_optimistic(soc: Soc) -> int:
    """Optimistic monolithic test data volume, Eq. 3.

    Uses the Eq. 2 lower bound as the monolithic pattern count.  The true
    monolithic volume is at least this large (the paper measures factors
    of 2.1x–2.5x more on its ATPG-backed SOCs).
    """
    return tdv_monolithic(soc, monolithic_pattern_lower_bound(soc))


def tdv_modular(soc: Soc, chip_pin_wrappers: bool = True) -> int:
    """Modular test data volume, Eq. 4.

    ``TDV_modular = sum_P T_P * (2 S_P + ISOCOST_P)``

    ``chip_pin_wrappers`` selects the top-core isolation convention; see
    :func:`repro.soc.hierarchy.isocost`.
    """
    return sum(core_tdv(soc, core.name, chip_pin_wrappers) for core in soc)


def tdv_modular_breakdown(soc: Soc, chip_pin_wrappers: bool = True) -> Dict[str, int]:
    """Per-core test data volume (the rightmost column of Tables 1–3)."""
    return {core.name: core_tdv(soc, core.name, chip_pin_wrappers) for core in soc}


def tdv_penalty(soc: Soc, chip_pin_wrappers: bool = True) -> int:
    """Isolation penalty of modular testing, Eq. 7.

    ``TDV_penalty = sum_A T_A * ISOCOST_A`` — the wrapper-cell bits that
    the monolithic test of the flattened design does not pay.
    """
    return sum(
        core.patterns * isocost(soc, core.name, chip_pin_wrappers) for core in soc
    )


def tdv_benefit(soc: Soc, monolithic_patterns: Optional[int] = None) -> int:
    """Pattern-count-variation benefit of modular testing, Eq. 8.

    ``TDV_benefit = sum_A (T_mono - T_A) * 2 S_A`` — the scan-load bits
    that the monolithic test wastes on cores whose stand-alone test needs
    fewer patterns than ``T_mono``.  With the Eq. 2 bound, every summand
    is non-negative.

    ``monolithic_patterns`` defaults to the Eq. 2 lower bound.
    """
    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    if t_mono < monolithic_pattern_lower_bound(soc):
        raise ValueError(
            f"monolithic pattern count {t_mono} violates the Eq. 2 lower bound "
            f"{monolithic_pattern_lower_bound(soc)}"
        )
    return sum((t_mono - core.patterns) * core.scan_bits_per_pattern for core in soc)


def chip_io_residual(soc: Soc, monolithic_patterns: Optional[int] = None) -> int:
    """The exact residual of the paper's Eq. 6 identity.

    Substituting Eqs. 1, 4, 7 and 8 shows

    ``TDV_mono + TDV_penalty - TDV_benefit
      = TDV_modular + (I_chip + O_chip + 2 B_chip) * T_mono``

    i.e. Eq. 6 over-counts the chip-level terminal bits, which both test
    styles pay per pattern.  The paper's Table 4 "benefit" column is
    identity-derived and therefore silently includes this term; see
    :mod:`repro.core.decomposition`.
    """
    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    return soc.chip_io_terminals * t_mono


@dataclass(frozen=True)
class TdvSummary:
    """All Section-4 quantities for one SOC, in one immutable record."""

    soc_name: str
    core_count: int
    monolithic_patterns: int
    tdv_monolithic: int
    tdv_modular: int
    tdv_penalty: int
    tdv_benefit: int
    chip_io_residual: int

    @property
    def reduction_ratio(self) -> float:
        """Monolithic over modular volume (2.87 for SOC1, 2.22 for SOC2)."""
        if self.tdv_modular == 0:
            raise ZeroDivisionError("modular TDV is zero")
        return self.tdv_monolithic / self.tdv_modular

    @property
    def modular_change_fraction(self) -> float:
        """Signed relative change of modular vs monolithic TDV.

        Negative values are reductions; this is the last column of
        Table 4 (e.g. -0.993 for a586710, +0.386 for g12710).
        """
        if self.tdv_monolithic == 0:
            raise ZeroDivisionError("monolithic TDV is zero")
        return (self.tdv_modular - self.tdv_monolithic) / self.tdv_monolithic

    @property
    def penalty_fraction(self) -> float:
        """Penalty relative to monolithic TDV (Table 4, column 5)."""
        return self.tdv_penalty / self.tdv_monolithic

    @property
    def benefit_fraction(self) -> float:
        """Benefit relative to monolithic TDV (Table 4, column 6)."""
        return self.tdv_benefit / self.tdv_monolithic


def summarize(
    soc: Soc,
    monolithic_patterns: Optional[int] = None,
    identity_consistent_benefit: bool = True,
    chip_pin_wrappers: bool = True,
) -> TdvSummary:
    """Compute every Section-4 quantity for one SOC.

    ``monolithic_patterns`` defaults to the optimistic Eq. 2 bound, which
    is what Table 4 uses; pass a measured ATPG count to reproduce the
    Tables 1–2 "Mono" rows.

    ``identity_consistent_benefit`` selects between the paper's Table 4
    convention (benefit derived from the Eq. 6 identity, i.e. including
    the chip-I/O residual) and the strict Eq. 8 value.
    """
    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    benefit = tdv_benefit(soc, t_mono)
    residual = chip_io_residual(soc, t_mono)
    if identity_consistent_benefit:
        benefit += residual
    return TdvSummary(
        soc_name=soc.name,
        core_count=len(soc),
        monolithic_patterns=t_mono,
        tdv_monolithic=tdv_monolithic(soc, t_mono),
        tdv_modular=tdv_modular(soc, chip_pin_wrappers),
        tdv_penalty=tdv_penalty(soc, chip_pin_wrappers),
        tdv_benefit=benefit,
        chip_io_residual=residual,
    )
