"""JSON serialization of analysis results and SOC descriptions.

Machine-readable output for pipelines: every analysis dataclass gets a
plain-dict form, SOCs round-trip through JSON, and experiment tables can
be dumped for external plotting.  The schema is flat and stable — field
names match the dataclasses.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..soc.model import Core, Soc
from .analysis import SocAnalysis, analyze
from .decomposition import Decomposition, decompose
from .tdv import TdvSummary, summarize

SCHEMA_VERSION = 1


def soc_to_dict(soc: Soc) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "name": soc.name,
        "top": soc.top_name,
        "cores": [
            {
                "name": core.name,
                "inputs": core.inputs,
                "outputs": core.outputs,
                "bidirs": core.bidirs,
                "scan_cells": core.scan_cells,
                "patterns": core.patterns,
                "children": list(core.children),
            }
            for core in soc
        ],
    }


def soc_from_dict(data: Dict[str, Any]) -> Soc:
    cores = [
        Core(
            name=entry["name"],
            inputs=entry.get("inputs", 0),
            outputs=entry.get("outputs", 0),
            bidirs=entry.get("bidirs", 0),
            scan_cells=entry.get("scan_cells", 0),
            patterns=entry.get("patterns", 0),
            children=list(entry.get("children", [])),
        )
        for entry in data["cores"]
    ]
    return Soc(data["name"], cores, top=data.get("top"))


def summary_to_dict(summary: TdvSummary) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "soc": summary.soc_name,
        "core_count": summary.core_count,
        "monolithic_patterns": summary.monolithic_patterns,
        "tdv_monolithic": summary.tdv_monolithic,
        "tdv_modular": summary.tdv_modular,
        "tdv_penalty": summary.tdv_penalty,
        "tdv_benefit": summary.tdv_benefit,
        "chip_io_residual": summary.chip_io_residual,
        "modular_change_fraction": summary.modular_change_fraction,
        "reduction_ratio": summary.reduction_ratio,
    }


def decomposition_to_dict(decomposition: Decomposition) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "soc": decomposition.soc_name,
        "monolithic_patterns": decomposition.monolithic_patterns,
        "tdv_monolithic": decomposition.tdv_monolithic,
        "tdv_modular": decomposition.tdv_modular,
        "penalty": decomposition.penalty,
        "benefit_strict": decomposition.benefit_strict,
        "benefit_identity": decomposition.benefit_identity,
        "residual": decomposition.residual,
        "per_core": [
            {
                "core": entry.core_name,
                "patterns": entry.patterns,
                "scan_cells": entry.scan_cells,
                "isocost": entry.isocost,
                "penalty": entry.penalty,
                "benefit": entry.benefit,
                "modular_tdv": entry.modular_tdv,
            }
            for entry in decomposition.per_core
        ],
    }


def analysis_report(
    soc: Soc, monolithic_patterns: Optional[int] = None
) -> Dict[str, Any]:
    """The full analysis of one SOC as one JSON-ready dict."""
    summary = summarize(soc, monolithic_patterns=monolithic_patterns)
    decomposition = decompose(soc, monolithic_patterns=monolithic_patterns)
    analysis: SocAnalysis = analyze(soc)
    return {
        "schema": SCHEMA_VERSION,
        "soc": soc_to_dict(soc),
        "summary": summary_to_dict(summary),
        "decomposition": decomposition_to_dict(decomposition),
        "pattern_variation": analysis.pattern_variation,
    }


def table4_report(results: List) -> Dict[str, Any]:
    """The Table 4 reproduction (list of Table4Result) as a dict."""
    rows = []
    for result in results:
        rows.append({
            "soc": result.soc.name,
            "cores": len(result.soc) - 1,
            "norm_stdev": result.variation,
            "measured": summary_to_dict(result.summary),
            "published": {
                "norm_stdev": result.published.norm_stdev,
                "tdv_opt_mono": result.published.tdv_opt_mono,
                "tdv_penalty": result.published.tdv_penalty,
                "tdv_benefit": result.published.tdv_benefit,
                "tdv_modular": result.published.tdv_modular,
                "modular_percent": result.published.modular_percent,
            },
        })
    return {"schema": SCHEMA_VERSION, "table4": rows}


def dumps(data: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(data, indent=indent, sort_keys=True)


def loads_soc(text: str) -> Soc:
    return soc_from_dict(json.loads(text))


# -- ATPG results -------------------------------------------------------------
#
# The runtime cache (repro.runtime.cache) persists AtpgResult values on
# disk through these converters.  Pattern assignments are keyed by
# compiled net id — deterministic for a given netlist, so they survive
# the round-trip as long as the cache key covers the netlist content
# (it does: see repro.runtime.cache.netlist_fingerprint).  The atpg
# imports are function-local: repro.core is imported by the top-level
# package and must stay independent of the ATPG stack at module scope.


def test_pattern_to_dict(pattern) -> Dict[str, Any]:
    """One TestPattern as {net id (str): 0/1}; unlisted inputs are X."""
    return {str(net_id): value for net_id, value in pattern.assignments.items()}


def test_pattern_from_dict(data: Dict[str, Any]):
    from ..atpg.patterns import TestPattern

    return TestPattern({int(net_id): value for net_id, value in data.items()})


def test_set_to_dict(test_set) -> Dict[str, Any]:
    return {
        "circuit": test_set.circuit_name,
        "patterns": [test_pattern_to_dict(p) for p in test_set.patterns],
    }


def test_set_from_dict(data: Dict[str, Any]):
    from ..atpg.patterns import TestSet

    return TestSet(
        circuit_name=data["circuit"],
        patterns=[test_pattern_from_dict(p) for p in data["patterns"]],
    )


def fault_to_dict(fault) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"net": fault.net, "stuck_at": fault.stuck_at}
    if fault.gate_index is not None:
        entry["gate_index"] = fault.gate_index
        entry["pin"] = fault.pin
    return entry


def fault_from_dict(data: Dict[str, Any]):
    from ..atpg.faults import Fault

    return Fault(
        net=data["net"],
        stuck_at=data["stuck_at"],
        gate_index=data.get("gate_index"),
        pin=data.get("pin"),
    )


def atpg_result_to_dict(result) -> Dict[str, Any]:
    """One AtpgResult as a JSON-ready dict (schema-versioned)."""
    return {
        "schema": SCHEMA_VERSION,
        "circuit": result.circuit_name,
        "test_set": test_set_to_dict(result.test_set),
        "fault_count": result.fault_count,
        "detected_count": result.detected_count,
        "untestable": [fault_to_dict(f) for f in result.untestable],
        "aborted": [fault_to_dict(f) for f in result.aborted],
        "random_pattern_count": result.random_pattern_count,
        "deterministic_pattern_count": result.deterministic_pattern_count,
        "pre_compaction_count": result.pre_compaction_count,
    }


def atpg_result_from_dict(data: Dict[str, Any]):
    from ..atpg.engine import AtpgResult

    return AtpgResult(
        circuit_name=data["circuit"],
        test_set=test_set_from_dict(data["test_set"]),
        fault_count=data["fault_count"],
        detected_count=data["detected_count"],
        untestable=[fault_from_dict(f) for f in data["untestable"]],
        aborted=[fault_from_dict(f) for f in data["aborted"]],
        random_pattern_count=data["random_pattern_count"],
        deterministic_pattern_count=data["deterministic_pattern_count"],
        pre_compaction_count=data["pre_compaction_count"],
    )
