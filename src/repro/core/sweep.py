"""Design-space sweeps over the TDV model.

The paper's conclusions generalize beyond its ten benchmark SOCs: the
modular-testing benefit grows with pattern-count variation and shrinks
with wrapper overhead.  These sweeps chart that design space with
synthetic SOC families, which backs the correlation figure and the
ablation benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..soc.model import Core, Soc
from .analysis import SocAnalysis, analyze


@dataclass(frozen=True)
class SweepPoint:
    """One synthetic SOC evaluated at one sweep setting."""

    parameter: float
    analysis: SocAnalysis


def synthetic_soc(
    name: str,
    core_count: int,
    mean_patterns: int,
    pattern_spread: float,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    chip_io: int = 128,
    seed: int = 0,
) -> Soc:
    """Build a flat synthetic SOC with controlled pattern-count spread.

    Pattern counts are drawn (deterministically, from ``seed``) from a
    log-uniform-ish family whose normalized stdev grows monotonically
    with ``pattern_spread`` in [0, ~3].  Spread 0 gives identical counts
    (the g12710 regime); large spreads give a586710-like skew where one
    core dominates.
    """
    if core_count < 1:
        raise ValueError("core_count must be >= 1")
    if mean_patterns < 1:
        raise ValueError("mean_patterns must be >= 1")
    if pattern_spread < 0:
        raise ValueError("pattern_spread must be >= 0")
    rng = random.Random(seed)
    cores = [
        Core(
            name=f"{name}_top",
            inputs=chip_io // 2,
            outputs=chip_io - chip_io // 2,
            scan_cells=0,
            patterns=1,
            children=[f"{name}_core{i}" for i in range(core_count)],
        )
    ]
    for i in range(core_count):
        factor = rng.lognormvariate(0.0, pattern_spread) if pattern_spread else 1.0
        patterns = max(1, round(mean_patterns * factor))
        cores.append(
            Core(
                name=f"{name}_core{i}",
                inputs=io_per_core // 2,
                outputs=io_per_core - io_per_core // 2,
                scan_cells=scan_cells_per_core,
                patterns=patterns,
            )
        )
    return Soc(name, cores, top=cores[0].name)


def sweep_pattern_variation(
    spreads: Sequence[float],
    core_count: int = 10,
    mean_patterns: int = 200,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    seed: int = 0,
) -> List[SweepPoint]:
    """TDV reduction as a function of pattern-count spread.

    Reproduces, on a controlled family, the Table-4 observation that
    reduction tracks the normalized stdev of pattern counts.
    """
    points = []
    for spread in spreads:
        soc = synthetic_soc(
            name=f"sweep_spread_{spread:g}",
            core_count=core_count,
            mean_patterns=mean_patterns,
            pattern_spread=spread,
            scan_cells_per_core=scan_cells_per_core,
            io_per_core=io_per_core,
            seed=seed,
        )
        points.append(SweepPoint(parameter=spread, analysis=analyze(soc)))
    return points


def sweep_wrapper_overhead(
    io_per_core_values: Sequence[int],
    core_count: int = 10,
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    scan_cells_per_core: int = 500,
    seed: int = 0,
) -> List[SweepPoint]:
    """TDV reduction as a function of per-core wrapper-cell count.

    Charts the g12710 failure mode: when core I/O terminals rival scan
    cells, the isolation penalty can overwhelm the benefit.
    """
    points = []
    for io_per_core in io_per_core_values:
        soc = synthetic_soc(
            name=f"sweep_io_{io_per_core}",
            core_count=core_count,
            mean_patterns=mean_patterns,
            pattern_spread=pattern_spread,
            scan_cells_per_core=scan_cells_per_core,
            io_per_core=io_per_core,
            seed=seed,
        )
        points.append(SweepPoint(parameter=float(io_per_core), analysis=analyze(soc)))
    return points


def sweep_core_count(
    core_counts: Sequence[int],
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    seed: int = 0,
) -> List[SweepPoint]:
    """TDV reduction as a function of partitioning granularity.

    Section 3 notes that treating every cone as a core would minimize
    waste but is unrealistic due to wrapper overhead; this sweep shows
    the trade-off as granularity increases with total scan count fixed.
    """
    points = []
    for count in core_counts:
        if count < 1:
            raise ValueError("core counts must be >= 1")
        soc = synthetic_soc(
            name=f"sweep_cores_{count}",
            core_count=count,
            mean_patterns=mean_patterns,
            pattern_spread=pattern_spread,
            scan_cells_per_core=max(1, scan_cells_per_core * 10 // count),
            io_per_core=io_per_core,
            seed=seed,
        )
        points.append(SweepPoint(parameter=float(count), analysis=analyze(soc)))
    return points


def synthetic_hierarchical_soc(
    name: str,
    depth: int,
    fanout: int = 2,
    scan_cells_per_core: int = 400,
    io_per_core: int = 48,
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    chip_io: int = 128,
    seed: int = 0,
) -> Soc:
    """A complete ``fanout``-ary embedding tree of the given depth.

    Every core (internal and leaf) carries scan and a test; parents pay
    Eq. 5's child-terminal ExTest surcharge, so ISOCOST grows with
    fanout — the hierarchy axis of the design space (p34932-style
    structures, depth 2 in the ITC'02 suite).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    rng = random.Random(seed)

    def patterns() -> int:
        if pattern_spread == 0:
            return mean_patterns
        return max(1, round(mean_patterns * rng.lognormvariate(0.0, pattern_spread)))

    cores: List[Core] = []
    counter = [0]

    def build(level: int) -> str:
        counter[0] += 1
        core_name = f"{name}_n{counter[0]}"
        children = [build(level + 1) for _ in range(fanout)] if level < depth else []
        cores.append(
            Core(
                name=core_name,
                inputs=io_per_core // 2,
                outputs=io_per_core - io_per_core // 2,
                scan_cells=scan_cells_per_core,
                patterns=patterns(),
                children=children,
            )
        )
        return core_name

    roots = [build(1)]
    cores.append(
        Core(
            name=f"{name}_top",
            inputs=chip_io // 2,
            outputs=chip_io - chip_io // 2,
            scan_cells=0,
            patterns=1,
            children=roots,
        )
    )
    return Soc(name, list(reversed(cores)), top=f"{name}_top")


def sweep_hierarchy_depth(
    depths: Sequence[int],
    fanout: int = 2,
    seed: int = 0,
) -> List[SweepPoint]:
    """TDV behaviour as the embedding tree deepens at fixed core size.

    Deeper trees mean more hierarchical parents paying child-terminal
    ExTest costs, raising the penalty share — the hierarchical analogue
    of the wrapper-overhead sweep.
    """
    points = []
    for depth in depths:
        soc = synthetic_hierarchical_soc(
            name=f"hier_d{depth}", depth=depth, fanout=fanout, seed=seed
        )
        points.append(SweepPoint(parameter=float(depth), analysis=analyze(soc)))
    return points


def crossover_spread(
    low: float = 0.0,
    high: float = 3.0,
    tolerance: float = 1e-3,
    soc_factory: Optional[Callable[[float], Soc]] = None,
) -> float:
    """Pattern spread at which modular testing breaks even.

    Bisects the spread axis for the point where the modular change
    fraction crosses zero (penalty == benefit).  Below the returned
    spread the synthetic family behaves like g12710 (modular loses);
    above it modular wins.  Raises if the family does not bracket a
    crossover in [low, high].
    """
    if soc_factory is None:
        def soc_factory(spread: float) -> Soc:
            return synthetic_soc(
                name="crossover",
                core_count=10,
                mean_patterns=200,
                pattern_spread=spread,
                scan_cells_per_core=40,
                io_per_core=96,
                seed=7,
            )

    def change(spread: float) -> float:
        return analyze(soc_factory(spread)).summary.modular_change_fraction

    lo, hi = low, high
    f_lo, f_hi = change(lo), change(hi)
    if f_lo * f_hi > 0:
        raise ValueError(
            f"no crossover in [{low}, {high}]: change({low})={f_lo:.4f}, "
            f"change({high})={f_hi:.4f}"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if change(mid) * f_lo > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
