"""Design-space sweeps over the TDV model.

The paper's conclusions generalize beyond its ten benchmark SOCs: the
modular-testing benefit grows with pattern-count variation and shrinks
with wrapper overhead.  These sweeps chart that design space with
synthetic SOC families, which backs the correlation figure and the
ablation benches.

Since PR 6 the sweeps themselves are *declarative*: each ``sweep_*``
helper builds a :class:`~repro.sweeps.spec.SweepSpec` (one grid axis
plus the family's fixed knobs) and evaluates it through the generic
:class:`~repro.sweeps.engine.SweepEngine`, which is where worker
fan-out, chaos/retry policy, and per-shard checkpoint/resume live.
The helpers keep their historical signatures and return the exact same
:class:`SweepPoint` lists as before; pass ``runtime=`` to inherit a
:class:`~repro.runtime.session.Runtime`'s execution policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..soc.model import Core, Soc
from ..sweeps import Axis, SweepEngine, SweepPointSpec, SweepSpec, derive_seed
from .analysis import SocAnalysis, analyze
from .tdv import TdvSummary


@dataclass(frozen=True)
class SweepPoint:
    """One synthetic SOC evaluated at one sweep setting."""

    parameter: float
    analysis: SocAnalysis


def _pattern_factor(rng: random.Random, pattern_spread: float) -> float:
    return rng.lognormvariate(0.0, pattern_spread) if pattern_spread else 1.0


def synthetic_soc(
    name: str,
    core_count: int,
    mean_patterns: int,
    pattern_spread: float,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    chip_io: int = 128,
    seed: int = 0,
    core_seed_streams: bool = False,
) -> Soc:
    """Build a flat synthetic SOC with controlled pattern-count spread.

    Pattern counts are drawn (deterministically, from ``seed``) from a
    log-uniform-ish family whose normalized stdev grows monotonically
    with ``pattern_spread`` in [0, ~3].  Spread 0 gives identical counts
    (the g12710 regime); large spreads give a586710-like skew where one
    core dominates.

    ``core_seed_streams=False`` (the default) draws every core's factor
    from one sequential RNG — the historical behavior, kept so existing
    fingerprints and tables stay byte-identical.  ``True`` derives an
    independent stream per core index (:func:`~repro.sweeps.derive_seed`),
    so core ``i``'s pattern count no longer depends on how many cores
    precede it or on evaluation order — the contract population-scale
    sweeps rely on.
    """
    if core_count < 1:
        raise ValueError("core_count must be >= 1")
    if mean_patterns < 1:
        raise ValueError("mean_patterns must be >= 1")
    if pattern_spread < 0:
        raise ValueError("pattern_spread must be >= 0")
    shared_rng = random.Random(seed)
    cores = [
        Core(
            name=f"{name}_top",
            inputs=chip_io // 2,
            outputs=chip_io - chip_io // 2,
            scan_cells=0,
            patterns=1,
            children=[f"{name}_core{i}" for i in range(core_count)],
        )
    ]
    for i in range(core_count):
        rng = (
            random.Random(derive_seed(seed, "core", i))
            if core_seed_streams
            else shared_rng
        )
        patterns = max(1, round(mean_patterns * _pattern_factor(rng, pattern_spread)))
        cores.append(
            Core(
                name=f"{name}_core{i}",
                inputs=io_per_core // 2,
                outputs=io_per_core - io_per_core // 2,
                scan_cells=scan_cells_per_core,
                patterns=patterns,
            )
        )
    return Soc(name, cores, top=cores[0].name)


# -- record plumbing ---------------------------------------------------------
#
# The engine journals and aggregates plain JSON records; a SweepPoint's
# analysis round-trips through one losslessly (every field is an int or
# a repr-exact float), so resumed sweeps are bit-identical to fresh ones.

_SUMMARY_FIELDS = (
    "soc_name", "core_count", "monolithic_patterns", "tdv_monolithic",
    "tdv_modular", "tdv_penalty", "tdv_benefit", "chip_io_residual",
)


def analysis_record(parameter: Any, soc: Soc) -> Dict[str, Any]:
    """Analyze one synthetic SOC into the engine's record form."""
    analysis = analyze(soc)
    record: Dict[str, Any] = {
        "parameter": parameter,
        "pattern_variation": analysis.pattern_variation,
    }
    for field in _SUMMARY_FIELDS:
        record[field] = getattr(analysis.summary, field)
    return record


def point_from_record(record: Mapping[str, Any]) -> SweepPoint:
    """Rehydrate an :func:`analysis_record` into a :class:`SweepPoint`."""
    summary = TdvSummary(**{field: record[field] for field in _SUMMARY_FIELDS})
    return SweepPoint(
        parameter=record["parameter"],
        analysis=SocAnalysis(
            summary=summary, pattern_variation=record["pattern_variation"]
        ),
    )


def _run_family(
    spec: SweepSpec,
    evaluate: Callable[[SweepPointSpec], Dict[str, Any]],
    runtime: Optional[Any],
) -> List[SweepPoint]:
    records = SweepEngine(runtime).run(spec, evaluate, collect=True).records
    return [point_from_record(record) for record in records]


# -- pattern-count variation -------------------------------------------------

def pattern_variation_spec(
    spreads: Sequence[float],
    core_count: int = 10,
    mean_patterns: int = 200,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    seed: int = 0,
) -> SweepSpec:
    """The controlled family behind the Table-4 correlation claim."""
    return SweepSpec(
        name="pattern_variation",
        axes=(Axis.grid("spread", spreads),),
        seed=seed,
        constants={
            "core_count": core_count,
            "mean_patterns": mean_patterns,
            "scan_cells_per_core": scan_cells_per_core,
            "io_per_core": io_per_core,
            "seed": seed,
        },
    )


def _evaluate_pattern_variation(point: SweepPointSpec) -> Dict[str, Any]:
    params = point.params
    spread = params["spread"]
    soc = synthetic_soc(
        name=f"sweep_spread_{spread:g}",
        core_count=params["core_count"],
        mean_patterns=params["mean_patterns"],
        pattern_spread=spread,
        scan_cells_per_core=params["scan_cells_per_core"],
        io_per_core=params["io_per_core"],
        seed=params["seed"],
    )
    return analysis_record(spread, soc)


def sweep_pattern_variation(
    spreads: Sequence[float],
    core_count: int = 10,
    mean_patterns: int = 200,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    seed: int = 0,
    runtime: Optional[Any] = None,
) -> List[SweepPoint]:
    """TDV reduction as a function of pattern-count spread.

    Reproduces, on a controlled family, the Table-4 observation that
    reduction tracks the normalized stdev of pattern counts.
    """
    spec = pattern_variation_spec(
        spreads,
        core_count=core_count,
        mean_patterns=mean_patterns,
        scan_cells_per_core=scan_cells_per_core,
        io_per_core=io_per_core,
        seed=seed,
    )
    return _run_family(spec, _evaluate_pattern_variation, runtime)


# -- wrapper overhead --------------------------------------------------------

def wrapper_overhead_spec(
    io_per_core_values: Sequence[int],
    core_count: int = 10,
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    scan_cells_per_core: int = 500,
    seed: int = 0,
) -> SweepSpec:
    """Per-core terminal count as the swept axis (g12710's regime)."""
    return SweepSpec(
        name="wrapper_overhead",
        axes=(Axis.grid("io_per_core", io_per_core_values),),
        seed=seed,
        constants={
            "core_count": core_count,
            "mean_patterns": mean_patterns,
            "pattern_spread": pattern_spread,
            "scan_cells_per_core": scan_cells_per_core,
            "seed": seed,
        },
    )


def _evaluate_wrapper_overhead(point: SweepPointSpec) -> Dict[str, Any]:
    params = point.params
    io_per_core = params["io_per_core"]
    soc = synthetic_soc(
        name=f"sweep_io_{io_per_core}",
        core_count=params["core_count"],
        mean_patterns=params["mean_patterns"],
        pattern_spread=params["pattern_spread"],
        scan_cells_per_core=params["scan_cells_per_core"],
        io_per_core=io_per_core,
        seed=params["seed"],
    )
    return analysis_record(float(io_per_core), soc)


def sweep_wrapper_overhead(
    io_per_core_values: Sequence[int],
    core_count: int = 10,
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    scan_cells_per_core: int = 500,
    seed: int = 0,
    runtime: Optional[Any] = None,
) -> List[SweepPoint]:
    """TDV reduction as a function of per-core wrapper-cell count.

    Charts the g12710 failure mode: when core I/O terminals rival scan
    cells, the isolation penalty can overwhelm the benefit.
    """
    spec = wrapper_overhead_spec(
        io_per_core_values,
        core_count=core_count,
        mean_patterns=mean_patterns,
        pattern_spread=pattern_spread,
        scan_cells_per_core=scan_cells_per_core,
        seed=seed,
    )
    return _run_family(spec, _evaluate_wrapper_overhead, runtime)


# -- partitioning granularity ------------------------------------------------

def core_count_spec(
    core_counts: Sequence[int],
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    seed: int = 0,
) -> SweepSpec:
    """Granularity at fixed total scan: Section 3's partitioning axis."""
    for count in core_counts:
        if count < 1:
            raise ValueError("core counts must be >= 1")
    return SweepSpec(
        name="core_count",
        axes=(Axis.grid("core_count", core_counts),),
        seed=seed,
        constants={
            "mean_patterns": mean_patterns,
            "pattern_spread": pattern_spread,
            "scan_cells_per_core": scan_cells_per_core,
            "io_per_core": io_per_core,
            "seed": seed,
        },
    )


def _evaluate_core_count(point: SweepPointSpec) -> Dict[str, Any]:
    params = point.params
    count = params["core_count"]
    soc = synthetic_soc(
        name=f"sweep_cores_{count}",
        core_count=count,
        mean_patterns=params["mean_patterns"],
        pattern_spread=params["pattern_spread"],
        scan_cells_per_core=max(1, params["scan_cells_per_core"] * 10 // count),
        io_per_core=params["io_per_core"],
        seed=params["seed"],
    )
    return analysis_record(float(count), soc)


def sweep_core_count(
    core_counts: Sequence[int],
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    scan_cells_per_core: int = 500,
    io_per_core: int = 64,
    seed: int = 0,
    runtime: Optional[Any] = None,
) -> List[SweepPoint]:
    """TDV reduction as a function of partitioning granularity.

    Section 3 notes that treating every cone as a core would minimize
    waste but is unrealistic due to wrapper overhead; this sweep shows
    the trade-off as granularity increases with total scan count fixed.
    """
    spec = core_count_spec(
        core_counts,
        mean_patterns=mean_patterns,
        pattern_spread=pattern_spread,
        scan_cells_per_core=scan_cells_per_core,
        io_per_core=io_per_core,
        seed=seed,
    )
    return _run_family(spec, _evaluate_core_count, runtime)


# -- hierarchy ---------------------------------------------------------------

def synthetic_hierarchical_soc(
    name: str,
    depth: int,
    fanout: int = 2,
    scan_cells_per_core: int = 400,
    io_per_core: int = 48,
    mean_patterns: int = 200,
    pattern_spread: float = 1.0,
    chip_io: int = 128,
    seed: int = 0,
) -> Soc:
    """A complete ``fanout``-ary embedding tree of the given depth.

    Every core (internal and leaf) carries scan and a test; parents pay
    Eq. 5's child-terminal ExTest surcharge, so ISOCOST grows with
    fanout — the hierarchy axis of the design space (p34932-style
    structures, depth 2 in the ITC'02 suite).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    rng = random.Random(seed)

    def patterns() -> int:
        if pattern_spread == 0:
            return mean_patterns
        return max(1, round(mean_patterns * rng.lognormvariate(0.0, pattern_spread)))

    cores: List[Core] = []
    counter = [0]

    def build(level: int) -> str:
        counter[0] += 1
        core_name = f"{name}_n{counter[0]}"
        children = [build(level + 1) for _ in range(fanout)] if level < depth else []
        cores.append(
            Core(
                name=core_name,
                inputs=io_per_core // 2,
                outputs=io_per_core - io_per_core // 2,
                scan_cells=scan_cells_per_core,
                patterns=patterns(),
                children=children,
            )
        )
        return core_name

    roots = [build(1)]
    cores.append(
        Core(
            name=f"{name}_top",
            inputs=chip_io // 2,
            outputs=chip_io - chip_io // 2,
            scan_cells=0,
            patterns=1,
            children=roots,
        )
    )
    return Soc(name, list(reversed(cores)), top=f"{name}_top")


def hierarchy_depth_spec(
    depths: Sequence[int],
    fanout: int = 2,
    seed: int = 0,
) -> SweepSpec:
    """Embedding-tree depth as the swept axis."""
    return SweepSpec(
        name="hierarchy_depth",
        axes=(Axis.grid("depth", depths),),
        seed=seed,
        constants={"fanout": fanout, "seed": seed},
    )


def _evaluate_hierarchy_depth(point: SweepPointSpec) -> Dict[str, Any]:
    params = point.params
    depth = params["depth"]
    soc = synthetic_hierarchical_soc(
        name=f"hier_d{depth}",
        depth=depth,
        fanout=params["fanout"],
        seed=params["seed"],
    )
    return analysis_record(float(depth), soc)


def sweep_hierarchy_depth(
    depths: Sequence[int],
    fanout: int = 2,
    seed: int = 0,
    runtime: Optional[Any] = None,
) -> List[SweepPoint]:
    """TDV behaviour as the embedding tree deepens at fixed core size.

    Deeper trees mean more hierarchical parents paying child-terminal
    ExTest costs, raising the penalty share — the hierarchical analogue
    of the wrapper-overhead sweep.
    """
    return _run_family(
        hierarchy_depth_spec(depths, fanout=fanout, seed=seed),
        _evaluate_hierarchy_depth,
        runtime,
    )


# -- crossover search --------------------------------------------------------

def crossover_spread(
    low: float = 0.0,
    high: float = 3.0,
    tolerance: float = 1e-3,
    soc_factory: Optional[Callable[[float], Soc]] = None,
) -> float:
    """Pattern spread at which modular testing breaks even.

    Bisects the spread axis for the point where the modular change
    fraction crosses zero (penalty == benefit).  Below the returned
    spread the synthetic family behaves like g12710 (modular loses);
    above it modular wins.  Raises if the family does not bracket a
    crossover in [low, high].  (Bisection is inherently sequential, so
    this stays a direct computation rather than a sweep spec.)
    """
    if soc_factory is None:
        def soc_factory(spread: float) -> Soc:
            return synthetic_soc(
                name="crossover",
                core_count=10,
                mean_patterns=200,
                pattern_spread=spread,
                scan_cells_per_core=40,
                io_per_core=96,
                seed=7,
            )

    def change(spread: float) -> float:
        return analyze(soc_factory(spread)).summary.modular_change_fraction

    lo, hi = low, high
    f_lo, f_hi = change(lo), change(hi)
    if f_lo * f_hi > 0:
        raise ValueError(
            f"no crossover in [{low}, {high}]: change({low})={f_lo:.4f}, "
            f"change({high})={f_hi:.4f}"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if change(mid) * f_lo > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
