"""Minimal SVG chart writer (no plotting dependencies).

The reproduction runs in offline environments without matplotlib, yet
"regenerate the paper's figures" should mean figures: this module emits
clean standalone SVG scatter/line charts with axes, ticks and labels —
enough for the correlation figure and the sweep charts, nothing more.
Deterministic output (stable formatting) so generated figures can be
committed and diffed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

_COLORS = ("#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed")


@dataclass
class Series:
    """One named point set, drawn as markers and (optionally) a line."""

    name: str
    points: List[Tuple[float, float]]
    draw_line: bool = False
    labels: Optional[List[str]] = None  # per-point annotations

    def __post_init__(self) -> None:
        if self.labels is not None and len(self.labels) != len(self.points):
            raise ValueError(f"series {self.name!r}: labels/points mismatch")


@dataclass
class Chart:
    """A single-panel chart: series plus axis metadata."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    width: int = 640
    height: int = 420

    def add(self, series: Series) -> "Chart":
        self.series.append(series)
        return self


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    step = 10 ** math.floor(math.log10(span / max(1, count)))
    for multiplier in (1, 2, 5, 10):
        if span / (step * multiplier) <= count:
            step *= multiplier
            break
    start = math.floor(low / step) * step
    ticks = []
    tick = start
    while tick <= high + step / 2:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


def render_svg(chart: Chart) -> str:
    """Serialize a chart to a standalone SVG document."""
    if not chart.series or not any(s.points for s in chart.series):
        raise ValueError(f"chart {chart.title!r} has no points")
    margin_left, margin_right = 64, 24
    margin_top, margin_bottom = 40, 52
    plot_w = chart.width - margin_left - margin_right
    plot_h = chart.height - margin_top - margin_bottom

    xs = [x for s in chart.series for x, _ in s.points]
    ys = [y for s in chart.series for _, y in s.points]
    x_ticks = _nice_ticks(min(xs), max(xs))
    y_ticks = _nice_ticks(min(ys), max(ys))
    x_lo, x_hi = x_ticks[0], x_ticks[-1]
    y_lo, y_hi = y_ticks[0], y_ticks[-1]

    def sx(x: float) -> float:
        return margin_left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{chart.width}" '
        f'height="{chart.height}" viewBox="0 0 {chart.width} {chart.height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{chart.width}" height="{chart.height}" fill="white"/>',
        f'<text x="{chart.width / 2:.1f}" y="22" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_esc(chart.title)}</text>',
    ]
    # Axes frame and grid.
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444"/>'
    )
    for tick in x_ticks:
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 16}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in y_ticks:
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    parts.append(
        f'<text x="{margin_left + plot_w / 2:.1f}" y="{chart.height - 12}" '
        f'text-anchor="middle">{_esc(chart.x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_top + plot_h / 2:.1f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_top + plot_h / 2:.1f})">'
        f'{_esc(chart.y_label)}</text>'
    )
    # Series.
    for index, series in enumerate(chart.series):
        color = _COLORS[index % len(_COLORS)]
        scaled = [(sx(x), sy(y)) for x, y in series.points]
        if series.draw_line and len(scaled) > 1:
            path = " ".join(
                f"{'M' if k == 0 else 'L'}{x:.1f},{y:.1f}"
                for k, (x, y) in enumerate(scaled)
            )
            parts.append(
                f'<path d="{path}" fill="none" stroke="{color}" '
                f'stroke-width="1.5"/>'
            )
        for k, (x, y) in enumerate(scaled):
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>')
            if series.labels:
                parts.append(
                    f'<text x="{x + 5:.1f}" y="{y - 5:.1f}" font-size="10" '
                    f'fill="#333">{_esc(series.labels[k])}</text>'
                )
        # Legend entry.
        legend_y = margin_top + 14 + 16 * index
        parts.append(
            f'<circle cx="{margin_left + 12}" cy="{legend_y - 4}" r="4" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{margin_left + 22}" y="{legend_y}">'
            f'{_esc(series.name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _fmt(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:g}"


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def save_svg(path: Union[str, Path], chart: Chart) -> Path:
    path = Path(path)
    path.write_text(render_svg(chart))
    return path
