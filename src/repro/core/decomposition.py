"""Penalty/benefit decomposition of modular TDV (Eq. 6) and its residual.

The paper writes ``TDV_modular = TDV_mono + TDV_penalty - TDV_benefit``
(Eq. 6).  Expanding Eqs. 1, 4, 7 and 8 shows the identity is exact only
up to the chip-level terminal bits, ``(I_chip + O_chip + 2B_chip) * T_mono``,
which both test styles pay per pattern.  Table 4 of the paper derives its
benefit column from the identity (so the residual is folded into the
benefit); Eq. 8 computed literally gives a slightly smaller benefit.
This module exposes both conventions and the exact residual so that every
table of the paper can be reproduced under its own convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..soc.hierarchy import isocost
from ..soc.model import Soc
from .tdv import (
    chip_io_residual,
    monolithic_pattern_lower_bound,
    tdv_benefit,
    tdv_modular,
    tdv_monolithic,
    tdv_penalty,
)


@dataclass(frozen=True)
class CoreDecomposition:
    """Per-core contribution to the Eq. 6 decomposition."""

    core_name: str
    patterns: int
    scan_cells: int
    isocost: int
    penalty: int  # T_A * ISOCOST_A          (Eq. 7 summand)
    benefit: int  # (T_mono - T_A) * 2 S_A   (Eq. 8 summand)
    modular_tdv: int  # T_A * (2 S_A + ISOCOST_A)  (Eq. 4 summand)


@dataclass(frozen=True)
class Decomposition:
    """Full Eq. 6 decomposition for one SOC, under both benefit conventions."""

    soc_name: str
    monolithic_patterns: int
    tdv_monolithic: int
    tdv_modular: int
    penalty: int
    benefit_strict: int  # Eq. 8 literally
    benefit_identity: int  # Eq. 8 plus the chip-I/O residual (Table 4 convention)
    residual: int  # (I_chip + O_chip + 2 B_chip) * T_mono
    per_core: List[CoreDecomposition]

    def identity_error(self) -> int:
        """Exact error of Eq. 6 with the *strict* benefit.

        ``TDV_mono + penalty - benefit_strict - TDV_modular`` — always
        equals :attr:`residual` (a property test pins this down).
        """
        return self.tdv_monolithic + self.penalty - self.benefit_strict - self.tdv_modular

    def identity_holds(self) -> bool:
        """True when Eq. 6 balances exactly under the identity convention."""
        return (
            self.tdv_monolithic + self.penalty - self.benefit_identity == self.tdv_modular
        )


def decompose(
    soc: Soc,
    monolithic_patterns: Optional[int] = None,
    chip_pin_wrappers: bool = True,
) -> Decomposition:
    """Compute the full Eq. 6 decomposition for one SOC.

    ``chip_pin_wrappers`` selects the top-core isolation convention of
    :func:`repro.soc.hierarchy.isocost`.  The identity residual is the
    same under both conventions: dropping the chip-terminal wrapper cells
    lowers the penalty and the modular volume by the same
    ``T_top * (I+O+2B)_top`` bits, so :meth:`Decomposition.identity_error`
    still equals :attr:`Decomposition.residual` exactly.
    """
    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    per_core = []
    for core in soc:
        iso = isocost(soc, core.name, chip_pin_wrappers)
        per_core.append(
            CoreDecomposition(
                core_name=core.name,
                patterns=core.patterns,
                scan_cells=core.scan_cells,
                isocost=iso,
                penalty=core.patterns * iso,
                benefit=(t_mono - core.patterns) * core.scan_bits_per_pattern,
                modular_tdv=core.patterns * (core.scan_bits_per_pattern + iso),
            )
        )
    strict = tdv_benefit(soc, t_mono)
    residual = chip_io_residual(soc, t_mono)
    return Decomposition(
        soc_name=soc.name,
        monolithic_patterns=t_mono,
        tdv_monolithic=tdv_monolithic(soc, t_mono),
        tdv_modular=tdv_modular(soc, chip_pin_wrappers),
        penalty=tdv_penalty(soc, chip_pin_wrappers),
        benefit_strict=strict,
        benefit_identity=strict + residual,
        residual=residual,
        per_core=per_core,
    )


def penalty_by_core(soc: Soc, chip_pin_wrappers: bool = True) -> Dict[str, int]:
    """Eq. 7 summands keyed by core name."""
    return {
        core.name: core.patterns * isocost(soc, core.name, chip_pin_wrappers)
        for core in soc
    }


def benefit_by_core(soc: Soc, monolithic_patterns: Optional[int] = None) -> Dict[str, int]:
    """Eq. 8 summands keyed by core name."""
    t_mono = (
        monolithic_pattern_lower_bound(soc)
        if monolithic_patterns is None
        else monolithic_patterns
    )
    return {
        core.name: (t_mono - core.patterns) * core.scan_bits_per_pattern for core in soc
    }
