"""Nested-span tracing with counters, and the process-global default.

Two tracer types share one duck-typed interface:

* :class:`Tracer` records :class:`SpanRecord` values (name, depth,
  monotonic start offset, duration, attributes) plus named counters and
  gauges, and can ``export()`` itself to a plain-JSON dict — the form
  that crosses process boundaries and lands in sinks.
* :class:`NullTracer` is the process-global default: ``span()`` hands
  back one shared no-op context manager and ``count``/``gauge`` do
  nothing, so instrumented hot paths cost two attribute lookups when
  tracing is off.  Code that would pay more than that (snapshotting
  kernel stats, building attribute dicts) guards on ``tracer.enabled``.

The active tracer is process-global state (``get_tracer`` /
``set_tracer`` / the ``use_tracer`` context manager), not a parameter
threaded through every call — the ATPG kernels sit many layers below
the runtime and must stay signature-stable.  Worker processes build
their own :class:`Tracer`, export it, and the parent ``merge()``\\ s the
result: child spans keep their child-relative clock (only durations are
comparable across processes) and are grafted below the parent's current
depth with any attributes the parent adds to the root (e.g. the job
name).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

TracerLike = Union["Tracer", "NullTracer"]


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    name: str
    depth: int
    start: float  # seconds since the owning tracer's epoch
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            depth=data["depth"],
            start=data["start"],
            duration=data["duration"],
            attrs=dict(data.get("attrs") or {}),
        )


class _NullSpan:
    """The shared no-op span context; also what NullTracer.span returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer installed by default.

    Instrumentation calls stay in place at zero observable cost:
    ``span()`` returns one shared no-op context manager, ``count`` and
    ``gauge`` discard their arguments, ``enabled`` is False so callers
    can skip any work beyond the call itself.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, /, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager opening one span on a real tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_record")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> SpanRecord:
        tracer = self._tracer
        record = SpanRecord(
            name=self._name,
            depth=tracer._depth,
            start=tracer._clock() - tracer.epoch,
            duration=0.0,
            attrs=self._attrs,
        )
        tracer.spans.append(record)
        tracer._depth += 1
        self._record = record
        return record

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        record = self._record
        record.duration = (tracer._clock() - tracer.epoch) - record.start
        if exc and exc[0] is not None:
            # A span that unwound on an exception (timeout, abort...)
            # keeps the evidence; clean exits add no attribute at all.
            record.attrs["status"] = exc[0].__name__
        tracer._depth -= 1
        return False


class Tracer:
    """Collects nested spans, counters and gauges for one run.

    Spans nest by call structure: ``depth`` is the number of open
    ancestors at entry, and records appear in entry order, so the list
    is a preorder traversal of the span tree.  Timing uses the
    monotonic ``time.perf_counter`` clock, offset from the tracer's
    creation (``epoch``).
    """

    enabled = True

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self.epoch = self._clock()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.sinks: List[Any] = []
        self._depth = 0

    # -- recording ------------------------------------------------------

    def span(self, name: str, /, **attrs) -> _SpanContext:
        """Open a nested span: ``with tracer.span("podem", core="s38417")``.

        ``name`` is positional-only so attributes may freely use any
        keyword — including ``name=`` itself.
        """
        return _SpanContext(self, name, attrs)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest sample."""
        self.gauges[name] = value

    # -- cross-process plumbing ----------------------------------------

    def export(self) -> Dict[str, Any]:
        """A plain-JSON snapshot: what crosses pickles and lands in sinks."""
        return {
            "spans": [span.to_dict() for span in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def merge(self, export: Dict[str, Any], **root_attrs) -> None:
        """Graft an exported (child-process) trace into this tracer.

        Child spans keep their child-relative start offsets — only
        durations are comparable across processes — and are re-based
        below this tracer's current depth.  ``root_attrs`` (e.g.
        ``job="s38417"``) are added to the child's root spans so merged
        trees stay attributable.  Counters add; gauges last-write-wins.
        """
        base_depth = self._depth
        for data in export.get("spans", ()):
            record = SpanRecord.from_dict(data)
            if record.depth == 0 and root_attrs:
                record.attrs = {**record.attrs, **root_attrs}
            record.depth += base_depth
            self.spans.append(record)
        for name, value in export.get("counters", {}).items():
            self.count(name, value)
        for name, value in export.get("gauges", {}).items():
            self.gauge(name, value)

    # -- output ---------------------------------------------------------

    def flush(self) -> None:
        """Write the trace to every attached sink and close them."""
        export = self.export()
        for sink in self.sinks:
            sink.write_trace(export)
            sink.close()

    def summary(self) -> str:
        """The human-readable per-run summary table."""
        from .sinks import summary_table

        return summary_table(self)


# -- the process-global active tracer ----------------------------------

_ACTIVE: TracerLike = NULL_TRACER


def get_tracer() -> TracerLike:
    """The active tracer (the shared :data:`NULL_TRACER` by default)."""
    return _ACTIVE


def set_tracer(tracer: Optional[TracerLike]) -> TracerLike:
    """Install ``tracer`` (None restores the null tracer); returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Optional[TracerLike]) -> Iterator[TracerLike]:
    """Scope ``tracer`` as the active tracer for a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)


def phase_breakdown(export: Dict[str, Any], depth: int = 1) -> Dict[str, float]:
    """Seconds per span name at ``depth`` of an exported trace.

    Depth 1 is the phase level of one engine run (the children of the
    root ``atpg`` span: random_phase, podem, compact, fill, verify) —
    the shape the :class:`~repro.runtime.executor.RunManifest` records
    per job.  Repeated names sum.
    """
    phases: Dict[str, float] = {}
    for span in export.get("spans", ()):
        if span["depth"] == depth:
            phases[span["name"]] = phases.get(span["name"], 0.0) + span["duration"]
    return phases
