"""Zero-dependency tracing and metrics for the whole execution stack.

The paper's headline numbers come out of many per-core ATPG runs whose
cost structure — random phase vs PODEM vs fault-simulation time, cache
hits, compaction effectiveness — was invisible beyond a single
wall-clock figure.  This package makes it observable without touching
what is computed:

``repro.observability.tracer``
    :class:`Tracer` — nested spans with monotonic-clock timing plus
    named counters/gauges; a process-global :class:`NullTracer` default
    keeps the hot path free when tracing is off; ``export()`` /
    ``merge()`` carry traces across process-pool workers.
``repro.observability.metrics``
    The typed counter/gauge registry.  Instrumented modules register
    their metric names (with kind and help text) at import time, so a
    summary can explain every number it prints.
``repro.observability.sinks``
    Structured outputs: a JSONL event-log writer, an in-memory
    collector for tests, and the human-readable per-run summary table.

The package deliberately imports nothing from the rest of ``repro`` —
it sits below :mod:`repro.runtime.config` so every layer (ATPG kernels,
runtime, experiments, CLIs, benchmarks) can instrument itself without
layering cycles.  Instrumentation only *reads* engine state; a traced
run is bit-identical to an untraced one
(``tests/test_observability.py`` enforces this differentially).
"""

from __future__ import annotations

from .metrics import Metric, registered_metrics, register_counter, register_gauge
from .sinks import JsonlSink, MemorySink, load_trace, summary_table
from .tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    phase_breakdown,
    set_tracer,
    use_tracer,
)

__all__ = [
    "JsonlSink",
    "MemorySink",
    "Metric",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "load_trace",
    "phase_breakdown",
    "register_counter",
    "register_gauge",
    "registered_metrics",
    "set_tracer",
    "summary_table",
    "use_tracer",
]
