"""Structured trace outputs: JSONL event log, test collector, summary table.

All sinks consume the exported-trace dict (``Tracer.export()``) and
share one flat event schema — each event is a dict with a ``type`` key:

``{"type": "meta", ...}``
    One header line per flushed trace (schema version, span count).
``{"type": "span", "name": ..., "depth": ..., "start": ..., "duration": ..., "attrs": {...}}``
    One line per span, in entry (preorder) order.
``{"type": "counter", "name": ..., "value": ...}``
``{"type": "gauge", "name": ..., "value": ...}``
    Final counter/gauge values at flush time.

The JSONL form is the on-disk interchange format (``--trace FILE``);
:func:`load_trace` reads it back into the same shape ``export()``
produced, so round-trips are lossless.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .metrics import metric_help

SCHEMA_VERSION = 1


def trace_events(export: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten an exported trace into the shared event-dict stream."""
    events: List[Dict[str, Any]] = [
        {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "spans": len(export.get("spans", ())),
        }
    ]
    for span in export.get("spans", ()):
        events.append({"type": "span", **span})
    for name, value in export.get("counters", {}).items():
        events.append({"type": "counter", "name": name, "value": value})
    for name, value in export.get("gauges", {}).items():
        events.append({"type": "gauge", "name": name, "value": value})
    return events


class JsonlSink:
    """Writes one JSON event per line to ``path``.

    ``append=True`` accumulates multiple traces in one file (each with
    its own ``meta`` header) — the benchmark harness uses this to stack
    per-benchmark traces.
    """

    def __init__(self, path: str, append: bool = False):
        self.path = str(path)
        self._file = open(self.path, "a" if append else "w", encoding="utf-8")

    def write(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")

    def write_trace(self, export: Dict[str, Any]) -> None:
        for event in trace_events(export):
            self.write(event)
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class MemorySink:
    """Collects events in memory — the test double for :class:`JsonlSink`."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.closed = False

    def write(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def write_trace(self, export: Dict[str, Any]) -> None:
        for event in trace_events(export):
            self.write(event)

    def close(self) -> None:
        self.closed = True


def load_trace(path: str) -> Dict[str, Any]:
    """Read a JSONL trace file back into exported-trace shape.

    Returns ``{"meta": [...], "spans": [...], "counters": {...},
    "gauges": {...}}``.  If the file holds several appended traces their
    spans concatenate, counters sum, and gauges last-write-win — the
    same semantics as ``Tracer.merge``.
    """
    meta: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.pop("type", None)
            if kind == "meta":
                meta.append(event)
            elif kind == "span":
                spans.append(event)
            elif kind == "counter":
                counters[event["name"]] = counters.get(event["name"], 0) + event["value"]
            elif kind == "gauge":
                gauges[event["name"]] = event["value"]
    return {"meta": meta, "spans": spans, "counters": counters, "gauges": gauges}


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def summary_table(tracer: Any) -> str:
    """The human-readable per-run summary (``--metrics`` output).

    Aggregates spans by name (call count, total seconds) and lists
    final counter/gauge values with their registered help text.
    """
    export = tracer.export() if hasattr(tracer, "export") else tracer
    lines: List[str] = []

    by_name: Dict[str, List[float]] = {}
    for span in export.get("spans", ()):
        stats = by_name.setdefault(span["name"], [0, 0.0])
        stats[0] += 1
        stats[1] += span["duration"]
    if by_name:
        lines.append("spans:")
        width = max(len(name) for name in by_name)
        for name, (calls, total) in sorted(
            by_name.items(), key=lambda item: -item[1][1]
        ):
            lines.append(f"  {name:<{width}}  {int(calls):>6} call(s)  {total:>10.3f}s")

    for kind, values in (("counters", export.get("counters", {})),
                         ("gauges", export.get("gauges", {}))):
        if not values:
            continue
        lines.append(f"{kind}:")
        width = max(len(name) for name in values)
        for name in sorted(values):
            help_text = metric_help(name)
            suffix = f"  # {help_text}" if help_text else ""
            lines.append(f"  {name:<{width}}  {_format_value(values[name]):>12}{suffix}")

    if not lines:
        return "(no telemetry recorded)"
    return "\n".join(lines)
