"""The typed counter/gauge registry.

Every instrumented module declares its metrics once, at import time::

    PATTERNS_RANDOM = register_counter(
        "atpg.patterns.random", "patterns kept by the random phase")

and then feeds values through the active tracer
(``tracer.count(PATTERNS_RANDOM, n)``).  Registration buys two things:
a single place that documents what each name means (the summary table
and the JSONL schema reference it), and a typo guard — counting into an
unregistered name is allowed (third parties may extend the namespace)
but re-registering a name with a different kind is an error.

Counters are monotonic sums (merging across worker processes adds
them); gauges are last-write-wins point samples (a utilization, a
ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

COUNTER = "counter"
GAUGE = "gauge"


@dataclass(frozen=True)
class Metric:
    """One registered metric: its wire name, kind, and meaning."""

    name: str
    kind: str  # COUNTER or GAUGE
    help: str


_REGISTRY: Dict[str, Metric] = {}


def _register(name: str, kind: str, help: str) -> str:
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {existing.kind}, "
                f"cannot re-register as a {kind}"
            )
        return name
    _REGISTRY[name] = Metric(name=name, kind=kind, help=help)
    return name


def register_counter(name: str, help: str) -> str:
    """Register a monotonic counter; returns ``name`` for direct use."""
    return _register(name, COUNTER, help)


def register_gauge(name: str, help: str) -> str:
    """Register a point-sample gauge; returns ``name`` for direct use."""
    return _register(name, GAUGE, help)


def registered_metrics() -> Dict[str, Metric]:
    """A snapshot of every registered metric, keyed by name."""
    return dict(_REGISTRY)


def metric_help(name: str) -> str:
    """The registered help text, or "" for ad-hoc names."""
    metric = _REGISTRY.get(name)
    return metric.help if metric is not None else ""
