"""Test patterns and test sets.

A pattern assigns 0/1/X to the (pseudo-)primary inputs of one circuit;
internally assignments are keyed by compiled net id.  A test pattern
with X bits is *partial* (PODEM output, compaction input); filling
replaces the X bits deterministically before fault simulation and
delivery, which is exactly the point where the paper's "don't care
dummy bits" become real shifted bits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .compiled import CompiledCircuit


@dataclass
class TestPattern:
    """One test pattern: input net id -> 0/1 (unlisted inputs are X)."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    assignments: Dict[int, int] = field(default_factory=dict)

    def specified_bits(self) -> int:
        """Number of care bits."""
        return len(self.assignments)

    def conflicts_with(self, other: "TestPattern") -> bool:
        """True when some input is assigned opposite values."""
        small, large = self.assignments, other.assignments
        if len(small) > len(large):
            small, large = large, small
        for net_id, value in small.items():
            other_value = large.get(net_id)
            if other_value is not None and other_value != value:
                return True
        return False

    def merged_with(self, other: "TestPattern") -> "TestPattern":
        """Union of two non-conflicting patterns."""
        merged = dict(self.assignments)
        merged.update(other.assignments)
        return TestPattern(merged)

    def filled(self, input_ids: Sequence[int], rng: random.Random) -> "TestPattern":
        """Replace X bits with random values over the given input list."""
        assignments = dict(self.assignments)
        if len(assignments) == len(input_ids):
            # Fully specified already: no X bits, no draws — the RNG
            # stream is untouched either way.
            return TestPattern(assignments)
        for net_id in input_ids:
            if net_id not in assignments:
                assignments[net_id] = rng.getrandbits(1)
        return TestPattern(assignments)

    def as_trits(self, input_ids: Sequence[int]) -> Dict[int, Optional[int]]:
        """The dict form the simulators consume (None for X)."""
        return {net_id: self.assignments.get(net_id) for net_id in input_ids}


@dataclass
class TestSet:
    """An ordered collection of patterns for one circuit."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    circuit_name: str
    patterns: List[TestPattern] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[TestPattern]:
        return iter(self.patterns)

    def add(self, pattern: TestPattern) -> None:
        self.patterns.append(pattern)

    def filled(self, circuit: CompiledCircuit, seed: int = 0) -> "TestSet":
        """Deterministically fill every X bit (one RNG for the whole set)."""
        rng = random.Random(seed)
        return TestSet(
            circuit_name=self.circuit_name,
            patterns=[p.filled(circuit.input_ids, rng) for p in self.patterns],
        )

    def as_trit_dicts(self, circuit: CompiledCircuit) -> List[Dict[int, Optional[int]]]:
        return [p.as_trits(circuit.input_ids) for p in self.patterns]

    def care_bit_fraction(self, circuit: CompiledCircuit) -> float:
        """Mean fraction of specified bits — the compaction headroom."""
        if not self.patterns:
            raise ValueError("empty test set")
        width = len(circuit.input_ids)
        return sum(p.specified_bits() for p in self.patterns) / (width * len(self.patterns))


def random_pattern(
    input_ids: Sequence[int], rng: random.Random
) -> TestPattern:
    """A fully specified random pattern."""
    return TestPattern({net_id: rng.getrandbits(1) for net_id in input_ids})


def random_pattern_rails(
    input_ids: Sequence[int],
    rng: random.Random,
    count: int,
    net_count: int,
) -> Tuple[List[int], List[int]]:
    """Draw ``count`` random patterns directly as packed dual rails.

    Returns flat ``(ones, zeros)`` lists sized for a whole circuit
    (``net_count`` entries), with bit ``k`` of input net ``n`` set in
    ``ones`` when pattern ``k`` drives ``n`` to 1 — exactly what
    ``pack_patterns_flat`` would produce for ``count`` successive
    :func:`random_pattern` calls, without materializing any per-pattern
    dict.

    RNG consumption contract: one ``rng.getrandbits(1)`` per
    (pattern, input) pair, patterns outermost, inputs in ``input_ids``
    order — bit-for-bit the order :func:`random_pattern` consumes, so a
    shared ``Random`` instance advances identically through either
    path.  ``tests/test_podem_kernel.py`` enforces both the rail
    equality and the post-draw RNG state.
    """
    ones = [0] * net_count
    zeros = [0] * net_count
    getrandbits = rng.getrandbits
    # Accumulate into a dense per-input list (a list comprehension
    # evaluates left to right, preserving the draw order) and scatter to
    # net ids once at the end — the comprehension is markedly faster
    # than per-draw indexed |= on the full-width rails.
    vals = [0] * len(input_ids)
    for bit in range(count):
        mask = 1 << bit
        vals = [v | mask if getrandbits(1) else v for v in vals]
    # Random patterns are fully specified, so the zeros rail is just the
    # complement of the ones rail over the batch width.
    full = (1 << count) - 1
    for net_id, value in zip(input_ids, vals):
        ones[net_id] = value
        zeros[net_id] = value ^ full
    return ones, zeros


def pattern_from_rails(
    input_ids: Sequence[int], ones: List[int], bit: int
) -> TestPattern:
    """Materialize packed pattern ``bit`` back into dict form.

    Only fully specified rails (every input bit set in exactly one
    rail) round-trip; the assignments dict lists inputs in ``input_ids``
    order, matching what :func:`random_pattern` builds.
    """
    mask = 1 << bit
    return TestPattern(
        {net_id: 1 if ones[net_id] & mask else 0 for net_id in input_ids}
    )
