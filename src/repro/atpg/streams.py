"""Versioned pattern-stream epochs: how random pattern bits are drawn.

Stream **1** is the legacy sequential draw order: one
``random.Random(seed).getrandbits(1)`` per (pattern, input) pair,
patterns outermost (:func:`repro.atpg.patterns.random_pattern_rails`).
That stream is frozen forever — every committed table, cached result,
and fingerprint depends on its exact bit sequence — but it is also a
sequential bottleneck: pattern *i* cannot be drawn without consuming
the ``i * inputs`` draws before it.

Stream **2** is a *counter-based* generator: every bit is a pure
function of ``(seed, pattern_index, input_position)`` through a
splitmix64-style mixer, so any pattern — or any 64-pattern block of
rails — can be produced independently, in any order, on any worker,
with bulk array ops.  That order-freedom is what lets the engine draw
whole wide blocks as numpy array math and fault-shard the deterministic
phase without perturbing a single bit.

Two key-domain constants keep the draw and X-fill streams disjoint:

* ``DOMAIN_DRAW`` words are *rail-oriented* — ``stream_word(seed,
  block, pos)`` packs bit ``i % 64`` of input ``pos`` for the 64
  patterns of ``block = i // 64`` — because the random phase consumes
  packed rails.
* ``DOMAIN_FILL`` words are *pattern-oriented* — ``stream_word(seed,
  pattern_index, word)`` covers inputs ``64*word .. 64*word+63`` of one
  pattern — because X-fill touches a handful of sparse patterns.

Both backends (pure Python and numpy) produce bit-identical words; the
numpy path merely vectorizes the mixer over whole blocks.  The stream
epoch is part of a run's identity (``AtpgConfig.stream`` enters the
fingerprint for stream != 1), so results from different epochs can
never collide in the cache.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .compiled import CompiledCircuit
from .patterns import TestPattern, TestSet

_M64 = (1 << 64) - 1

# splitmix64 finalizer constants (Steele et al.; public domain).
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
# Weyl / golden-ratio increment, reused here as a seed salt so the
# all-zero key (seed 0, block 0, pos 0) never mixes to the degenerate
# zero word.
_SALT = 0x9E3779B97F4A7C15

# Odd multipliers keying the counter coordinates into the 64-bit state.
# Any odd constants work (the finalizer does the scrambling); these are
# fixed forever — changing one would be a new stream epoch.
_K_SEED = 0xD6E8FEB86659FD93
_K_BLOCK = 0xA5A3D31D4D3D8F2F
_K_POS = 0xC2B2AE3D27D4EB4F
_K_DOMAIN = 0x165667B19E3779F9

#: Key domain for the random phase's packed draw words (rail-oriented).
DOMAIN_DRAW = 0
#: Key domain for deterministic X-fill words (pattern-oriented).
DOMAIN_FILL = 1


def _mix(x: int) -> int:
    """The splitmix64 finalizer over a 64-bit state."""
    x = (x ^ (x >> 30)) * _MIX_1 & _M64
    x = (x ^ (x >> 27)) * _MIX_2 & _M64
    return (x ^ (x >> 31)) & _M64


def _key(seed: int, block: int, pos: int, domain: int) -> int:
    """The 64-bit mixer input for one (seed, block, pos, domain) cell."""
    return (
        (seed * _K_SEED + _SALT)
        ^ (block * _K_BLOCK)
        ^ (pos * _K_POS)
        ^ (domain * _K_DOMAIN)
    ) & _M64


def stream_word(seed: int, block: int, pos: int, domain: int = DOMAIN_DRAW) -> int:
    """One 64-bit stream word — a pure function of its four coordinates.

    For ``DOMAIN_DRAW``, bit ``k`` of the word is the value input
    ``pos`` takes in pattern ``64 * block + k``.  For ``DOMAIN_FILL``,
    bit ``k`` is the fill value of input ``64 * pos + k`` in pattern
    ``block``.
    """
    return _mix(_key(seed, block, pos, domain))


def stream_bit(seed: int, pattern_index: int, pos: int) -> int:
    """The draw-domain bit of one (pattern, input) cell.

    The single-bit spelling of the stream-2 contract — property tests
    check the packed rails against this reference point by point.
    """
    word = stream_word(seed, pattern_index >> 6, pos, DOMAIN_DRAW)
    return (word >> (pattern_index & 63)) & 1


def _stream_words_numpy(
    seed: int, blocks: int, first_block: int, positions: int, domain: int
):
    """The (positions, blocks) word matrix as one vectorized mixer pass.

    Returns None when numpy is masked or unavailable; otherwise a
    ``numpy.uint64`` array whose rows are input positions and columns
    are successive 64-pattern blocks — bit-identical to
    :func:`stream_word` cell by cell (uint64 arithmetic wraps exactly
    like the ``& _M64`` reductions).
    """
    from .backends import numpy_available

    if not numpy_available():
        return None
    import numpy as np

    with np.errstate(over="ignore"):
        base = np.uint64(((seed * _K_SEED + _SALT) ^ (domain * _K_DOMAIN)) & _M64)
        block_keys = (
            np.arange(first_block, first_block + blocks, dtype=np.uint64)
            * np.uint64(_K_BLOCK)
        )
        pos_keys = np.arange(positions, dtype=np.uint64) * np.uint64(_K_POS)
        x = np.bitwise_xor.outer(pos_keys, block_keys)
        x ^= base
        x ^= x >> np.uint64(30)
        x *= np.uint64(_MIX_1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_MIX_2)
        x ^= x >> np.uint64(31)
    return x


def stream_rails(
    input_ids: Sequence[int],
    seed: int,
    start: int,
    count: int,
    net_count: int,
) -> Tuple[List[int], List[int]]:
    """Packed dual rails for stream-2 patterns ``start .. start+count-1``.

    The counter-based analogue of
    :func:`repro.atpg.patterns.random_pattern_rails`: flat ``(ones,
    zeros)`` lists sized for the whole circuit, fully specified (zeros
    is the complement of ones over the batch width).  ``start`` and
    ``count`` must be multiples of 64 so the window tiles whole stream
    words; any 64-aligned windowing of the pattern axis yields the same
    bits for the same pattern index — the order-independence the
    fault-parallel engine relies on.
    """
    if start % 64 or count % 64:
        raise ValueError(
            f"stream-2 windows must be 64-aligned, got start={start} count={count}"
        )
    ones = [0] * net_count
    zeros = [0] * net_count
    if not count:
        return ones, zeros
    first_block = start >> 6
    blocks = count >> 6
    full = (1 << count) - 1
    matrix = _stream_words_numpy(seed, blocks, first_block, len(input_ids), DOMAIN_DRAW)
    if matrix is not None:
        # Row-major little-endian bytes: word b of row p lands in bits
        # 64*b .. 64*b+63 — the same concatenation the pure loop builds.
        rows = matrix.tobytes()
        row_bytes = 8 * blocks
        from_bytes = int.from_bytes
        for row, net_id in enumerate(input_ids):
            value = from_bytes(rows[row * row_bytes:(row + 1) * row_bytes], "little")
            ones[net_id] = value
            zeros[net_id] = value ^ full
        return ones, zeros
    for pos, net_id in enumerate(input_ids):
        value = 0
        for b in range(blocks):
            value |= stream_word(seed, first_block + b, pos, DOMAIN_DRAW) << (64 * b)
        ones[net_id] = value
        zeros[net_id] = value ^ full
    return ones, zeros


def fill_pattern(
    pattern: TestPattern,
    input_ids: Sequence[int],
    seed: int,
    pattern_index: int,
) -> TestPattern:
    """Stream-2 X-fill of one pattern: fill bits keyed by its index.

    The counter analogue of :meth:`TestPattern.filled` — fully
    specified patterns pass through untouched (same shortcut, same
    assignment order for the filled ones), but the fill value of input
    position ``pos`` is ``stream_word(seed, pattern_index, pos // 64,
    DOMAIN_FILL)`` bit ``pos % 64`` instead of the next sequential
    Mersenne draw, so filling is order- and subset-independent.
    """
    assignments = dict(pattern.assignments)
    if len(assignments) == len(input_ids):
        return TestPattern(assignments)
    words: Dict[int, int] = {}
    for pos, net_id in enumerate(input_ids):
        if net_id not in assignments:
            w = pos >> 6
            word = words.get(w)
            if word is None:
                word = stream_word(seed, pattern_index, w, DOMAIN_FILL)
                words[w] = word
            assignments[net_id] = (word >> (pos & 63)) & 1
    return TestPattern(assignments)


def fill_test_set(
    test_set: TestSet, circuit: CompiledCircuit, seed: int
) -> TestSet:
    """Stream-2 X-fill of a whole set (each pattern keyed by its index)."""
    input_ids = circuit.input_ids
    return TestSet(
        circuit_name=test_set.circuit_name,
        patterns=[
            fill_pattern(pattern, input_ids, seed, index)
            for index, pattern in enumerate(test_set.patterns)
        ],
    )
