"""PODEM — path-oriented decision making test generation.

Classic PODEM (Goel 1981) over the five-valued D-algebra: all decisions
are made at (pseudo-)primary inputs; objectives are translated to input
assignments by backtracing through the circuit; forward implication is
a five-valued resimulation with the target fault injected.  The search
backtracks by flipping the most recent unflipped input decision,
bounded by a backtrack limit that separates *aborted* from proven
*untestable* faults.

For speed, the implication pass runs over a flattened opcode table
(one tuple per gate) and computes the D-frontier and output-detection
flags in the same sweep, instead of re-scanning the circuit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from .compiled import CompiledCircuit
from .faults import Fault
from .patterns import TestPattern
from .values import (
    AND3,
    COMPOSE3,
    FAULTY_COMPONENT,
    GOOD_COMPONENT,
    NOT_TABLE,
    ONE,
    OR3,
    X,
    XOR3,
    ZERO,
    compose,
    good_value,
)

# Opcodes for the flattened gate table.
_OP_BUF, _OP_NOT, _OP_AND, _OP_NAND, _OP_OR, _OP_NOR, _OP_XOR, _OP_XNOR = range(8)

_OPCODE = {
    GateType.BUF: _OP_BUF,
    GateType.NOT: _OP_NOT,
    GateType.AND: _OP_AND,
    GateType.NAND: _OP_NAND,
    GateType.OR: _OP_OR,
    GateType.NOR: _OP_NOR,
    GateType.XOR: _OP_XOR,
    GateType.XNOR: _OP_XNOR,
}

# Values 3 (D) and 4 (D-bar) carry a fault effect; X is 2.
_FAULTED_MIN = 3


class PodemOutcome(enum.Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    outcome: PodemOutcome
    pattern: Optional[TestPattern]
    backtracks: int
    decisions: int


@dataclass
class _ImplyState:
    """Everything one implication sweep learns."""

    values: List[int]
    frontier: List[int]  # gate table indices with X output and faulted input
    detected: bool


class Podem:
    """A reusable PODEM engine for one compiled circuit."""

    def __init__(self, circuit: CompiledCircuit, backtrack_limit: int = 100):
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._input_set = set(circuit.input_ids)
        self._is_output = [False] * circuit.net_count
        for net_id in circuit.output_ids:
            self._is_output[net_id] = True
        # Flattened gate table: (opcode, output id, input ids).
        self._table: List[Tuple[int, int, Tuple[int, ...]]] = [
            (_OPCODE[gate.gate_type], gate.output, gate.inputs)
            for gate in circuit.gates
        ]
        self._level = [gate.level for gate in circuit.gates]

    # -- public ------------------------------------------------------------

    def generate(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        """Find an input assignment detecting ``fault``, or prove/abort.

        ``frozen`` pre-assigns input values the search may use but never
        revisit — the dynamic-compaction hook: detecting a *secondary*
        fault under the primary pattern's assignments extends that
        pattern instead of opening a new one.  An UNTESTABLE outcome
        with ``frozen`` set means only "not under these constraints".
        """
        assignments: Dict[int, int] = dict(frozen) if frozen else {}
        stack: List[Tuple[int, bool]] = []  # (net_id, already flipped)
        backtracks = 0
        decisions = 0

        while True:
            state = self._imply(assignments, fault)
            if state.detected:
                return PodemResult(
                    PodemOutcome.DETECTED,
                    TestPattern(dict(assignments)),
                    backtracks,
                    decisions,
                )
            objective = None
            if self._promising(state, fault):
                objective = self._objective(state, fault)
            if objective is not None:
                pi, value = self._backtrace(objective, state.values)
                if pi is not None:
                    assignments[pi] = value
                    stack.append((pi, False))
                    decisions += 1
                    continue
                # No X input reachable for the objective: treat as conflict.
            backtracks += 1
            if backtracks > self.backtrack_limit:
                return PodemResult(PodemOutcome.ABORTED, None, backtracks, decisions)
            while stack:
                pi, flipped = stack.pop()
                if flipped:
                    del assignments[pi]
                else:
                    assignments[pi] = 1 - assignments[pi]
                    stack.append((pi, True))
                    break
            else:
                return PodemResult(PodemOutcome.UNTESTABLE, None, backtracks, decisions)

    # -- implication --------------------------------------------------------

    def _imply(self, assignments: Dict[int, int], fault: Fault) -> _ImplyState:
        """Forward five-valued sweep with the fault injected.

        One pass computes net values, the D-frontier, and whether a
        fault effect reached a (pseudo-)primary output.
        """
        circuit = self.circuit
        values = [X] * circuit.net_count
        for net_id, assigned in assignments.items():
            values[net_id] = assigned  # ZERO == 0, ONE == 1
        fault_net = fault.net
        stuck = fault.stuck_at
        branch_gate = fault.gate_index if fault.is_branch else -1
        branch_pin = fault.pin
        if branch_gate < 0:
            values[fault_net] = _inject(values[fault_net], stuck)

        not_t = NOT_TABLE
        good_c, faulty_c, compose3 = GOOD_COMPONENT, FAULTY_COMPONENT, COMPOSE3
        is_output = self._is_output
        frontier: List[int] = []
        detected = False

        for gate_index, (op, out_id, in_ids) in enumerate(self._table):
            v0 = values[in_ids[0]]
            if gate_index == branch_gate and branch_pin == 0:
                v0 = _inject(v0, stuck)
            if op == _OP_BUF:
                out = v0
            elif op == _OP_NOT:
                out = not_t[v0]
            else:
                # Componentwise fold — exact for wide gates (see values.py).
                if op <= _OP_NAND:  # AND / NAND
                    table3, good, faulty = AND3, 1, 1
                elif op <= _OP_NOR:  # OR / NOR
                    table3, good, faulty = OR3, 0, 0
                else:  # XOR / XNOR
                    table3, good, faulty = XOR3, 0, 0
                faulted_input = v0 >= _FAULTED_MIN
                good = table3[good][good_c[v0]]
                faulty = table3[faulty][faulty_c[v0]]
                for pin in range(1, len(in_ids)):
                    v = values[in_ids[pin]]
                    if gate_index == branch_gate and pin == branch_pin:
                        v = _inject(v, stuck)
                    if v >= _FAULTED_MIN:
                        faulted_input = True
                    good = table3[good][good_c[v]]
                    faulty = table3[faulty][faulty_c[v]]
                out = compose3[good][faulty]
                if op in (_OP_NAND, _OP_NOR, _OP_XNOR):
                    out = not_t[out]
                if out == X and faulted_input:
                    frontier.append(gate_index)
            if branch_gate < 0 and out_id == fault_net:
                out = _inject(out, stuck)
            values[out_id] = out
            if out >= _FAULTED_MIN and is_output[out_id]:
                detected = True
        # A faulted primary input that is itself an output (degenerate).
        if not detected and branch_gate < 0 and values[fault_net] >= _FAULTED_MIN:
            detected = is_output[fault_net]
        return _ImplyState(values=values, frontier=frontier, detected=detected)

    # -- search guidance ------------------------------------------------------

    def _promising(self, state: _ImplyState, fault: Fault) -> bool:
        """Whether the current assignment can still be extended to a test."""
        site = self._site_value(state.values, fault)
        if site in (ZERO, ONE):
            return False  # fault can no longer be activated
        if site == X:
            return True  # activation still pending
        if not state.frontier:
            return False
        return self._x_path_exists(state)

    def _site_value(self, values: List[int], fault: Fault) -> int:
        if fault.is_branch:
            stem = values[fault.net]
            if good_value(stem) is None:
                return X
            return _inject(stem, fault.stuck_at)
        return values[fault.net]

    def _x_path_exists(self, state: _ImplyState) -> bool:
        """Some D-frontier output reaches a PO through X-valued nets."""
        circuit = self.circuit
        values = state.values
        seen = set()
        stack = [self._table[g][1] for g in state.frontier]
        while stack:
            net_id = stack.pop()
            if net_id in seen:
                continue
            seen.add(net_id)
            if self._is_output[net_id]:
                return True
            for gate_index in circuit.fanout[net_id]:
                out = self._table[gate_index][1]
                if values[out] == X and out not in seen:
                    stack.append(out)
        return False

    def _objective(self, state: _ImplyState, fault: Fault) -> Optional[Tuple[int, int]]:
        site = self._site_value(state.values, fault)
        if site == X:
            return (fault.net, 1 - fault.stuck_at)  # activate the fault
        # Propagate: lowest-level D-frontier gate, one X input to the
        # non-controlling value.
        gate_index = min(state.frontier, key=lambda g: self._level[g])
        gate = self.circuit.gates[gate_index]
        control = gate.gate_type.controlling_value
        non_controlling = 1 - control if control is not None else 1
        for net_id in gate.inputs:
            if state.values[net_id] == X:
                return (net_id, non_controlling)
        return None  # no X input left: implication will resolve or conflict

    def _backtrace(
        self, objective: Tuple[int, int], values: List[int]
    ) -> Tuple[Optional[int], int]:
        """Map an objective to an unassigned input assignment."""
        circuit = self.circuit
        net_id, value = objective
        guard = 0
        while net_id not in self._input_set:
            guard += 1
            if guard > circuit.net_count:
                return None, 0  # defensive: malformed structure
            gate = circuit.gates[circuit.driver_gate[net_id]]
            value = value ^ gate.gate_type.inverting
            chosen = None
            for candidate in gate.inputs:
                if values[candidate] == X:
                    chosen = candidate
                    break
            if chosen is None:
                return None, 0
            net_id = chosen
            if gate.gate_type in (GateType.XOR, GateType.XNOR):
                # Parity gates: aim for the target parity assuming other
                # X inputs settle to 0.
                known = 0
                for candidate in gate.inputs:
                    if candidate != chosen and values[candidate] == ONE:
                        known ^= 1
                value = value ^ known
        if values[net_id] != X:
            return None, 0
        return net_id, value


def _inject(value: int, stuck_at: int) -> int:
    """Five-valued result of forcing the faulty machine to ``stuck_at``."""
    return compose(good_value(value), stuck_at)
