"""PODEM — path-oriented decision making test generation.

Classic PODEM (Goel 1981) over the five-valued D-algebra: all decisions
are made at (pseudo-)primary inputs; objectives are translated to input
assignments by backtracing through the circuit; forward implication is
a five-valued resimulation with the target fault injected.  The search
backtracks by flipping the most recent unflipped input decision,
bounded by a backtrack limit that separates *aborted* from proven
*untestable* faults.

For speed, the implication pass runs over the circuit's flat opcode
table (:attr:`~repro.atpg.compiled.CompiledCircuit.gate_table`) and
computes the D-frontier and output-detection flags in the same sweep.
Two-input gates — the overwhelming majority — evaluate with a single
precomputed 5x5 table lookup; wider gates fall back to the exact
componentwise three-valued fold (pairwise five-valued folding is lossy
for three or more inputs, see :mod:`repro.atpg.values`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..observability import get_tracer, register_counter
from ..runtime.abort import get_abort
from .compiled import (
    OP_AND,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledCircuit,
)
from .faults import Fault
from .patterns import TestPattern
from .values import (
    AND3,
    AND_TABLE,
    COMPOSE3,
    FAULTY_COMPONENT,
    GOOD_COMPONENT,
    NOT_TABLE,
    ONE,
    OR3,
    OR_TABLE,
    X,
    XOR3,
    XOR_TABLE,
    ZERO,
    compose,
    good_value,
)

# Values 3 (D) and 4 (D-bar) carry a fault effect; X is 2.
_FAULTED_MIN = 3

# Implication-table plumbing per opcode: the exact 5x5 pairwise table
# (2-input gates only), the three-valued fold table with its identity
# (any width), and whether the output is inverted afterwards.
_PAIR_TABLES = {
    OP_AND: AND_TABLE,
    OP_NAND: AND_TABLE,
    OP_OR: OR_TABLE,
    OP_NOR: OR_TABLE,
    OP_XOR: XOR_TABLE,
    OP_XNOR: XOR_TABLE,
}
_FOLD_TABLES = {
    OP_AND: (AND3, 1),
    OP_NAND: (AND3, 1),
    OP_OR: (OR3, 0),
    OP_NOR: (OR3, 0),
    OP_XOR: (XOR3, 0),
    OP_XNOR: (XOR3, 0),
}
_INVERTING_OPS = frozenset((OP_NOT, OP_NAND, OP_NOR, OP_XNOR))

# Evaluation kinds for the implication loop.
_KIND_BUF, _KIND_NOT, _KIND_PAIR, _KIND_FOLD = range(4)

PODEM_CALLS = register_counter("podem.calls", "PODEM searches attempted")
PODEM_BACKTRACKS = register_counter("podem.backtracks", "decision flips taken")
PODEM_DECISIONS = register_counter("podem.decisions", "input decisions made")


class PodemOutcome(enum.Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    outcome: PodemOutcome
    pattern: Optional[TestPattern]
    backtracks: int
    decisions: int


@dataclass
class _ImplyState:
    """Everything one implication sweep learns."""

    values: List[int]
    frontier: List[int]  # gate table indices with X output and faulted input
    detected: bool


class Podem:
    """A reusable PODEM engine for one compiled circuit."""

    def __init__(self, circuit: CompiledCircuit, backtrack_limit: int = 100):
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._input_set = set(circuit.input_ids)
        self._is_output = circuit.is_output_flag
        self._level = circuit.gate_levels
        # Implication table: (output id, input ids, kind, table, invert)
        # specialized per gate from the circuit's flat opcode table.
        self._table5: List[Tuple[int, Tuple[int, ...], int, object, bool]] = []
        self._fold_info: List[Optional[Tuple[object, int]]] = []
        for op, out_id, in_ids in circuit.gate_table:
            inv = op in _INVERTING_OPS
            if op < OP_AND:  # BUF / NOT
                kind = _KIND_NOT if op == OP_NOT else _KIND_BUF
                table: object = None
                self._fold_info.append(None)
            elif len(in_ids) == 2:
                kind = _KIND_PAIR
                table = _PAIR_TABLES[op]
                self._fold_info.append(_FOLD_TABLES[op])
            else:
                kind = _KIND_FOLD
                table = _FOLD_TABLES[op]
                self._fold_info.append(_FOLD_TABLES[op])
            self._table5.append((out_id, in_ids, kind, table, inv))

    # -- public ------------------------------------------------------------

    def generate(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        """Find an input assignment detecting ``fault``, or prove/abort.

        ``frozen`` pre-assigns input values the search may use but never
        revisit — the dynamic-compaction hook: detecting a *secondary*
        fault under the primary pattern's assignments extends that
        pattern instead of opening a new one.  An UNTESTABLE outcome
        with ``frozen`` set means only "not under these constraints".
        """
        result = self._generate(fault, frozen)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count(PODEM_CALLS)
            if result.backtracks:
                tracer.count(PODEM_BACKTRACKS, result.backtracks)
            if result.decisions:
                tracer.count(PODEM_DECISIONS, result.decisions)
        return result

    def _generate(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        assignments: Dict[int, int] = dict(frozen) if frozen else {}
        stack: List[Tuple[int, bool]] = []  # (net_id, already flipped)
        backtracks = 0
        decisions = 0
        abort = get_abort()

        while True:
            abort.check()
            state = self._imply(assignments, fault)
            if state.detected:
                return PodemResult(
                    PodemOutcome.DETECTED,
                    TestPattern(dict(assignments)),
                    backtracks,
                    decisions,
                )
            objective = None
            if self._promising(state, fault):
                objective = self._objective(state, fault)
            if objective is not None:
                pi, value = self._backtrace(objective, state.values)
                if pi is not None:
                    assignments[pi] = value
                    stack.append((pi, False))
                    decisions += 1
                    continue
                # No X input reachable for the objective: treat as conflict.
            backtracks += 1
            abort.spend_backtracks(1)
            if backtracks > self.backtrack_limit:
                return PodemResult(PodemOutcome.ABORTED, None, backtracks, decisions)
            while stack:
                pi, flipped = stack.pop()
                if flipped:
                    del assignments[pi]
                else:
                    assignments[pi] = 1 - assignments[pi]
                    stack.append((pi, True))
                    break
            else:
                return PodemResult(PodemOutcome.UNTESTABLE, None, backtracks, decisions)

    # -- implication --------------------------------------------------------

    def _imply(self, assignments: Dict[int, int], fault: Fault) -> _ImplyState:
        """Forward five-valued sweep with the fault injected.

        One pass computes net values, the D-frontier, and whether a
        fault effect reached a (pseudo-)primary output.  Two-input
        gates use the exact pairwise 5x5 tables; wider gates use the
        componentwise fold (see the module docstring).
        """
        circuit = self.circuit
        values = [X] * circuit.net_count
        for net_id, assigned in assignments.items():
            values[net_id] = assigned  # ZERO == 0, ONE == 1
        fault_net = fault.net
        stuck = fault.stuck_at
        branch_gate = fault.gate_index if fault.is_branch else -1
        branch_pin = fault.pin
        if branch_gate < 0:
            values[fault_net] = _inject(values[fault_net], stuck)
            fault_gate = circuit.driver_gate.get(fault_net, -1)
        else:
            fault_gate = -1

        not_t = NOT_TABLE
        is_output = self._is_output
        frontier: List[int] = []
        frontier_append = frontier.append
        detected = False

        for gate_index, (out_id, in_ids, kind, table, inv) in enumerate(self._table5):
            if gate_index == branch_gate:
                out = self._eval_branch_gate(
                    values, in_ids, kind, inv, gate_index, branch_pin, stuck,
                    frontier_append,
                )
            elif kind == _KIND_PAIR:
                v0 = values[in_ids[0]]
                v1 = values[in_ids[1]]
                out = table[v0][v1]
                if inv:
                    out = not_t[out]
                if out == X and (v0 >= _FAULTED_MIN or v1 >= _FAULTED_MIN):
                    frontier_append(gate_index)
            elif kind == _KIND_BUF:
                out = values[in_ids[0]]
            elif kind == _KIND_NOT:
                out = not_t[values[in_ids[0]]]
            else:
                # Componentwise fold — exact for wide gates (see values.py).
                table3, identity = table
                good = faulty = identity
                faulted_input = False
                for in_id in in_ids:
                    v = values[in_id]
                    if v >= _FAULTED_MIN:
                        faulted_input = True
                    good = table3[good][GOOD_COMPONENT[v]]
                    faulty = table3[faulty][FAULTY_COMPONENT[v]]
                out = COMPOSE3[good][faulty]
                if inv:
                    out = not_t[out]
                if out == X and faulted_input:
                    frontier_append(gate_index)
            if gate_index == fault_gate:
                out = _inject(out, stuck)
            values[out_id] = out
            if out >= _FAULTED_MIN and is_output[out_id]:
                detected = True
        # A faulted primary input that is itself an output (degenerate).
        if not detected and branch_gate < 0 and values[fault_net] >= _FAULTED_MIN:
            detected = is_output[fault_net]
        return _ImplyState(values=values, frontier=frontier, detected=detected)

    def _eval_branch_gate(
        self,
        values: List[int],
        in_ids: Tuple[int, ...],
        kind: int,
        inv: bool,
        gate_index: int,
        branch_pin: int,
        stuck: int,
        frontier_append,
    ) -> int:
        """Evaluate the branch-faulted gate with the pin override.

        Runs once per implication sweep; always uses the exact
        componentwise fold so injected pins behave identically to the
        reference evaluation regardless of gate width.
        """
        if kind == _KIND_BUF or kind == _KIND_NOT:
            v0 = _inject(values[in_ids[0]], stuck)
            return NOT_TABLE[v0] if kind == _KIND_NOT else v0
        table3, identity = self._fold_info[gate_index]
        good = faulty = identity
        faulted_input = False
        for pin, in_id in enumerate(in_ids):
            v = values[in_id]
            if pin == branch_pin:
                v = _inject(v, stuck)
            if v >= _FAULTED_MIN:
                faulted_input = True
            good = table3[good][GOOD_COMPONENT[v]]
            faulty = table3[faulty][FAULTY_COMPONENT[v]]
        out = COMPOSE3[good][faulty]
        if inv:
            out = NOT_TABLE[out]
        if out == X and faulted_input:
            frontier_append(gate_index)
        return out

    # -- search guidance ------------------------------------------------------

    def _promising(self, state: _ImplyState, fault: Fault) -> bool:
        """Whether the current assignment can still be extended to a test."""
        site = self._site_value(state.values, fault)
        if site in (ZERO, ONE):
            return False  # fault can no longer be activated
        if site == X:
            return True  # activation still pending
        if not state.frontier:
            return False
        return self._x_path_exists(state)

    def _site_value(self, values: List[int], fault: Fault) -> int:
        if fault.is_branch:
            stem = values[fault.net]
            if good_value(stem) is None:
                return X
            return _inject(stem, fault.stuck_at)
        return values[fault.net]

    def _x_path_exists(self, state: _ImplyState) -> bool:
        """Some D-frontier output reaches a PO through X-valued nets."""
        circuit = self.circuit
        values = state.values
        seen = set()
        gate_out = circuit.gate_out
        stack = [gate_out[g] for g in state.frontier]
        while stack:
            net_id = stack.pop()
            if net_id in seen:
                continue
            seen.add(net_id)
            if self._is_output[net_id]:
                return True
            for gate_index in circuit.fanout[net_id]:
                out = gate_out[gate_index]
                if values[out] == X and out not in seen:
                    stack.append(out)
        return False

    def _objective(self, state: _ImplyState, fault: Fault) -> Optional[Tuple[int, int]]:
        site = self._site_value(state.values, fault)
        if site == X:
            return (fault.net, 1 - fault.stuck_at)  # activate the fault
        # Propagate: lowest-level D-frontier gate, one X input to the
        # non-controlling value.
        gate_index = min(state.frontier, key=lambda g: self._level[g])
        gate = self.circuit.gates[gate_index]
        control = gate.gate_type.controlling_value
        non_controlling = 1 - control if control is not None else 1
        for net_id in gate.inputs:
            if state.values[net_id] == X:
                return (net_id, non_controlling)
        return None  # no X input left: implication will resolve or conflict

    def _backtrace(
        self, objective: Tuple[int, int], values: List[int]
    ) -> Tuple[Optional[int], int]:
        """Map an objective to an unassigned input assignment."""
        circuit = self.circuit
        net_id, value = objective
        guard = 0
        while net_id not in self._input_set:
            guard += 1
            if guard > circuit.net_count:
                return None, 0  # defensive: malformed structure
            gate = circuit.gates[circuit.driver_gate[net_id]]
            value = value ^ gate.gate_type.inverting
            chosen = None
            for candidate in gate.inputs:
                if values[candidate] == X:
                    chosen = candidate
                    break
            if chosen is None:
                return None, 0
            net_id = chosen
            if gate.gate_type in (GateType.XOR, GateType.XNOR):
                # Parity gates: aim for the target parity assuming other
                # X inputs settle to 0.
                known = 0
                for candidate in gate.inputs:
                    if candidate != chosen and values[candidate] == ONE:
                        known ^= 1
                value = value ^ known
        if values[net_id] != X:
            return None, 0
        return net_id, value


def _inject(value: int, stuck_at: int) -> int:
    """Five-valued result of forcing the faulty machine to ``stuck_at``."""
    return compose(good_value(value), stuck_at)
