"""PODEM — path-oriented decision making test generation.

Classic PODEM (Goel 1981) over the five-valued D-algebra: all decisions
are made at (pseudo-)primary inputs; objectives are translated to input
assignments by backtracing through the circuit; forward implication is
a five-valued resimulation with the target fault injected.  The search
backtracks by flipping the most recent unflipped input decision,
bounded by a backtrack limit that separates *aborted* from proven
*untestable* faults.

For speed, the implication pass runs over the circuit's flat opcode
table (:attr:`~repro.atpg.compiled.CompiledCircuit.gate_table`) and
computes the D-frontier and output-detection flags in the same sweep.
Two-input gates — the overwhelming majority — evaluate with a single
precomputed 5x5 table lookup; wider gates fall back to the exact
componentwise three-valued fold (pairwise five-valued folding is lossy
for three or more inputs, see :mod:`repro.atpg.values`).

The search itself runs on the *incremental* implication kernel
(:class:`ImplicationKernel`): one full sweep seeds a persistent
five-valued value array when a fault is targeted, and each PI decision
afterwards propagates only through a levelized event worklist — the
same discipline as the event-driven fault-simulation kernel — while an
undo trail lets backtracking restore the exact prior state instead of
resimulating the circuit.  Each decision therefore costs O(affected
cone) instead of O(circuit).  The full-sweep :meth:`Podem._imply` is
kept as the reference implementation; ``tests/test_podem_kernel.py``
differentially enforces that the kernel's values, D-frontier, and
detection flag match it at every decision point, and
``Podem(circuit, incremental=False)`` still runs the search entirely on
the reference sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..observability import get_tracer, register_counter
from ..runtime.abort import get_abort
from .compiled import (
    OP_AND,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledCircuit,
)
from .faults import Fault
from .patterns import TestPattern
from .values import (
    AND3,
    AND_TABLE,
    COMPOSE3,
    FAULTY_COMPONENT,
    GOOD_COMPONENT,
    NOT_TABLE,
    ONE,
    OR3,
    OR_TABLE,
    X,
    XOR3,
    XOR_TABLE,
    ZERO,
    compose,
    good_value,
)

# Values 3 (D) and 4 (D-bar) carry a fault effect; X is 2.
_FAULTED_MIN = 3

# Implication-table plumbing per opcode: the exact 5x5 pairwise table
# (2-input gates only), the three-valued fold table with its identity
# (any width), and whether the output is inverted afterwards.
_PAIR_TABLES = {
    OP_AND: AND_TABLE,
    OP_NAND: AND_TABLE,
    OP_OR: OR_TABLE,
    OP_NOR: OR_TABLE,
    OP_XOR: XOR_TABLE,
    OP_XNOR: XOR_TABLE,
}
_FOLD_TABLES = {
    OP_AND: (AND3, 1),
    OP_NAND: (AND3, 1),
    OP_OR: (OR3, 0),
    OP_NOR: (OR3, 0),
    OP_XOR: (XOR3, 0),
    OP_XNOR: (XOR3, 0),
}
_INVERTING_OPS = frozenset((OP_NOT, OP_NAND, OP_NOR, OP_XNOR))

# Evaluation kinds for the implication loop.
_KIND_BUF, _KIND_NOT, _KIND_PAIR, _KIND_FOLD = range(4)

PODEM_CALLS = register_counter("podem.calls", "PODEM searches attempted")
PODEM_BACKTRACKS = register_counter("podem.backtracks", "decision flips taken")
PODEM_DECISIONS = register_counter("podem.decisions", "input decisions made")
PODEM_EVENTS = register_counter(
    "podem.events", "gate re-evaluations in the incremental implication kernel"
)
PODEM_UNDO_DEPTH = register_counter(
    "podem.undo_depth", "implication trail entries unwound while backtracking"
)


class PodemOutcome(enum.Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    outcome: PodemOutcome
    pattern: Optional[TestPattern]
    backtracks: int
    decisions: int


@dataclass
class _ImplyState:
    """Everything one implication sweep learns."""

    values: List[int]
    frontier: List[int]  # gate table indices with X output and faulted input
    detected: bool


class ImplicationKernel:
    """Persistent, event-driven five-valued implication for one search.

    :meth:`begin` seeds the state with one reference-grade full sweep;
    :meth:`assign` propagates a single new PI assignment through a
    levelized event worklist, updating the value array, the D-frontier
    membership, and the detected-output count only where gates actually
    re-evaluated; :meth:`undo` pops the trail back to a checkpoint, so
    backtracking restores the exact pre-decision state without any
    resimulation.

    Invariant (enforced differentially by ``tests/test_podem_kernel.py``):
    after any sequence of assigns/undos, ``values``, ``frontier()`` and
    ``detected`` equal what :meth:`Podem._imply` computes from scratch
    for the same assignment dict — the kernel is a cache of the
    reference sweep, never a different algorithm.
    """

    __slots__ = (
        "_podem", "_circuit", "values", "_frontier_flag", "_frontier",
        "_detected_outs", "_vtrail", "_ftrail", "_buckets", "_gate_epoch",
        "_epoch", "_fault_net", "_stuck", "_branch_gate", "_branch_pin",
        "_fault_gate", "events", "undo_entries",
    )

    def __init__(self, podem: "Podem"):
        self._podem = podem
        self._circuit = podem.circuit
        gate_count = len(self._circuit.gates)
        self.values: List[int] = []
        self._frontier_flag = [False] * gate_count
        self._frontier: set = set()
        self._detected_outs = 0
        self._vtrail: List[Tuple[int, int]] = []  # (net id, previous value)
        self._ftrail: List[Tuple[int, bool]] = []  # (gate index, previous flag)
        self._buckets: List[List[int]] = [
            [] for _ in range(self._circuit.max_level + 1)
        ]
        self._gate_epoch = [0] * gate_count
        self._epoch = 0
        self._fault_net = -1
        self._stuck = 0
        self._branch_gate = -1
        self._branch_pin = -1
        self._fault_gate = -1
        self.events = 0
        self.undo_entries = 0

    # -- lifecycle -------------------------------------------------------

    def begin(self, fault: Fault, assignments: Dict[int, int]) -> None:
        """Target ``fault``: seed state with one reference sweep.

        With no assignments (every primary target) the sweep is skipped
        outright: all-X inputs imply all-X nets — ``_inject(X)`` is X,
        every five-valued op maps all-X operands to X — so the reference
        result is statically known to be (all-X, empty frontier, not
        detected).
        """
        if assignments:
            state = self._podem._imply(assignments, fault)
            self.values = state.values
            frontier = state.frontier
            values = self.values
            self._detected_outs = sum(
                1
                for net_id in self._circuit.output_ids
                if values[net_id] >= _FAULTED_MIN
            )
        else:
            self.values = [X] * self._circuit.net_count
            frontier = ()
            self._detected_outs = 0
        flags = self._frontier_flag
        for gate_index in self._frontier:
            flags[gate_index] = False
        self._frontier = set(frontier)
        for gate_index in self._frontier:
            flags[gate_index] = True
        self._vtrail.clear()
        self._ftrail.clear()
        self._fault_net = fault.net
        self._stuck = fault.stuck_at
        self._branch_gate = fault.gate_index if fault.is_branch else -1
        self._branch_pin = fault.pin
        if self._branch_gate < 0:
            self._fault_gate = self._circuit.driver_gate.get(fault.net, -1)
        else:
            self._fault_gate = -1

    # -- queries ---------------------------------------------------------

    @property
    def detected(self) -> bool:
        return self._detected_outs > 0

    def frontier(self) -> List[int]:
        """The D-frontier in sweep order (ascending gate index).

        Sorting the membership set reproduces exactly the list order the
        reference full sweep appends in, so objective selection — a
        ``min`` that breaks level ties by list position — is
        bit-identical between the two implementations.
        """
        return sorted(self._frontier)

    def state(self) -> _ImplyState:
        """The current state in the reference sweep's result shape."""
        return _ImplyState(
            values=self.values, frontier=self.frontier(), detected=self.detected
        )

    def mark(self) -> Tuple[int, int]:
        """A checkpoint token for :meth:`undo`."""
        return (len(self._vtrail), len(self._ftrail))

    # -- mutation --------------------------------------------------------

    def assign(self, net_id: int, value: int) -> None:
        """Apply one PI assignment and propagate its consequences."""
        if self._branch_gate < 0 and net_id == self._fault_net:
            value = _inject(value, self._stuck)
        values = self.values
        if values[net_id] == value:
            return
        self._set_value(net_id, value)

        circuit = self._circuit
        fan_start = circuit.fanout_start
        fan_gates = circuit.fanout_gates
        gate_levels = circuit.gate_levels
        gate_epoch = self._gate_epoch
        buckets = self._buckets
        self._epoch += 1
        epoch = self._epoch

        pending = 0
        level = circuit.max_level + 1
        top_level = 0
        for k in range(fan_start[net_id], fan_start[net_id + 1]):
            g = fan_gates[k]
            if gate_epoch[g] != epoch:
                gate_epoch[g] = epoch
                lvl = gate_levels[g]
                buckets[lvl].append(g)
                pending += 1
                if lvl < level:
                    level = lvl
                if lvl > top_level:
                    top_level = lvl

        # Levelized event sweep: events travel to strictly higher
        # levels, so each touched gate evaluates once, inputs final.
        events = 0
        table5 = self._podem._table5
        frontier_flag = self._frontier_flag
        while pending and level <= top_level:
            bucket = buckets[level]
            level += 1
            if not bucket:
                continue
            for gate_index in bucket:
                pending -= 1
                events += 1
                out_id, out, in_frontier = self._eval_gate(gate_index, table5)
                if in_frontier != frontier_flag[gate_index]:
                    self._ftrail.append((gate_index, frontier_flag[gate_index]))
                    frontier_flag[gate_index] = in_frontier
                    if in_frontier:
                        self._frontier.add(gate_index)
                    else:
                        self._frontier.discard(gate_index)
                if out == values[out_id]:
                    continue  # output unchanged — fanout stays settled
                self._set_value(out_id, out)
                for k in range(fan_start[out_id], fan_start[out_id + 1]):
                    g = fan_gates[k]
                    if gate_epoch[g] != epoch:
                        gate_epoch[g] = epoch
                        lvl = gate_levels[g]
                        buckets[lvl].append(g)
                        pending += 1
                        if lvl > top_level:
                            top_level = lvl
            del bucket[:]
        self.events += events

    def undo(self, mark: Tuple[int, int]) -> None:
        """Restore the state checkpointed by :meth:`mark`."""
        v_mark, f_mark = mark
        values = self.values
        is_output = self._podem._is_output
        vtrail = self._vtrail
        undone = len(vtrail) - v_mark
        while len(vtrail) > v_mark:
            net_id, previous = vtrail.pop()
            if is_output[net_id]:
                now_faulted = values[net_id] >= _FAULTED_MIN
                was_faulted = previous >= _FAULTED_MIN
                if now_faulted and not was_faulted:
                    self._detected_outs -= 1
                elif was_faulted and not now_faulted:
                    self._detected_outs += 1
            values[net_id] = previous
        ftrail = self._ftrail
        undone += len(ftrail) - f_mark
        frontier_flag = self._frontier_flag
        while len(ftrail) > f_mark:
            gate_index, previous_flag = ftrail.pop()
            frontier_flag[gate_index] = previous_flag
            if previous_flag:
                self._frontier.add(gate_index)
            else:
                self._frontier.discard(gate_index)
        self.undo_entries += undone

    # -- internals -------------------------------------------------------

    def _set_value(self, net_id: int, value: int) -> None:
        values = self.values
        previous = values[net_id]
        self._vtrail.append((net_id, previous))
        values[net_id] = value
        if self._podem._is_output[net_id]:
            now_faulted = value >= _FAULTED_MIN
            was_faulted = previous >= _FAULTED_MIN
            if now_faulted and not was_faulted:
                self._detected_outs += 1
            elif was_faulted and not now_faulted:
                self._detected_outs -= 1

    def _eval_gate(self, gate_index: int, table5) -> Tuple[int, int, bool]:
        """One gate's (output net, new value, frontier membership).

        Mirrors the per-gate body of :meth:`Podem._imply` exactly,
        including the stem-fault output injection and the branch-fault
        pin override.
        """
        values = self.values
        out_id, in_ids, kind, table, inv = table5[gate_index]
        in_frontier = False
        if gate_index == self._branch_gate:
            sink: List[int] = []
            out = self._podem._eval_branch_gate(
                values, in_ids, kind, inv,
                gate_index, self._branch_pin, self._stuck, sink.append,
            )
            in_frontier = bool(sink)
        elif kind == _KIND_PAIR:
            v0 = values[in_ids[0]]
            v1 = values[in_ids[1]]
            out = table[v0][v1]
            if inv:
                out = NOT_TABLE[out]
            if out == X and (v0 >= _FAULTED_MIN or v1 >= _FAULTED_MIN):
                in_frontier = True
        elif kind == _KIND_BUF:
            out = values[in_ids[0]]
        elif kind == _KIND_NOT:
            out = NOT_TABLE[values[in_ids[0]]]
        else:
            table3, identity = table
            good = faulty = identity
            faulted_input = False
            for in_id in in_ids:
                v = values[in_id]
                if v >= _FAULTED_MIN:
                    faulted_input = True
                good = table3[good][GOOD_COMPONENT[v]]
                faulty = table3[faulty][FAULTY_COMPONENT[v]]
            out = COMPOSE3[good][faulty]
            if inv:
                out = NOT_TABLE[out]
            if out == X and faulted_input:
                in_frontier = True
        if gate_index == self._fault_gate:
            out = _inject(out, self._stuck)
        return out_id, out, in_frontier


class Podem:
    """A reusable PODEM engine for one compiled circuit.

    ``incremental`` selects the implication implementation: the default
    event-driven kernel with an undo trail, or (``False``) the reference
    full sweep per decision.  Both produce bit-identical searches — the
    flag exists for differential testing and for measuring the kernel's
    speedup.
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        backtrack_limit: int = 100,
        incremental: bool = True,
    ):
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.incremental = incremental
        self._kernel: Optional[ImplicationKernel] = None
        self._input_set = set(circuit.input_ids)
        self._is_output = circuit.is_output_flag
        self._level = circuit.gate_levels
        # Implication table: (output id, input ids, kind, table, invert)
        # specialized per gate from the circuit's flat opcode table.  The
        # tables depend only on the circuit, so they are memoized on it —
        # constructing a fresh engine per work item (the stream-2 shard
        # scheduler does) costs no more than reusing one.
        tables = getattr(circuit, "_podem_tables", None)
        if tables is None:
            table5: List[Tuple[int, Tuple[int, ...], int, object, bool]] = []
            fold_info: List[Optional[Tuple[object, int]]] = []
            for op, out_id, in_ids in circuit.gate_table:
                inv = op in _INVERTING_OPS
                if op < OP_AND:  # BUF / NOT
                    kind = _KIND_NOT if op == OP_NOT else _KIND_BUF
                    table: object = None
                    fold_info.append(None)
                elif len(in_ids) == 2:
                    kind = _KIND_PAIR
                    table = _PAIR_TABLES[op]
                    fold_info.append(_FOLD_TABLES[op])
                else:
                    kind = _KIND_FOLD
                    table = _FOLD_TABLES[op]
                    fold_info.append(_FOLD_TABLES[op])
                table5.append((out_id, in_ids, kind, table, inv))
            tables = (table5, fold_info)
            circuit._podem_tables = tables
        self._table5, self._fold_info = tables

    # -- public ------------------------------------------------------------

    def generate(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        """Find an input assignment detecting ``fault``, or prove/abort.

        ``frozen`` pre-assigns input values the search may use but never
        revisit — the dynamic-compaction hook: detecting a *secondary*
        fault under the primary pattern's assignments extends that
        pattern instead of opening a new one.  An UNTESTABLE outcome
        with ``frozen`` set means only "not under these constraints".
        """
        kernel = self._kernel
        events_before = kernel.events if kernel is not None else 0
        undo_before = kernel.undo_entries if kernel is not None else 0
        result = self._generate(fault, frozen)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count(PODEM_CALLS)
            if result.backtracks:
                tracer.count(PODEM_BACKTRACKS, result.backtracks)
            if result.decisions:
                tracer.count(PODEM_DECISIONS, result.decisions)
            kernel = self._kernel
            if kernel is not None:
                events = kernel.events - events_before
                if events:
                    tracer.count(PODEM_EVENTS, events)
                undone = kernel.undo_entries - undo_before
                if undone:
                    tracer.count(PODEM_UNDO_DEPTH, undone)
        return result

    def _generate(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        if self.incremental:
            return self._generate_incremental(fault, frozen)
        return self._generate_reference(fault, frozen)

    def _generate_incremental(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        """The search loop on the event-driven kernel.

        Mirrors :meth:`_generate_reference` step for step; the only
        difference is that implication state is updated in place
        (assign) and checkpoint-restored (undo) instead of resimulated,
        so the two paths make identical decisions in identical order.
        """
        assignments: Dict[int, int] = dict(frozen) if frozen else {}
        kernel = self._kernel
        if kernel is None:
            kernel = self._kernel = ImplicationKernel(self)
        kernel.begin(fault, assignments)
        # (net_id, already flipped, trail checkpoint before the decision)
        stack: List[Tuple[int, bool, Tuple[int, int]]] = []
        backtracks = 0
        decisions = 0
        abort = get_abort()

        while True:
            abort.check()
            if kernel.detected:
                return PodemResult(
                    PodemOutcome.DETECTED,
                    TestPattern(dict(assignments)),
                    backtracks,
                    decisions,
                )
            state = kernel.state()
            objective = None
            if self._promising(state, fault):
                objective = self._objective(state, fault)
            if objective is not None:
                pi, value = self._backtrace(objective, state.values)
                if pi is not None:
                    mark = kernel.mark()
                    assignments[pi] = value
                    kernel.assign(pi, value)
                    stack.append((pi, False, mark))
                    decisions += 1
                    continue
                # No X input reachable for the objective: treat as conflict.
            backtracks += 1
            abort.spend_backtracks(1)
            if backtracks > self.backtrack_limit:
                return PodemResult(PodemOutcome.ABORTED, None, backtracks, decisions)
            while stack:
                pi, flipped, mark = stack.pop()
                kernel.undo(mark)
                if flipped:
                    del assignments[pi]
                else:
                    assignments[pi] = 1 - assignments[pi]
                    kernel.assign(pi, assignments[pi])
                    stack.append((pi, True, mark))
                    break
            else:
                return PodemResult(PodemOutcome.UNTESTABLE, None, backtracks, decisions)

    def _generate_reference(
        self, fault: Fault, frozen: Optional[Dict[int, int]] = None
    ) -> PodemResult:
        assignments: Dict[int, int] = dict(frozen) if frozen else {}
        stack: List[Tuple[int, bool]] = []  # (net_id, already flipped)
        backtracks = 0
        decisions = 0
        abort = get_abort()

        while True:
            abort.check()
            state = self._imply(assignments, fault)
            if state.detected:
                return PodemResult(
                    PodemOutcome.DETECTED,
                    TestPattern(dict(assignments)),
                    backtracks,
                    decisions,
                )
            objective = None
            if self._promising(state, fault):
                objective = self._objective(state, fault)
            if objective is not None:
                pi, value = self._backtrace(objective, state.values)
                if pi is not None:
                    assignments[pi] = value
                    stack.append((pi, False))
                    decisions += 1
                    continue
                # No X input reachable for the objective: treat as conflict.
            backtracks += 1
            abort.spend_backtracks(1)
            if backtracks > self.backtrack_limit:
                return PodemResult(PodemOutcome.ABORTED, None, backtracks, decisions)
            while stack:
                pi, flipped = stack.pop()
                if flipped:
                    del assignments[pi]
                else:
                    assignments[pi] = 1 - assignments[pi]
                    stack.append((pi, True))
                    break
            else:
                return PodemResult(PodemOutcome.UNTESTABLE, None, backtracks, decisions)

    # -- implication --------------------------------------------------------

    def _imply(self, assignments: Dict[int, int], fault: Fault) -> _ImplyState:
        """Forward five-valued sweep with the fault injected.

        One pass computes net values, the D-frontier, and whether a
        fault effect reached a (pseudo-)primary output.  Two-input
        gates use the exact pairwise 5x5 tables; wider gates use the
        componentwise fold (see the module docstring).
        """
        circuit = self.circuit
        values = [X] * circuit.net_count
        for net_id, assigned in assignments.items():
            values[net_id] = assigned  # ZERO == 0, ONE == 1
        fault_net = fault.net
        stuck = fault.stuck_at
        branch_gate = fault.gate_index if fault.is_branch else -1
        branch_pin = fault.pin
        if branch_gate < 0:
            values[fault_net] = _inject(values[fault_net], stuck)
            fault_gate = circuit.driver_gate.get(fault_net, -1)
        else:
            fault_gate = -1

        not_t = NOT_TABLE
        is_output = self._is_output
        frontier: List[int] = []
        frontier_append = frontier.append
        detected = False

        for gate_index, (out_id, in_ids, kind, table, inv) in enumerate(self._table5):
            if gate_index == branch_gate:
                out = self._eval_branch_gate(
                    values, in_ids, kind, inv, gate_index, branch_pin, stuck,
                    frontier_append,
                )
            elif kind == _KIND_PAIR:
                v0 = values[in_ids[0]]
                v1 = values[in_ids[1]]
                out = table[v0][v1]
                if inv:
                    out = not_t[out]
                if out == X and (v0 >= _FAULTED_MIN or v1 >= _FAULTED_MIN):
                    frontier_append(gate_index)
            elif kind == _KIND_BUF:
                out = values[in_ids[0]]
            elif kind == _KIND_NOT:
                out = not_t[values[in_ids[0]]]
            else:
                # Componentwise fold — exact for wide gates (see values.py).
                table3, identity = table
                good = faulty = identity
                faulted_input = False
                for in_id in in_ids:
                    v = values[in_id]
                    if v >= _FAULTED_MIN:
                        faulted_input = True
                    good = table3[good][GOOD_COMPONENT[v]]
                    faulty = table3[faulty][FAULTY_COMPONENT[v]]
                out = COMPOSE3[good][faulty]
                if inv:
                    out = not_t[out]
                if out == X and faulted_input:
                    frontier_append(gate_index)
            if gate_index == fault_gate:
                out = _inject(out, stuck)
            values[out_id] = out
            if out >= _FAULTED_MIN and is_output[out_id]:
                detected = True
        # A faulted primary input that is itself an output (degenerate).
        if not detected and branch_gate < 0 and values[fault_net] >= _FAULTED_MIN:
            detected = is_output[fault_net]
        return _ImplyState(values=values, frontier=frontier, detected=detected)

    def _eval_branch_gate(
        self,
        values: List[int],
        in_ids: Tuple[int, ...],
        kind: int,
        inv: bool,
        gate_index: int,
        branch_pin: int,
        stuck: int,
        frontier_append,
    ) -> int:
        """Evaluate the branch-faulted gate with the pin override.

        Runs once per implication sweep; always uses the exact
        componentwise fold so injected pins behave identically to the
        reference evaluation regardless of gate width.
        """
        if kind == _KIND_BUF or kind == _KIND_NOT:
            v0 = _inject(values[in_ids[0]], stuck)
            return NOT_TABLE[v0] if kind == _KIND_NOT else v0
        table3, identity = self._fold_info[gate_index]
        good = faulty = identity
        faulted_input = False
        for pin, in_id in enumerate(in_ids):
            v = values[in_id]
            if pin == branch_pin:
                v = _inject(v, stuck)
            if v >= _FAULTED_MIN:
                faulted_input = True
            good = table3[good][GOOD_COMPONENT[v]]
            faulty = table3[faulty][FAULTY_COMPONENT[v]]
        out = COMPOSE3[good][faulty]
        if inv:
            out = NOT_TABLE[out]
        if out == X and faulted_input:
            frontier_append(gate_index)
        return out

    # -- search guidance ------------------------------------------------------

    def _promising(self, state: _ImplyState, fault: Fault) -> bool:
        """Whether the current assignment can still be extended to a test."""
        site = self._site_value(state.values, fault)
        if site in (ZERO, ONE):
            return False  # fault can no longer be activated
        if site == X:
            return True  # activation still pending
        if not state.frontier:
            return False
        return self._x_path_exists(state)

    def _site_value(self, values: List[int], fault: Fault) -> int:
        if fault.is_branch:
            stem = values[fault.net]
            if good_value(stem) is None:
                return X
            return _inject(stem, fault.stuck_at)
        return values[fault.net]

    def _x_path_exists(self, state: _ImplyState) -> bool:
        """Some D-frontier output reaches a PO through X-valued nets."""
        circuit = self.circuit
        values = state.values
        seen = set()
        gate_out = circuit.gate_out
        stack = [gate_out[g] for g in state.frontier]
        while stack:
            net_id = stack.pop()
            if net_id in seen:
                continue
            seen.add(net_id)
            if self._is_output[net_id]:
                return True
            for gate_index in circuit.fanout[net_id]:
                out = gate_out[gate_index]
                if values[out] == X and out not in seen:
                    stack.append(out)
        return False

    def _objective(self, state: _ImplyState, fault: Fault) -> Optional[Tuple[int, int]]:
        site = self._site_value(state.values, fault)
        if site == X:
            return (fault.net, 1 - fault.stuck_at)  # activate the fault
        # Propagate: lowest-level D-frontier gate, one X input to the
        # non-controlling value.
        gate_index = min(state.frontier, key=lambda g: self._level[g])
        gate = self.circuit.gates[gate_index]
        control = gate.gate_type.controlling_value
        non_controlling = 1 - control if control is not None else 1
        for net_id in gate.inputs:
            if state.values[net_id] == X:
                return (net_id, non_controlling)
        return None  # no X input left: implication will resolve or conflict

    def _backtrace(
        self, objective: Tuple[int, int], values: List[int]
    ) -> Tuple[Optional[int], int]:
        """Map an objective to an unassigned input assignment."""
        circuit = self.circuit
        net_id, value = objective
        guard = 0
        while net_id not in self._input_set:
            guard += 1
            if guard > circuit.net_count:
                return None, 0  # defensive: malformed structure
            gate = circuit.gates[circuit.driver_gate[net_id]]
            value = value ^ gate.gate_type.inverting
            chosen = None
            for candidate in gate.inputs:
                if values[candidate] == X:
                    chosen = candidate
                    break
            if chosen is None:
                return None, 0
            net_id = chosen
            if gate.gate_type in (GateType.XOR, GateType.XNOR):
                # Parity gates: aim for the target parity assuming other
                # X inputs settle to 0.
                known = 0
                for candidate in gate.inputs:
                    if candidate != chosen and values[candidate] == ONE:
                        known ^= 1
                value = value ^ known
        if values[net_id] != X:
            return None, 0
        return net_id, value


def _inject(value: int, stuck_at: int) -> int:
    """Five-valued result of forcing the faulty machine to ``stuck_at``."""
    return compose(good_value(value), stuck_at)
