"""Roth's five-valued D-algebra for test generation.

Every signal in PODEM carries one of five values: 0, 1, X, D (good
machine 1 / faulty machine 0) or D̄ (good 0 / faulty 1).  The algebra is
exactly componentwise three-valued logic on the (good, faulty) pair;
the tables here are generated from that definition at import time, so
they cannot drift from :func:`repro.circuit.gates.evaluate_gate`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuit.gates import GateType, Trit, evaluate_gate

# Value encoding (stable small ints; used as array indices everywhere).
ZERO = 0
ONE = 1
X = 2
D = 3  # good 1, faulty 0
DBAR = 4  # good 0, faulty 1

VALUE_NAMES = ("0", "1", "X", "D", "D'")

_COMPONENTS: Tuple[Tuple[Trit, Trit], ...] = (
    (0, 0),  # ZERO
    (1, 1),  # ONE
    (None, None),  # X
    (1, 0),  # D
    (0, 1),  # DBAR
)


def good_value(value: int) -> Trit:
    """The good-machine component (0/1/None)."""
    return _COMPONENTS[value][0]


def faulty_value(value: int) -> Trit:
    """The faulty-machine component (0/1/None)."""
    return _COMPONENTS[value][1]


def compose(good: Trit, faulty: Trit) -> int:
    """Five-valued value from its (good, faulty) components.

    Pairs with exactly one X component collapse to X — the D-algebra
    cannot represent half-known discrepancies.
    """
    if good is None or faulty is None:
        return X
    if good == faulty:
        return ONE if good else ZERO
    return D if good else DBAR


def is_faulted(value: int) -> bool:
    """True for D and D̄ — the fault effect is present."""
    return value in (D, DBAR)


def invert(value: int) -> int:
    return _NOT_TABLE[value]


def evaluate_gate5(gate_type: GateType, inputs: List[int]) -> int:
    """Five-valued gate evaluation (componentwise three-valued logic)."""
    good = evaluate_gate(gate_type, [good_value(v) for v in inputs])
    faulty = evaluate_gate(gate_type, [faulty_value(v) for v in inputs])
    return compose(good, faulty)


def _build_not_table() -> Tuple[int, ...]:
    table = []
    for value in range(5):
        good, faulty = _COMPONENTS[value]
        table.append(
            compose(
                None if good is None else 1 - good,
                None if faulty is None else 1 - faulty,
            )
        )
    return tuple(table)


def _build_binary_table(gate_type: GateType) -> Tuple[Tuple[int, ...], ...]:
    table = []
    for a in range(5):
        row = []
        for b in range(5):
            row.append(evaluate_gate5(gate_type, [a, b]))
        table.append(tuple(row))
    return tuple(table)


_NOT_TABLE = _build_not_table()
AND_TABLE = _build_binary_table(GateType.AND)
OR_TABLE = _build_binary_table(GateType.OR)
XOR_TABLE = _build_binary_table(GateType.XOR)
NOT_TABLE = _NOT_TABLE

# Componentwise machinery for exact wide-gate folding.  Folding the
# five-valued values pairwise through the binary tables is *lossy* for
# three or more inputs: AND(D, X, D') is ZERO componentwise (good
# 1&X&0 = 0, faulty 0&X&1 = 0) but the pairwise D&X already collapses
# to X, because the algebra cannot represent a half-known discrepancy.
# The exact fold therefore tracks the good and faulty three-valued
# components separately and composes once at the end.  Components use
# 0/1/2 with 2 as X.
_X3 = 2
GOOD_COMPONENT = tuple(_X3 if g is None else g for g, _ in _COMPONENTS)
FAULTY_COMPONENT = tuple(_X3 if f is None else f for _, f in _COMPONENTS)


def _table3(func) -> Tuple[Tuple[int, ...], ...]:
    def as_trit(value: int) -> Trit:
        return None if value == _X3 else value

    def from_trit(value: Trit) -> int:
        return _X3 if value is None else value

    return tuple(
        tuple(from_trit(func(as_trit(a), as_trit(b))) for b in range(3))
        for a in range(3)
    )


AND3 = _table3(lambda a, b: evaluate_gate(GateType.AND, [a, b]))
OR3 = _table3(lambda a, b: evaluate_gate(GateType.OR, [a, b]))
XOR3 = _table3(lambda a, b: evaluate_gate(GateType.XOR, [a, b]))
COMPOSE3 = tuple(
    tuple(
        compose(None if g == _X3 else g, None if f == _X3 else f)
        for f in range(3)
    )
    for g in range(3)
)


def fold_gate5(gate_type: GateType, inputs: List[int]) -> int:
    """Exact five-valued evaluation of a gate of any width.

    Componentwise: the good and faulty machines are folded separately
    in three-valued logic, then composed — see the note above
    :data:`GOOD_COMPONENT` for why pairwise five-valued folding would
    be wrong for wide gates.
    """
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return NOT_TABLE[inputs[0]]
    if gate_type in (GateType.AND, GateType.NAND):
        table, identity = AND3, 1
    elif gate_type in (GateType.OR, GateType.NOR):
        table, identity = OR3, 0
    else:
        table, identity = XOR3, 0
    good = faulty = identity
    for value in inputs:
        good = table[good][GOOD_COMPONENT[value]]
        faulty = table[faulty][FAULTY_COMPONENT[value]]
    result = COMPOSE3[good][faulty]
    return NOT_TABLE[result] if gate_type.inverting else result
