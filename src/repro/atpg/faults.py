"""Single stuck-at fault model with structural equivalence collapsing.

The fault universe contains a stuck-at-0 and stuck-at-1 fault on every
net (stem faults) and on every gate input pin whose net fans out to
more than one load (branch faults — on single-load nets the branch is
equivalent to the stem and is not enumerated).

Collapsing uses the classic intra-gate equivalences: a controlling
input value is indistinguishable from the corresponding output value
(AND: input sa0 ≡ output sa0; NAND: input sa0 ≡ output sa1; OR: input
sa1 ≡ output sa1; NOR: input sa1 ≡ output sa0), and inverters/buffers
collapse both polarities.  Equivalence classes are built with
union-find; one representative per class survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from .compiled import CompiledCircuit


@dataclass(frozen=True)
class Fault:
    """One stuck-at fault.

    ``gate_index``/``pin`` identify a branch fault on a specific gate
    input; both are None for a stem fault on the net itself.
    """

    net: int
    stuck_at: int  # 0 or 1
    gate_index: Optional[int] = None
    pin: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.gate_index is not None

    def describe(self, circuit: CompiledCircuit) -> str:
        site = circuit.net_names[self.net]
        if self.is_branch:
            gate = circuit.gates[self.gate_index]
            site = f"{site}->{circuit.net_names[gate.output]}[{self.pin}]"
        return f"{site} stuck-at-{self.stuck_at}"


def _fault_site_universe(circuit: CompiledCircuit) -> List[Tuple]:
    """All fault sites as (net, stuck_at, gate_index, pin) tuples.

    The tuple form is what collapsing actually operates on; building
    :class:`Fault` objects for the full universe just to discard most of
    them during collapsing costs more than the union-find itself.
    """
    sites: List[Tuple] = []
    for net_id in range(circuit.net_count):
        sites.append((net_id, 0, None, None))
        sites.append((net_id, 1, None, None))
    fanout = circuit.fanout
    for gate in circuit.gates:
        index = gate.index
        for pin, net_id in enumerate(gate.inputs):
            if len(fanout[net_id]) > 1:
                sites.append((net_id, 0, index, pin))
                sites.append((net_id, 1, index, pin))
    return sites


def full_fault_universe(circuit: CompiledCircuit) -> List[Fault]:
    """All stem and (multi-load) branch faults, both polarities."""
    return [Fault(*site) for site in _fault_site_universe(circuit)]


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[max(ri, rj)] = min(ri, rj)


def collapse_faults(
    circuit: CompiledCircuit,
    faults: Optional[List[Fault]] = None,
) -> List[Fault]:
    """Equivalence-collapse a fault list; returns one fault per class.

    Representatives are the lowest-indexed fault of each class, so
    stems dominate branches and earlier nets dominate later ones —
    deterministic for reproducible pattern counts.
    """
    if faults is None:
        return _collapse_universe(circuit)
    sites = [(f.net, f.stuck_at, f.gate_index, f.pin) for f in faults]
    index_of: Dict[Tuple, int] = {site: i for i, site in enumerate(sites)}
    uf = _UnionFind(len(sites))

    def lookup(net: int, stuck_at: int, gate_index=None, pin=None) -> Optional[int]:
        return index_of.get((net, stuck_at, gate_index, pin))

    for gate in circuit.gates:
        control = gate.gate_type.controlling_value
        inverting = gate.gate_type.inverting
        if gate.gate_type in (GateType.NOT, GateType.BUF):
            # Both polarities collapse through the gate.
            in_net = gate.inputs[0]
            for value in (0, 1):
                out_value = 1 - value if inverting else value
                _maybe_union(uf, lookup(in_net, value), lookup(gate.output, out_value))
                _maybe_union(
                    uf,
                    lookup(in_net, value, gate.index, 0),
                    lookup(gate.output, out_value),
                )
            continue
        if control is None:
            continue  # XOR/XNOR have no intra-gate equivalences
        out_value = 1 - control if inverting else control
        for pin, in_net in enumerate(gate.inputs):
            # The branch fault (or the stem when there is no branch) at
            # the controlling value is equivalent to the output fault.
            branch = lookup(in_net, control, gate.index, pin)
            if branch is None:
                branch = lookup(in_net, control)
            _maybe_union(uf, branch, lookup(gate.output, out_value))

    roots = {uf.find(i) for i in range(len(sites))}
    representatives = [faults[root] for root in roots]
    return sorted(
        representatives,
        key=lambda f: (f.net, f.stuck_at, f.gate_index is not None,
                       f.gate_index or 0, f.pin or 0),
    )


def _collapse_universe(circuit: CompiledCircuit) -> List[Fault]:
    """Collapse the full fault universe on integer site indices.

    The site enumeration of :func:`_fault_site_universe` is arithmetic:
    stem ``(net, sa)`` sits at ``2 * net + sa`` and the branch pairs
    follow in gate/pin order, so the tuple dictionary the generic path
    keys its union-find with can be replaced by index arithmetic plus
    one small branch map.  Indices — and therefore every union, every
    class representative (the minimum index), and the final sorted
    fault list — are identical to the generic path's;
    ``tests/test_backends.py`` pins the equivalence.
    """
    from .compiled import OP_NAND, OP_NOR, OP_NOT

    gate_op = circuit.gate_op
    gate_out = circuit.gate_out
    gate_in_start = circuit.gate_in_start
    gate_in_ids = circuit.gate_in_ids
    fanout_start = circuit.fanout_start
    stem_count = 2 * circuit.net_count

    # Per-CSR-pin-row branch site index (-1 when the pin's net has a
    # single load and carries no branch fault), filled in the same
    # gate/pin order _fault_site_universe enumerates.
    branch_row = [-1] * len(gate_in_ids)
    branch_sites: List[Tuple[int, int, int, int]] = []
    row = 0
    for index in range(len(gate_op)):
        for pin in range(gate_in_start[index + 1] - gate_in_start[index]):
            net_id = gate_in_ids[row]
            if fanout_start[net_id + 1] - fanout_start[net_id] > 1:
                branch_row[row] = stem_count + len(branch_sites)
                branch_sites.append((net_id, 0, index, pin))
                branch_sites.append((net_id, 1, index, pin))
            row += 1

    size = stem_count + len(branch_sites)
    parent = list(range(size))

    def union(a: int, b: int) -> None:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        while parent[b] != b:
            parent[b] = parent[parent[b]]
            b = parent[b]
        if a != b:
            if a < b:
                parent[b] = a
            else:
                parent[a] = b

    # control value and inversion per opcode (None = no controlling
    # value, i.e. XOR/XNOR — and BUF/NOT, which take their own path).
    control_of = (None, None, 0, 0, 1, 1, None, None)
    for index in range(len(gate_op)):
        op = gate_op[index]
        out2 = 2 * gate_out[index]
        start = gate_in_start[index]
        if op <= OP_NOT:
            in2 = 2 * gate_in_ids[start]
            branch = branch_row[start]
            for value in (0, 1):
                out_value = 1 - value if op == OP_NOT else value
                union(in2 + value, out2 + out_value)
                if branch >= 0:
                    union(branch + value, out2 + out_value)
            continue
        control = control_of[op]
        if control is None:
            continue  # XOR/XNOR have no intra-gate equivalences
        inverting = op == OP_NAND or op == OP_NOR
        out_site = out2 + (1 - control if inverting else control)
        for row in range(start, gate_in_start[index + 1]):
            branch = branch_row[row]
            site = branch + control if branch >= 0 else 2 * gate_in_ids[row] + control
            union(site, out_site)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    roots = {find(i) for i in range(size)}
    sites = [
        (root >> 1, root & 1, None, None) if root < stem_count
        else branch_sites[root - stem_count]
        for root in roots
    ]
    ordered = sorted(
        sites,
        key=lambda s: (s[0], s[1], s[2] is not None, s[2] or 0, s[3] or 0),
    )
    return [Fault(*site) for site in ordered]


def _maybe_union(uf: _UnionFind, i: Optional[int], j: Optional[int]) -> None:
    if i is not None and j is not None:
        uf.union(i, j)


def collapse_ratio(circuit: CompiledCircuit) -> float:
    """Collapsed over full fault-universe size (a sanity metric)."""
    full = full_fault_universe(circuit)
    return len(collapse_faults(circuit, full)) / len(full)
