"""Test-stimulus compression and the care-bit connection.

Commercial flows attack test data volume with on-chip decompressors fed
by compressed stimulus (EDT and friends); the achievable ratio is
governed by the *care-bit density* of the patterns.  This module
implements two simple, lossless stimulus codecs and measures how the
modular-vs-monolithic choice interacts with compressibility: per-core
pattern sets keep their care bits concentrated, while monolithic
patterns spread a few care bits over the whole scan load — so
compression *compounds* the paper's benefit rather than replacing it.

Codecs (both bit-exact invertible on 0/1/X streams):

* **run-length**: (value, length) tokens with X mapped to the previous
  fill value — the textbook baseline;
* **care-position**: explicit (position, value) pairs for care bits
  only, the idealized decompressor-limit accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

Trit = Optional[int]  # 0 / 1 / None for X


def run_length_encode(stream: Sequence[Trit]) -> List[Tuple[int, int]]:
    """(value, run) tokens; X bits extend the current run (free fill)."""
    tokens: List[Tuple[int, int]] = []
    current: Optional[int] = None
    run = 0
    for trit in stream:
        value = current if trit is None else trit
        if value is None:
            value = 0  # leading Xs default to zero fill
        if current is None or value != current:
            if current is not None:
                tokens.append((current, run))
            current, run = value, 1
        else:
            run += 1
    if current is not None:
        tokens.append((current, run))
    return tokens


def run_length_decode(tokens: Sequence[Tuple[int, int]]) -> List[int]:
    stream: List[int] = []
    for value, run in tokens:
        stream.extend([value] * run)
    return stream


def run_length_bits(stream: Sequence[Trit], run_field_bits: int = 8) -> int:
    """Encoded size: one value bit plus a fixed run field per token.

    Runs longer than the field allows split into multiple tokens, as a
    hardware decompressor would force.
    """
    max_run = (1 << run_field_bits) - 1
    bits = 0
    for _value, run in run_length_encode(stream):
        tokens = -(-run // max_run)
        bits += tokens * (1 + run_field_bits)
    return bits


def care_position_bits(stream: Sequence[Trit]) -> int:
    """Idealized care-bit coding: log2(len) + 1 bits per care bit.

    The information-theoretic shape of decompressor-based schemes: cost
    tracks care bits, not stream length.
    """
    length = len(stream)
    if length == 0:
        return 0
    position_bits = max(1, math.ceil(math.log2(length)))
    care = sum(1 for trit in stream if trit is not None)
    return care * (position_bits + 1) + position_bits  # plus a count field


@dataclass
class CompressionReport:
    """Compressed vs flat size for one stimulus stream collection."""

    name: str
    flat_bits: int
    run_length: int
    care_position: int

    @property
    def run_length_ratio(self) -> float:
        return self.flat_bits / self.run_length if self.run_length else float("inf")

    @property
    def care_position_ratio(self) -> float:
        return (
            self.flat_bits / self.care_position
            if self.care_position
            else float("inf")
        )


def compress_streams(name: str, streams: Sequence[Sequence[Trit]]) -> CompressionReport:
    """Aggregate both codecs over a collection of stimulus streams."""
    flat = sum(len(stream) for stream in streams)
    return CompressionReport(
        name=name,
        flat_bits=flat,
        run_length=sum(run_length_bits(stream) for stream in streams),
        care_position=sum(care_position_bits(stream) for stream in streams),
    )


def pattern_streams(circuit, test_set) -> List[List[Trit]]:
    """One stimulus stream per pattern, over the circuit's input order."""
    return [
        [pattern.assignments.get(net_id) for net_id in circuit.input_ids]
        for pattern in test_set.patterns
    ]
