"""Fault-dictionary diagnosis over the stuck-at model.

The classic companion to ATPG: given the tester's observed pass/fail
behaviour of a device under a known pattern set, rank the modelled
faults by how well their simulated signatures explain the observation.
Included because a modular test program localizes failures to a core
for free (each core's test is separate) while a monolithic program
needs exactly this machinery — another qualitative benefit of modular
testing the paper mentions in passing (test re-use, debug).

The dictionary is a full-response dictionary at (pseudo-)primary-output
granularity: per fault, per pattern, the set of outputs that miscompare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .compiled import CompiledCircuit
from .faults import Fault, collapse_faults
from .faultsim import FaultSimulator
from .patterns import TestSet

Signature = Tuple[FrozenSet[int], ...]  # per pattern: miscomparing output ids


@dataclass
class FaultDictionary:
    """Simulated miscompare signatures for every fault under one test set."""

    circuit_name: str
    pattern_count: int
    signatures: Dict[Fault, Signature]

    def distinguishable_pairs(self) -> float:
        """Fraction of fault pairs with distinct signatures (diagnosability)."""
        sigs = list(self.signatures.values())
        if len(sigs) < 2:
            return 1.0
        total = 0
        distinct = 0
        for i in range(len(sigs)):
            for j in range(i + 1, len(sigs)):
                total += 1
                if sigs[i] != sigs[j]:
                    distinct += 1
        return distinct / total


@dataclass(frozen=True)
class DiagnosisCandidate:
    """One fault's explanation quality for an observed failure."""

    fault: Fault
    matched_failures: int  # observed failing (pattern, output) pairs predicted
    predicted_failures: int  # pairs the fault predicts in total
    observed_failures: int

    @property
    def precision(self) -> float:
        return (
            self.matched_failures / self.predicted_failures
            if self.predicted_failures
            else 0.0
        )

    @property
    def recall(self) -> float:
        return (
            self.matched_failures / self.observed_failures
            if self.observed_failures
            else 0.0
        )

    @property
    def score(self) -> float:
        """Harmonic mean of precision and recall (F1)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def build_dictionary(
    circuit: CompiledCircuit,
    test_set: TestSet,
    faults: Optional[List[Fault]] = None,
) -> FaultDictionary:
    """Simulate every fault's full miscompare signature."""
    if faults is None:
        faults = collapse_faults(circuit)
    simulator = FaultSimulator(circuit)
    trits = test_set.as_trit_dicts(circuit)
    signatures: Dict[Fault, List[FrozenSet[int]]] = {f: [] for f in faults}
    for start in range(0, len(trits), 64):
        block = trits[start:start + 64]
        good, count = simulator.good_values(block)
        for fault in faults:
            per_output = _per_output_miscompares(simulator, good, count, fault)
            for bit in range(count):
                signatures[fault].append(
                    frozenset(
                        out for out, mask in per_output.items() if mask & (1 << bit)
                    )
                )
    return FaultDictionary(
        circuit_name=circuit.name,
        pattern_count=len(trits),
        signatures={f: tuple(sig) for f, sig in signatures.items()},
    )


def _per_output_miscompares(
    simulator: FaultSimulator,
    good,
    count: int,
    fault: Fault,
) -> Dict[int, int]:
    """Per-output miscompare masks (like detect_mask, but not OR-folded)."""
    faulty = simulator.faulty_output_rails(good, count, fault)
    result = {}
    for net_id, (ones, zeros) in faulty.items():
        good_ones, good_zeros = good[net_id]
        mask = (good_ones & zeros) | (good_zeros & ones)
        if mask:
            result[net_id] = mask
    return result


def observe_faulty_device(
    circuit: CompiledCircuit,
    test_set: TestSet,
    fault: Fault,
) -> List[FrozenSet[int]]:
    """Simulate the tester's view of a device carrying ``fault``.

    Returns, per pattern, the set of output net ids that miscompare —
    the input to :func:`diagnose`.
    """
    return list(build_dictionary(circuit, test_set, faults=[fault]).signatures[fault])


def diagnose(
    dictionary: FaultDictionary,
    observed: Sequence[FrozenSet[int]],
    top: int = 5,
) -> List[DiagnosisCandidate]:
    """Rank dictionary faults by how well they explain the observation."""
    if len(observed) != dictionary.pattern_count:
        raise ValueError(
            f"observation covers {len(observed)} patterns, dictionary "
            f"{dictionary.pattern_count}"
        )
    observed_pairs = {
        (k, out) for k, outs in enumerate(observed) for out in outs
    }
    candidates = []
    for fault, signature in dictionary.signatures.items():
        predicted_pairs = {
            (k, out) for k, outs in enumerate(signature) for out in outs
        }
        candidates.append(
            DiagnosisCandidate(
                fault=fault,
                matched_failures=len(observed_pairs & predicted_pairs),
                predicted_failures=len(predicted_pairs),
                observed_failures=len(observed_pairs),
            )
        )
    candidates.sort(key=lambda c: (-c.score, c.fault.net, c.fault.stuck_at))
    return candidates[:top]
