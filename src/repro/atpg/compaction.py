"""Static test-pattern compaction.

Merges partial (X-bearing) test patterns whose specified bits are
non-conflicting — exactly the Section 3 notion: "two stimulus bits of
different partial test patterns are non-conflicting if they are for
different (pseudo) inputs, or ... have a non-conflicting value".  The
greedy first-fit policy below is what makes the monolithic pattern
count exceed the per-cone maximum on overlapping cones: conflicts block
merges, so more patterns survive.
"""

from __future__ import annotations

from typing import List, Sequence

from .patterns import TestPattern


def static_compact(patterns: Sequence[TestPattern]) -> List[TestPattern]:
    """Greedy first-fit merge of non-conflicting patterns.

    Patterns are processed most-specified-first; each is merged into the
    first accumulated pattern it does not conflict with, else it opens a
    new slot.  Deterministic.  The result never has more patterns than
    the input, and for pairwise-disjoint support sets it collapses to
    the maximum "stack height" — the paper's perfect-compaction case.
    """
    ordered = sorted(
        range(len(patterns)),
        key=lambda i: (-patterns[i].specified_bits(), i),
    )
    merged: List[TestPattern] = []
    for index in ordered:
        pattern = patterns[index]
        for slot, existing in enumerate(merged):
            if not existing.conflicts_with(pattern):
                merged[slot] = existing.merged_with(pattern)
                break
        else:
            merged.append(TestPattern(dict(pattern.assignments)))
    return merged


def compaction_ratio(before: Sequence[TestPattern], after: Sequence[TestPattern]) -> float:
    """Input over output pattern count (>= 1)."""
    if not after:
        raise ValueError("empty compacted set")
    return len(before) / len(after)
