"""Event-driven, bit-parallel stuck-at fault simulation.

Parallel-pattern single-fault propagation: the good machine is
simulated once per pattern batch (arbitrarily wide, thanks to Python
integers), then each fault is injected and only its fanout cone is
re-evaluated, comparing faulty against good rails at the
(pseudo-)primary outputs.  Fault dropping removes detected faults from
consideration as soon as any pattern in the batch catches them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .compiled import CompiledCircuit
from .faults import Fault
from .logicsim import Rail, _eval_rail, pack_patterns, simulate


class FaultSimulator:
    """Reusable fault-simulation context for one compiled circuit."""

    def __init__(self, circuit: CompiledCircuit):
        self.circuit = circuit
        self._cone_cache: Dict[int, List[int]] = {}

    def _fanout_cone(self, net_id: int) -> List[int]:
        cone = self._cone_cache.get(net_id)
        if cone is None:
            cone = self.circuit.fanout_cone_gates(net_id)
            self._cone_cache[net_id] = cone
        return cone

    def good_values(
        self, patterns: Sequence[Dict[int, Optional[int]]]
    ) -> Tuple[List[Rail], int]:
        """Simulate the fault-free machine over a pattern batch."""
        rails = pack_patterns(self.circuit, patterns)
        return simulate(self.circuit, rails, len(patterns)), len(patterns)

    def detect_mask(
        self,
        good: List[Rail],
        pattern_count: int,
        fault: Fault,
    ) -> int:
        """Bitmask of batch patterns that detect ``fault``.

        A pattern detects the fault when some (pseudo-)primary output
        has a defined good value and the opposite defined faulty value.
        """
        circuit = self.circuit
        full = (1 << pattern_count) - 1
        stuck_rail: Rail = (full, 0) if fault.stuck_at else (0, full)
        faulty: Dict[int, Rail] = {}

        if fault.is_branch:
            gate = circuit.gates[fault.gate_index]
            inputs = [good[i] for i in gate.inputs]
            inputs[fault.pin] = stuck_rail
            out_rail = _eval_rail(gate.gate_type, inputs, full)
            if out_rail == good[gate.output]:
                return 0
            faulty[gate.output] = out_rail
            cone = self._fanout_cone(gate.output)
        else:
            if good[fault.net] == stuck_rail:
                return 0
            faulty[fault.net] = stuck_rail
            cone = self._fanout_cone(fault.net)

        for gate_index in cone:
            gate = circuit.gates[gate_index]
            if fault.is_branch and gate_index == fault.gate_index:
                continue  # already evaluated with the pin override
            if not any(i in faulty for i in gate.inputs):
                continue
            inputs = [faulty.get(i, good[i]) for i in gate.inputs]
            out_rail = _eval_rail(gate.gate_type, inputs, full)
            if out_rail != good[gate.output]:
                faulty[gate.output] = out_rail

        detected = 0
        for net_id in circuit.output_ids:
            rail = faulty.get(net_id)
            if rail is None:
                continue
            good_ones, good_zeros = good[net_id]
            ones, zeros = rail
            detected |= (good_ones & zeros) | (good_zeros & ones)
        return detected & full

    def simulate_batch(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: Iterable[Fault],
    ) -> Dict[Fault, int]:
        """Detection masks for every fault over one pattern batch."""
        good, count = self.good_values(patterns)
        return {fault: self.detect_mask(good, count, fault) for fault in faults}

    def drop_detected(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: List[Fault],
    ) -> Tuple[List[Fault], int]:
        """Partition faults into (remaining, detected-count) for a batch."""
        good, count = self.good_values(patterns)
        remaining = []
        dropped = 0
        for fault in faults:
            if self.detect_mask(good, count, fault):
                dropped += 1
            else:
                remaining.append(fault)
        return remaining, dropped

    def useful_pattern_mask(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: List[Fault],
    ) -> int:
        """Bitmask of patterns that detect at least one listed fault."""
        good, count = self.good_values(patterns)
        useful = 0
        for fault in faults:
            useful |= self.detect_mask(good, count, fault)
        return useful


def fault_coverage(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, Optional[int]]],
    faults: List[Fault],
    batch_size: int = 64,
) -> float:
    """Fraction of ``faults`` detected by ``patterns``."""
    if not faults:
        raise ValueError("empty fault list")
    simulator = FaultSimulator(circuit)
    remaining = list(faults)
    for start in range(0, len(patterns), batch_size):
        batch = patterns[start:start + batch_size]
        remaining, _ = simulator.drop_detected(batch, remaining)
        if not remaining:
            break
    return 1.0 - len(remaining) / len(faults)
