"""Event-driven, bit-parallel stuck-at fault simulation.

Parallel-pattern single-fault propagation: the good machine is
simulated once per pattern batch (arbitrarily wide, thanks to Python
integers), then each fault is injected and its effect is chased with a
*levelized event worklist* — only gates whose faulty inputs actually
changed are re-evaluated, instead of rescanning the fault's whole
static fanout cone.  The kernel stops early when

- the event frontier dies (every downstream gate absorbed the fault
  effect),
- the remaining events sit on nets that cannot reach any
  (pseudo-)primary output (such gates are never even scheduled, via
  the circuit's ``reaches_output`` flags), or
- every pattern in the batch already detects the fault
  (``detected == full``).

Fault dropping removes detected faults from consideration as soon as
any pattern in the batch catches them.  All detect masks are
bit-identical to the full-cone reference rescan
(``tests/test_faultsim_kernel.py`` enforces this differentially).
"""

from __future__ import annotations

import os

from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..observability import register_counter
from ..runtime.abort import get_abort
from .compiled import OP_AND, OP_NAND, OP_NOR, OP_NOT, OP_XNOR, CompiledCircuit
from .faults import Fault
from .logicsim import (
    Rail,
    RailBatch,
    eval_rail_op,
    pack_patterns_flat,
    simulate_flat,
)

# Running totals over every FaultSimulator in the process — the
# benchmarks read these to attribute speedups to the kernel
# (faults-simulated-per-second) rather than to pattern-count drift.
SIM_STATS = {
    "detect_calls": 0,
    "fault_pattern_evals": 0,
    "gate_evals": 0,
    "good_cache_hits": 0,
    "blocks_evaluated": 0,
    "shard_bytes_shared": 0,
    "shard_bytes_pickled": 0,
}


def reset_sim_stats() -> None:
    """Zero the kernel counters (benchmark bookkeeping)."""
    for key in SIM_STATS:
        SIM_STATS[key] = 0


def sim_stats() -> Dict[str, int]:
    """A snapshot of the kernel counters."""
    return dict(SIM_STATS)


# Tracer metric names for the kernel counters above.  The inner kernel
# never calls the tracer (per-event overhead would be measurable);
# instead callers snapshot SIM_STATS around a span and publish the
# delta once via :func:`publish_kernel_stats`.
KERNEL_METRICS = {
    "detect_calls": register_counter(
        "faultsim.detect_calls", "fault-simulation kernel invocations"
    ),
    "fault_pattern_evals": register_counter(
        "faultsim.fault_pattern_evals", "fault x pattern pairs simulated"
    ),
    "gate_evals": register_counter(
        "faultsim.gate_evals", "gate re-evaluations in the event kernel"
    ),
    "good_cache_hits": register_counter(
        "faultsim.good_cache_hits",
        "good-machine batch simulations served from the per-circuit cache",
    ),
    "blocks_evaluated": register_counter(
        "kernel.blocks_evaluated",
        "packed pattern blocks simulated through the good machine",
    ),
    "shard_bytes_shared": register_counter(
        "shard.bytes_shared",
        "pattern-block bytes moved to shard workers via shared memory",
    ),
    "shard_bytes_pickled": register_counter(
        "shard.bytes_pickled",
        "pattern-block bytes moved to shard workers via pickle",
    ),
}

# Per-circuit good-machine memo size.  Batches are keyed by their input
# rails, so a hit is exact; 32 entries comfortably covers the batch
# windows the engine replays (n-detect quota passes, coverage checks)
# without holding more than a few hundred KiB of rails per circuit.
GOOD_CACHE_CAPACITY = 32


def publish_kernel_stats(tracer, baseline: Dict[str, int]) -> None:
    """Count the SIM_STATS growth since ``baseline`` into ``tracer``."""
    for key, metric in KERNEL_METRICS.items():
        delta = SIM_STATS[key] - baseline.get(key, 0)
        if delta:
            tracer.count(metric, delta)


GoodValues = Union[RailBatch, List[Rail]]


class FaultSimulator:
    """Reusable fault-simulation context for one compiled circuit.

    Cone and reachability precomputation lives on the
    :class:`CompiledCircuit` (computed once per circuit), so any number
    of simulator instances — e.g. one per n-detect pass — share it.
    The per-instance state is only the epoch-stamped scratch arrays of
    the event kernel.
    """

    def __init__(self, circuit: CompiledCircuit):
        self.circuit = circuit
        net_count = circuit.net_count
        # Epoch-stamped scratch: a net/gate is "touched this call" iff
        # its stamp equals the current epoch, so no per-call clearing.
        self._f_ones = [0] * net_count
        self._f_zeros = [0] * net_count
        self._net_stamp = [0] * net_count
        self._gate_stamp = [0] * len(circuit.gates)
        self._buckets: List[List[int]] = [[] for _ in range(circuit.max_level + 1)]
        self._epoch = 0
        # Fanout-free-region scratch for fully specified batches:
        # per-net path-sensitization memo and per-root observability
        # memo (one per stuck polarity), each stamped per batch.
        self._sens_val = [0] * net_count
        self._sens_stamp = [0] * net_count
        self._obs0 = [0] * net_count
        self._obs1 = [0] * net_count
        self._obs0_stamp = [0] * net_count
        self._obs1_stamp = [0] * net_count
        self._ffr_epoch = 0

    def good_values(
        self, patterns: Sequence[Dict[int, Optional[int]]]
    ) -> Tuple[RailBatch, int]:
        """Simulate the fault-free machine over a pattern batch.

        Once per batch (the granularity is coarse enough to be free),
        the ambient abort token gets a cooperative deadline check — this
        is the kernel's only concession to the runtime layer above it.
        """
        ones, zeros = pack_patterns_flat(self.circuit, patterns)
        return self.good_values_rails(ones, zeros, len(patterns))

    def good_values_rails(
        self, ones: List[int], zeros: List[int], count: int
    ) -> Tuple[RailBatch, int]:
        """Good-machine simulation from already-packed input rails.

        This is the fast path for callers that draw their batches
        directly in packed form (the random phase) — no per-pattern
        dicts, no repack.  Results are memoized on the circuit, keyed by
        the exact input-net rails, so replaying a batch (n-detect quota
        charging, coverage re-checks) skips the gate sweep entirely; a
        hit is counted in ``SIM_STATS["good_cache_hits"]``.  Cached
        batches are shared and must be treated as read-only — every
        consumer in the tree writes fault effects to its own scratch
        rails, never to the good batch.
        """
        get_abort().check()
        circuit = self.circuit
        cache = circuit.good_value_cache
        key = (
            count,
            tuple(ones[i] for i in circuit.input_ids),
            tuple(zeros[i] for i in circuit.input_ids),
        )
        batch = cache.get(key)
        if batch is not None:
            cache.move_to_end(key)
            SIM_STATS["good_cache_hits"] += 1
            return batch, count
        simulate_flat(circuit, ones, zeros, count)
        SIM_STATS["blocks_evaluated"] += 1
        batch = RailBatch(ones, zeros, count)
        cache[key] = batch
        if len(cache) > GOOD_CACHE_CAPACITY:
            cache.popitem(last=False)
        return batch, count

    def detect_mask(
        self,
        good: GoodValues,
        pattern_count: int,
        fault: Fault,
    ) -> int:
        """Bitmask of batch patterns that detect ``fault``.

        A pattern detects the fault when some (pseudo-)primary output
        has a defined good value and the opposite defined faulty value.
        """
        return self._propagate(good, pattern_count, fault, None)

    def faulty_output_rails(
        self,
        good: GoodValues,
        pattern_count: int,
        fault: Fault,
    ) -> Dict[int, Rail]:
        """Faulty rails of every output net the fault effect reaches.

        Only outputs whose faulty rail differs from the good rail are
        returned.  Shares the event kernel with :meth:`detect_mask`
        (minus the ``detected == full`` early exit, since callers like
        diagnosis need every output).
        """
        touched: List[int] = []
        self._propagate(good, pattern_count, fault, touched)
        f_ones, f_zeros = self._f_ones, self._f_zeros
        return {net_id: (f_ones[net_id], f_zeros[net_id]) for net_id in touched}

    # -- the event-driven kernel ----------------------------------------

    def _propagate(
        self,
        good: GoodValues,
        pattern_count: int,
        fault: Fault,
        collect: Optional[List[int]],
    ) -> int:
        """Inject ``fault`` and chase its effect; returns the detect mask.

        With ``collect`` given, every faulty output net id is appended
        to it and the full-detection early exit is disabled.
        """
        circuit = self.circuit
        if type(good) is RailBatch:
            g_ones, g_zeros = good.ones, good.zeros
        else:  # legacy list-of-rails form
            g_ones = [rail[0] for rail in good]
            g_zeros = [rail[1] for rail in good]
        full = (1 << pattern_count) - 1
        SIM_STATS["detect_calls"] += 1
        SIM_STATS["fault_pattern_evals"] += pattern_count

        reaches = circuit.reaches_output
        is_out = circuit.is_output_flag
        gate_table = circuit.gate_table
        gate_out = circuit.gate_out
        gate_levels = circuit.gate_levels
        fan_start = circuit.fanout_start
        fan_gates = circuit.fanout_gates
        f_ones, f_zeros = self._f_ones, self._f_zeros
        net_stamp, gate_stamp = self._net_stamp, self._gate_stamp
        buckets = self._buckets
        self._epoch += 1
        epoch = self._epoch

        stuck_ones, stuck_zeros = (full, 0) if fault.stuck_at else (0, full)

        # -- seed the worklist with the fault site ----------------------
        if fault.gate_index is not None:
            seed_gate = fault.gate_index
            op, seed_net, ins = gate_table[seed_gate]
            if not reaches[seed_net]:
                return 0
            inputs = [(g_ones[i], g_zeros[i]) for i in ins]
            inputs[fault.pin] = (stuck_ones, stuck_zeros)
            o, z = eval_rail_op(op, inputs, full)
            if o == g_ones[seed_net] and z == g_zeros[seed_net]:
                return 0
            gate_stamp[seed_gate] = epoch  # never re-evaluate the faulty gate
        else:
            seed_net = fault.net
            if not reaches[seed_net]:
                return 0
            if g_ones[seed_net] == stuck_ones and g_zeros[seed_net] == stuck_zeros:
                return 0
            o, z = stuck_ones, stuck_zeros
        f_ones[seed_net] = o
        f_zeros[seed_net] = z
        net_stamp[seed_net] = epoch
        detected = 0
        if is_out[seed_net]:
            detected = (g_ones[seed_net] & z) | (g_zeros[seed_net] & o)
            if collect is not None:
                collect.append(seed_net)
            elif detected == full:
                return detected

        pending = 0
        level = circuit.max_level + 1
        top_level = 0
        for k in range(fan_start[seed_net], fan_start[seed_net + 1]):
            g = fan_gates[k]
            if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                gate_stamp[g] = epoch
                lvl = gate_levels[g]
                buckets[lvl].append(g)
                pending += 1
                if lvl < level:
                    level = lvl
                if lvl > top_level:
                    top_level = lvl

        # -- levelized event sweep --------------------------------------
        # Events only travel to strictly higher levels, so each touched
        # gate is evaluated exactly once, with all its inputs final.
        gate_evals = 0
        while pending and level <= top_level:
            bucket = buckets[level]
            level += 1
            if not bucket:
                continue
            for gi in bucket:
                pending -= 1
                gate_evals += 1
                op, out_net, ins = gate_table[gi]
                if op >= OP_AND and op <= OP_NOR:
                    if op <= OP_NAND:  # AND / NAND
                        o, z = full, 0
                        for i in ins:
                            if net_stamp[i] == epoch:
                                o &= f_ones[i]
                                z |= f_zeros[i]
                            else:
                                o &= g_ones[i]
                                z |= g_zeros[i]
                        if op == OP_NAND:
                            o, z = z, o
                    else:  # OR / NOR
                        o, z = 0, full
                        for i in ins:
                            if net_stamp[i] == epoch:
                                o |= f_ones[i]
                                z &= f_zeros[i]
                            else:
                                o |= g_ones[i]
                                z &= g_zeros[i]
                        if op == OP_NOR:
                            o, z = z, o
                elif op <= OP_NOT:  # BUF / NOT
                    i = ins[0]
                    if net_stamp[i] == epoch:
                        o, z = f_ones[i], f_zeros[i]
                    else:
                        o, z = g_ones[i], g_zeros[i]
                    if op == OP_NOT:
                        o, z = z, o
                else:  # XOR / XNOR
                    it = iter(ins)
                    i = next(it)
                    if net_stamp[i] == epoch:
                        o, z = f_ones[i], f_zeros[i]
                    else:
                        o, z = g_ones[i], g_zeros[i]
                    for i in it:
                        if net_stamp[i] == epoch:
                            io, iz = f_ones[i], f_zeros[i]
                        else:
                            io, iz = g_ones[i], g_zeros[i]
                        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                    if op == OP_XNOR:
                        o, z = z, o
                if o == g_ones[out_net] and z == g_zeros[out_net]:
                    continue  # event absorbed — fanout stays good
                f_ones[out_net] = o
                f_zeros[out_net] = z
                net_stamp[out_net] = epoch
                if is_out[out_net]:
                    detected |= (g_ones[out_net] & z) | (g_zeros[out_net] & o)
                    if collect is not None:
                        collect.append(out_net)
                    elif detected == full:
                        # Drain the worklist so the scratch buckets are
                        # clean for the next call.
                        del bucket[:]
                        for l in range(level, top_level + 1):
                            if buckets[l]:
                                del buckets[l][:]
                        SIM_STATS["gate_evals"] += gate_evals
                        return detected
                for k in range(fan_start[out_net], fan_start[out_net + 1]):
                    g = fan_gates[k]
                    if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                        gate_stamp[g] = epoch
                        lvl = gate_levels[g]
                        buckets[lvl].append(g)
                        pending += 1
                        if lvl > top_level:
                            top_level = lvl
            del bucket[:]
        SIM_STATS["gate_evals"] += gate_evals
        return detected

    def detect_masks(
        self,
        good: GoodValues,
        pattern_count: int,
        faults: Iterable[Fault],
    ) -> List[int]:
        """Detect masks for many faults over one batch, in fault order.

        Semantically ``[self.detect_mask(good, pattern_count, f) for f
        in faults]``, but with the kernel's per-call setup (rail/array
        bindings, full-mask computation, stats bookkeeping) hoisted out
        of the fault loop.  The event chase itself averages only a
        handful of gate evaluations per fault on realistic circuits, so
        that fixed setup dominates single-fault calls — the random and
        verification phases, which sweep thousands of faults per batch,
        go through here instead.
        """
        circuit = self.circuit
        if type(good) is RailBatch:
            g_ones, g_zeros = good.ones, good.zeros
        else:  # legacy list-of-rails form
            g_ones = [rail[0] for rail in good]
            g_zeros = [rail[1] for rail in good]
        full = (1 << pattern_count) - 1

        # Fully specified batches (every input defined in every pattern
        # implies — all gate functions preserve definedness — no X
        # anywhere) take the fanout-free-region fast path: per-fault
        # event chases collapse to local path-sensitization algebra
        # plus at most one memoized chase per region root and polarity.
        for i in circuit.input_ids:
            if (g_ones[i] | g_zeros[i]) != full:
                break
        else:
            # The circuit's kernel backend may take the whole X-free
            # call as one vectorized pass (numpy); a None return means
            # "not worth it here" and the scalar path below runs.
            # Either way the masks are bit-identical.
            masks = circuit.backend.ffr_detect_masks(
                self, g_ones, g_zeros, full, pattern_count, faults
            )
            if masks is not None:
                return masks
            return self._ffr_detect_masks(
                g_ones, g_zeros, full, pattern_count, faults
            )

        reaches = circuit.reaches_output
        is_out = circuit.is_output_flag
        gate_table = circuit.gate_table
        gate_out = circuit.gate_out
        gate_levels = circuit.gate_levels
        fan_start = circuit.fanout_start
        fan_gates = circuit.fanout_gates
        f_ones, f_zeros = self._f_ones, self._f_zeros
        net_stamp, gate_stamp = self._net_stamp, self._gate_stamp
        buckets = self._buckets
        epoch = self._epoch
        level_cap = circuit.max_level + 1

        masks: List[int] = []
        append_mask = masks.append
        fault_count = 0
        gate_evals = 0
        for fault in faults:
            fault_count += 1
            epoch += 1
            stuck_ones, stuck_zeros = (full, 0) if fault.stuck_at else (0, full)

            # -- seed the worklist with the fault site ------------------
            seed_gate = fault.gate_index
            if seed_gate is not None:
                op, seed_net, ins = gate_table[seed_gate]
                if not reaches[seed_net]:
                    append_mask(0)
                    continue
                # Inline eval_rail_op with the faulty pin overridden —
                # no per-call input-rail list materialization.
                pin = fault.pin
                if OP_AND <= op <= OP_NOR:
                    if op <= OP_NAND:  # AND / NAND
                        o, z = full, 0
                        for p, i in enumerate(ins):
                            if p == pin:
                                o &= stuck_ones
                                z |= stuck_zeros
                            else:
                                o &= g_ones[i]
                                z |= g_zeros[i]
                        if op == OP_NAND:
                            o, z = z, o
                    else:  # OR / NOR
                        o, z = 0, full
                        for p, i in enumerate(ins):
                            if p == pin:
                                o |= stuck_ones
                                z &= stuck_zeros
                            else:
                                o |= g_ones[i]
                                z &= g_zeros[i]
                        if op == OP_NOR:
                            o, z = z, o
                elif op <= OP_NOT:  # BUF / NOT (pin is always 0)
                    o, z = stuck_ones, stuck_zeros
                    if op == OP_NOT:
                        o, z = z, o
                else:  # XOR / XNOR
                    o = z = None
                    for p, i in enumerate(ins):
                        if p == pin:
                            io, iz = stuck_ones, stuck_zeros
                        else:
                            io, iz = g_ones[i], g_zeros[i]
                        if o is None:
                            o, z = io, iz
                        else:
                            o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                    if op == OP_XNOR:
                        o, z = z, o
                if o == g_ones[seed_net] and z == g_zeros[seed_net]:
                    append_mask(0)
                    continue
                gate_stamp[seed_gate] = epoch
            else:
                seed_net = fault.net
                if not reaches[seed_net]:
                    append_mask(0)
                    continue
                if g_ones[seed_net] == stuck_ones and g_zeros[seed_net] == stuck_zeros:
                    append_mask(0)
                    continue
                o, z = stuck_ones, stuck_zeros
            f_ones[seed_net] = o
            f_zeros[seed_net] = z
            net_stamp[seed_net] = epoch
            detected = 0
            if is_out[seed_net]:
                detected = (g_ones[seed_net] & z) | (g_zeros[seed_net] & o)
                if detected == full:
                    append_mask(detected)
                    continue

            pending = 0
            level = level_cap
            top_level = 0
            for k in range(fan_start[seed_net], fan_start[seed_net + 1]):
                g = fan_gates[k]
                if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                    gate_stamp[g] = epoch
                    lvl = gate_levels[g]
                    buckets[lvl].append(g)
                    pending += 1
                    if lvl < level:
                        level = lvl
                    if lvl > top_level:
                        top_level = lvl

            # -- levelized event sweep (see _propagate) -----------------
            while pending and level <= top_level:
                bucket = buckets[level]
                level += 1
                if not bucket:
                    continue
                for gi in bucket:
                    pending -= 1
                    gate_evals += 1
                    op, out_net, ins = gate_table[gi]
                    if op >= OP_AND and op <= OP_NOR:
                        if op <= OP_NAND:  # AND / NAND
                            o, z = full, 0
                            for i in ins:
                                if net_stamp[i] == epoch:
                                    o &= f_ones[i]
                                    z |= f_zeros[i]
                                else:
                                    o &= g_ones[i]
                                    z |= g_zeros[i]
                            if op == OP_NAND:
                                o, z = z, o
                        else:  # OR / NOR
                            o, z = 0, full
                            for i in ins:
                                if net_stamp[i] == epoch:
                                    o |= f_ones[i]
                                    z &= f_zeros[i]
                                else:
                                    o |= g_ones[i]
                                    z &= g_zeros[i]
                            if op == OP_NOR:
                                o, z = z, o
                    elif op <= OP_NOT:  # BUF / NOT
                        i = ins[0]
                        if net_stamp[i] == epoch:
                            o, z = f_ones[i], f_zeros[i]
                        else:
                            o, z = g_ones[i], g_zeros[i]
                        if op == OP_NOT:
                            o, z = z, o
                    else:  # XOR / XNOR
                        it = iter(ins)
                        i = next(it)
                        if net_stamp[i] == epoch:
                            o, z = f_ones[i], f_zeros[i]
                        else:
                            o, z = g_ones[i], g_zeros[i]
                        for i in it:
                            if net_stamp[i] == epoch:
                                io, iz = f_ones[i], f_zeros[i]
                            else:
                                io, iz = g_ones[i], g_zeros[i]
                            o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                        if op == OP_XNOR:
                            o, z = z, o
                    if o == g_ones[out_net] and z == g_zeros[out_net]:
                        continue  # event absorbed — fanout stays good
                    f_ones[out_net] = o
                    f_zeros[out_net] = z
                    net_stamp[out_net] = epoch
                    if is_out[out_net]:
                        detected |= (g_ones[out_net] & z) | (g_zeros[out_net] & o)
                        if detected == full:
                            del bucket[:]
                            for l in range(level, top_level + 1):
                                if buckets[l]:
                                    del buckets[l][:]
                            pending = 0
                            break
                    for k in range(fan_start[out_net], fan_start[out_net + 1]):
                        g = fan_gates[k]
                        if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                            gate_stamp[g] = epoch
                            lvl = gate_levels[g]
                            buckets[lvl].append(g)
                            pending += 1
                            if lvl > top_level:
                                top_level = lvl
                else:
                    del bucket[:]
            append_mask(detected)

        self._epoch = epoch
        SIM_STATS["detect_calls"] += fault_count
        SIM_STATS["fault_pattern_evals"] += fault_count * pattern_count
        SIM_STATS["gate_evals"] += gate_evals
        return masks

    # -- fanout-free-region fast path (fully specified batches) ----------

    def _ffr_detect_masks(
        self,
        g_ones: List[int],
        g_zeros: List[int],
        full: int,
        pattern_count: int,
        faults: Iterable[Fault],
    ) -> List[int]:
        """Detect masks over an X-free batch via region decomposition.

        With no X values, fault detection factors exactly:

        * inside a fanout-free region every net feeds one gate pin, so
          the effect travels a unique, reconvergence-free path — per
          pattern it reaches the region root iff the fault is excited
          (good value differs from the stuck value) and every gate on
          the path is side-sensitized (AND/NAND siblings all 1, OR/NOR
          siblings all 0; BUF/NOT/XOR/XNOR always pass a flip);
        * beyond the root, a pattern's response depends only on whether
          the root flipped, which is the root's *stem* behavior — one
          event chase per (root, polarity), shared by every fault in
          the region and memoized per batch.

        Detect masks are bit-identical to the event kernel (the
        differential kernel tests enforce it); only the work changes,
        from one chase per fault to one per live region root.
        """
        circuit = self.circuit
        ffr_root, ffr_load = circuit.ffr_view()
        reaches = circuit.reaches_output
        gate_table = circuit.gate_table
        gate_out = circuit.gate_out
        chase = self._chase_stem
        self._ffr_epoch += 1
        ep = self._ffr_epoch
        sens_val, sens_stamp = self._sens_val, self._sens_stamp
        obs0, obs1 = self._obs0, self._obs1
        obs0_stamp, obs1_stamp = self._obs0_stamp, self._obs1_stamp

        masks: List[int] = []
        append_mask = masks.append
        fault_count = 0
        for fault in faults:
            fault_count += 1
            net = fault.net
            if not reaches[net]:
                append_mask(0)
                continue
            # Excitation: patterns whose good value differs from the
            # stuck value (X-free, so the complement rail is exact).
            mask = g_ones[net] if fault.stuck_at == 0 else g_zeros[net]
            gate_index = fault.gate_index
            if gate_index is None:
                if ffr_load[net] < 0:
                    # Stem at a region root: the chase itself is the
                    # exact answer (excitation is its seed guard).
                    if fault.stuck_at:
                        if obs1_stamp[net] != ep:
                            obs1[net] = chase(g_ones, g_zeros, full, net, full, 0)
                            obs1_stamp[net] = ep
                        append_mask(obs1[net])
                    else:
                        if obs0_stamp[net] != ep:
                            obs0[net] = chase(g_ones, g_zeros, full, net, 0, full)
                            obs0_stamp[net] = ep
                        append_mask(obs0[net])
                    continue
                start = net
            else:
                # Branch fault: the flip is visible at the gate output
                # iff excited and this pin is side-sensitized.
                op, out_net, ins = gate_table[gate_index]
                pin = fault.pin
                if OP_AND <= op <= OP_NOR:
                    if op <= OP_NAND:  # AND / NAND
                        for p, i in enumerate(ins):
                            if p != pin:
                                mask &= g_ones[i]
                    else:  # OR / NOR
                        for p, i in enumerate(ins):
                            if p != pin:
                                mask &= g_zeros[i]
                start = out_net
            if not mask:
                append_mask(0)
                continue
            # Side-sensitization from ``start`` to its region root,
            # memoized per net: walk the unmemoized chain suffix, then
            # fold values back down in chain order.
            if sens_stamp[start] != ep:
                chain: List[int] = []
                n = start
                while sens_stamp[n] != ep:
                    gate_index = ffr_load[n]
                    if gate_index < 0:
                        sens_val[n] = full
                        sens_stamp[n] = ep
                        break
                    chain.append(n)
                    n = gate_out[gate_index]
                for n in reversed(chain):
                    gate_index = ffr_load[n]
                    op, out_net, ins = gate_table[gate_index]
                    acc = sens_val[out_net]
                    if acc:
                        if OP_AND <= op <= OP_NOR:
                            # Single-load nets appear on exactly one
                            # pin, so exclusion by net id is exact.
                            if op <= OP_NAND:
                                for i in ins:
                                    if i != n:
                                        acc &= g_ones[i]
                            else:
                                for i in ins:
                                    if i != n:
                                        acc &= g_zeros[i]
                    sens_val[n] = acc
                    sens_stamp[n] = ep
            mask &= sens_val[start]
            if not mask:
                append_mask(0)
                continue
            # Root observability: patterns where flipping the root is
            # seen at an output.  The two polarity chases have disjoint
            # supports (each detects only where the good value differs
            # from its stuck value), so their union is the exact
            # per-pattern flip observability.
            root = ffr_root[start]
            if obs0_stamp[root] != ep:
                obs0[root] = chase(g_ones, g_zeros, full, root, 0, full)
                obs0_stamp[root] = ep
            if obs1_stamp[root] != ep:
                obs1[root] = chase(g_ones, g_zeros, full, root, full, 0)
                obs1_stamp[root] = ep
            append_mask(mask & (obs0[root] | obs1[root]))

        SIM_STATS["detect_calls"] += fault_count
        SIM_STATS["fault_pattern_evals"] += fault_count * pattern_count
        return masks

    def _chase_flip(
        self, g_ones: List[int], g_zeros: List[int], full: int, net: int
    ) -> int:
        """One chase of the *complemented* root rails (X-free batches).

        Seeding the stem sweep with ``(g_zeros[net], g_ones[net])``
        flips the root in every pattern at once.  Because every
        dual-rail gate op is bitwise, pattern bits evolve independently,
        so the detected mask equals ``obs0 | obs1`` of the two
        constant-stuck chases exactly: each bit sees the root flip away
        from its own good value, which is what whichever polarity chase
        differs from the good value computes for that bit.  One sweep
        instead of two — the numpy backend's observability kernel.
        """
        return self._chase_stem(
            g_ones, g_zeros, full, net, g_zeros[net], g_ones[net]
        )

    def _chase_stem(
        self,
        g_ones: List[int],
        g_zeros: List[int],
        full: int,
        seed_net: int,
        stuck_ones: int,
        stuck_zeros: int,
    ) -> int:
        """One stem event chase; the region fast path's only sweep.

        Identical to the stem arm of :meth:`_propagate` (including the
        full-detection early exit) but free of the per-fault stats —
        region chases are shared across faults, so the callers account
        for detect/pattern totals themselves.  Gate evaluations still
        land in ``SIM_STATS`` (they are real kernel work).
        """
        circuit = self.circuit
        reaches = circuit.reaches_output
        if not reaches[seed_net]:
            return 0
        if g_ones[seed_net] == stuck_ones and g_zeros[seed_net] == stuck_zeros:
            return 0
        is_out = circuit.is_output_flag
        gate_table = circuit.gate_table
        gate_out = circuit.gate_out
        gate_levels = circuit.gate_levels
        fan_start = circuit.fanout_start
        fan_gates = circuit.fanout_gates
        f_ones, f_zeros = self._f_ones, self._f_zeros
        net_stamp, gate_stamp = self._net_stamp, self._gate_stamp
        buckets = self._buckets
        self._epoch += 1
        epoch = self._epoch

        f_ones[seed_net] = stuck_ones
        f_zeros[seed_net] = stuck_zeros
        net_stamp[seed_net] = epoch
        detected = 0
        if is_out[seed_net]:
            detected = (g_ones[seed_net] & stuck_zeros) | (
                g_zeros[seed_net] & stuck_ones
            )
            if detected == full:
                return detected

        pending = 0
        level = circuit.max_level + 1
        top_level = 0
        for k in range(fan_start[seed_net], fan_start[seed_net + 1]):
            g = fan_gates[k]
            if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                gate_stamp[g] = epoch
                lvl = gate_levels[g]
                buckets[lvl].append(g)
                pending += 1
                if lvl < level:
                    level = lvl
                if lvl > top_level:
                    top_level = lvl

        gate_evals = 0
        while pending and level <= top_level:
            bucket = buckets[level]
            level += 1
            if not bucket:
                continue
            for gi in bucket:
                pending -= 1
                gate_evals += 1
                op, out_net, ins = gate_table[gi]
                if op >= OP_AND and op <= OP_NOR:
                    if op <= OP_NAND:  # AND / NAND
                        o, z = full, 0
                        for i in ins:
                            if net_stamp[i] == epoch:
                                o &= f_ones[i]
                                z |= f_zeros[i]
                            else:
                                o &= g_ones[i]
                                z |= g_zeros[i]
                        if op == OP_NAND:
                            o, z = z, o
                    else:  # OR / NOR
                        o, z = 0, full
                        for i in ins:
                            if net_stamp[i] == epoch:
                                o |= f_ones[i]
                                z &= f_zeros[i]
                            else:
                                o |= g_ones[i]
                                z &= g_zeros[i]
                        if op == OP_NOR:
                            o, z = z, o
                elif op <= OP_NOT:  # BUF / NOT
                    i = ins[0]
                    if net_stamp[i] == epoch:
                        o, z = f_ones[i], f_zeros[i]
                    else:
                        o, z = g_ones[i], g_zeros[i]
                    if op == OP_NOT:
                        o, z = z, o
                else:  # XOR / XNOR
                    it = iter(ins)
                    i = next(it)
                    if net_stamp[i] == epoch:
                        o, z = f_ones[i], f_zeros[i]
                    else:
                        o, z = g_ones[i], g_zeros[i]
                    for i in it:
                        if net_stamp[i] == epoch:
                            io, iz = f_ones[i], f_zeros[i]
                        else:
                            io, iz = g_ones[i], g_zeros[i]
                        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                    if op == OP_XNOR:
                        o, z = z, o
                if o == g_ones[out_net] and z == g_zeros[out_net]:
                    continue  # event absorbed — fanout stays good
                f_ones[out_net] = o
                f_zeros[out_net] = z
                net_stamp[out_net] = epoch
                if is_out[out_net]:
                    detected |= (g_ones[out_net] & z) | (g_zeros[out_net] & o)
                    if detected == full:
                        del bucket[:]
                        for l in range(level, top_level + 1):
                            if buckets[l]:
                                del buckets[l][:]
                        SIM_STATS["gate_evals"] += gate_evals
                        return detected
                for k in range(fan_start[out_net], fan_start[out_net + 1]):
                    g = fan_gates[k]
                    if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                        gate_stamp[g] = epoch
                        lvl = gate_levels[g]
                        buckets[lvl].append(g)
                        pending += 1
                        if lvl > top_level:
                            top_level = lvl
            del bucket[:]
        SIM_STATS["gate_evals"] += gate_evals
        return detected

    # -- batch conveniences ---------------------------------------------

    def simulate_batch(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: Iterable[Fault],
    ) -> Dict[Fault, int]:
        """Detection masks for every fault over one pattern batch."""
        good, count = self.good_values(patterns)
        fault_list = list(faults)
        masks = self.detect_masks(good, count, fault_list)
        return dict(zip(fault_list, masks))

    def drop_detected(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: List[Fault],
    ) -> Tuple[List[Fault], int]:
        """Partition faults into (remaining, detected-count) for a batch."""
        good, count = self.good_values(patterns)
        remaining = []
        dropped = 0
        masks = self.detect_masks(good, count, faults)
        for fault, mask in zip(faults, masks):
            if mask:
                dropped += 1
            else:
                remaining.append(fault)
        return remaining, dropped

    def useful_pattern_mask(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: List[Fault],
        batch_size: int = 64,
    ) -> int:
        """Bitmask of patterns that detect at least one listed fault.

        Long pattern lists are processed in words of ``batch_size``
        patterns; within a word, fault iteration stops as soon as every
        pattern is already known useful.
        """
        useful = 0
        for start in range(0, len(patterns), batch_size):
            block = patterns[start:start + batch_size]
            good, count = self.good_values(block)
            full = (1 << count) - 1
            word = 0
            for fault in faults:
                word |= self._propagate(good, count, fault, None)
                if word == full:
                    break
            useful |= word << start
        return useful


# -- fault-parallel sharding ---------------------------------------------
#
# Verification-style passes (final verify/prune, coverage checks,
# n-detect quota charging) sweep a fixed collapsed fault list against
# many pattern batches.  Faults are independent under single-fault
# simulation, so the list shards cleanly across worker processes; the
# circuit and the full fault list ship once per worker (pool
# initializer), and each call moves only the packed input rails plus
# the shard's fault indices.  Masks merge back in canonical fault-list
# order, so any worker count is bit-identical to the serial loop.

# Worker-process state installed by :func:`_shard_init`.
_SHARD_SIMULATOR: Optional[FaultSimulator] = None
_SHARD_FAULTS: List[Fault] = []
_SHARD_SHM = None  # cached SharedMemory attachment (one segment per pool)


class ShmAttachError(RuntimeError):
    """A shard worker could not attach the pool's shared-memory segment.

    Raised out of the worker (it pickles cleanly across the pool); the
    parent catches it, retires the shared-memory channel, and redoes
    the call over pickle — a degraded but correct transport.
    """


def _shard_init(circuit: CompiledCircuit, faults: List[Fault]) -> None:
    """Pool initializer: build the per-worker simulator once."""
    global _SHARD_SIMULATOR, _SHARD_FAULTS
    _SHARD_SIMULATOR = FaultSimulator(circuit)
    _SHARD_FAULTS = faults


def _shard_rails(in_ones: List[int], in_zeros: List[int], count: int):
    """Scatter input-net rails onto full-circuit rails and simulate."""
    simulator = _SHARD_SIMULATOR
    circuit = simulator.circuit
    ones = [0] * circuit.net_count
    zeros = [0] * circuit.net_count
    for net_id, o, z in zip(circuit.input_ids, in_ones, in_zeros):
        ones[net_id] = o
        zeros[net_id] = z
    return simulator.good_values_rails(ones, zeros, count)


def _shard_detect(
    indices: List[int], in_ones: List[int], in_zeros: List[int], count: int
) -> List[int]:
    """Worker entry point: detect masks for one shard of fault indices.

    The good machine is re-simulated per worker from the input rails —
    cheaper than pickling full net rails across, and served from the
    worker's own per-circuit memo when the batch repeats.
    """
    simulator = _SHARD_SIMULATOR
    good, n = _shard_rails(in_ones, in_zeros, count)
    faults = _SHARD_FAULTS
    return simulator.detect_masks(good, n, [faults[i] for i in indices])


def _shard_noop() -> None:
    """Prewarm task: forces worker processes to spawn (and fork) *now*.

    Submitting one no-op per worker right after pool construction makes
    the fork inherit the parent's already-built backend plan and overlaps
    process startup with the random phase instead of stalling the first
    real sharded call.
    """


def _shard_window_detect(
    indices: Optional[List[int]],
    in_ones: List[int],
    in_zeros: List[int],
    count: int,
) -> List[int]:
    """Worker entry point: masks for *all* pool faults over one window.

    The pattern-axis dual of :func:`_shard_detect`: instead of one
    worker per fault shard over the full batch, one worker takes the
    full fault list (or the ``indices`` sub-list) over a 64-aligned
    window of the pattern axis.  Used for the wide stream-2 sweeps
    where the per-root region chases — whose cost scales with the word
    count — dominate, so splitting patterns parallelizes the real work
    while fault sharding would duplicate it per worker.
    """
    simulator = _SHARD_SIMULATOR
    good, n = _shard_rails(in_ones, in_zeros, count)
    faults = _SHARD_FAULTS
    if indices is not None:
        faults = [faults[i] for i in indices]
    return simulator.detect_masks(good, n, faults)


def _shard_detect_shm(
    indices: List[int], shm_name: str, row_bytes: int, count: int
) -> List[int]:
    """Worker entry point: like :func:`_shard_detect`, rails via shm.

    The parent publishes the batch's packed input rails into one
    shared-memory segment (ones block then zeros block, one
    ``row_bytes`` little-endian row per input net) before submitting;
    calls are synchronous — the parent collects every future before
    reusing the buffer — so a plain read here is race-free.  The
    attachment is cached per worker; only the shard's fault indices and
    this tiny descriptor cross the pipe.
    """
    global _SHARD_SHM
    simulator = _SHARD_SIMULATOR
    circuit = simulator.circuit
    if _SHARD_SHM is None or _SHARD_SHM.name != shm_name:
        try:
            from multiprocessing import shared_memory

            # Attaching re-registers the name with the (fork-shared)
            # resource tracker; that is a set-idempotent no-op, and the
            # parent's eventual unlink() performs the one unregister
            # that balances it — no manual tracker bookkeeping here.
            _SHARD_SHM = shared_memory.SharedMemory(name=shm_name)
        except Exception as exc:
            raise ShmAttachError(f"cannot attach {shm_name}: {exc}") from exc
    input_count = len(circuit.input_ids)
    data = bytes(_SHARD_SHM.buf[: 2 * input_count * row_bytes])
    from_bytes = int.from_bytes
    rails = [
        from_bytes(data[offset: offset + row_bytes], "little")
        for offset in range(0, len(data), row_bytes)
    ]
    good, n = _shard_rails(rails[:input_count], rails[input_count:], count)
    faults = _SHARD_FAULTS
    return simulator.detect_masks(good, n, [faults[i] for i in indices])


class FaultShardPool:
    """Fault-parallel :meth:`FaultSimulator.detect_masks` over processes.

    Construction ships ``(circuit, faults)`` to every worker once;
    :meth:`detect_masks` then accepts any sub-list of those faults (the
    shrinking ``remaining`` lists of a verify pass) and returns masks in
    the given order.  Degradation is always to the serial simulator:
    when the pool cannot be created (restricted environments), when a
    call has too few faults to amortize the IPC (``min_shard``), or
    when a worker dies mid-call — the affected call is recomputed
    serially and the pool is retired for the rest of the run.

    Pattern rails normally travel to the workers through one
    shared-memory segment created with the pool (the *zero-pickle*
    channel): the parent publishes the packed input rails once per
    call and each worker reads them in place, so only the shard's
    fault indices cross the pickle pipe.  ``REPRO_NO_SHM=1`` disables
    the channel; if a worker cannot attach the segment (chaos,
    sandboxes that mask ``/dev/shm``), the channel is retired and the
    call — and the rest of the run — degrades to pickled rails.
    ``SIM_STATS["shard_bytes_shared"]`` / ``["shard_bytes_pickled"]``
    count the rail bytes moved over each transport.

    The cooperative ambient :class:`~repro.runtime.abort.AbortToken` is
    checked once per call in the parent; shard tasks are batch-sized
    and short, so deadline resolution matches the serial path's
    once-per-batch checks.  Kernel counters (``SIM_STATS``) accrue in
    the worker processes and are not merged back — throughput stats
    are only meaningful for serial runs.
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        faults: Sequence[Fault],
        workers: int,
        simulator: Optional[FaultSimulator] = None,
        min_shard: int = 64,
    ):
        self.circuit = circuit
        self.faults = list(faults)
        self.workers = max(1, workers)
        self.min_shard = max(1, min_shard)
        self._simulator = simulator if simulator is not None else FaultSimulator(circuit)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._index_of: Dict[Fault, int] = {}
        self._shm = None
        # Widest batch the segment can carry: one 64-bit word per lane
        # per input net and rail.  Wider calls fall back to pickle.
        self._shm_row = 8 * circuit.block_lanes
        if self.workers > 1 and len(self.faults) > self.min_shard:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_shard_init,
                    initargs=(circuit, self.faults),
                )
            except (OSError, PermissionError, ValueError):
                self._pool = None  # no pool available: stay serial
            else:
                self._index_of = {fault: i for i, fault in enumerate(self.faults)}
                self._shm = self._create_shm()

    def _create_shm(self):
        """The pool's rail segment, or None (disabled/unavailable)."""
        if os.environ.get("REPRO_NO_SHM", "0") not in ("", "0"):
            return None
        size = 2 * len(self.circuit.input_ids) * self._shm_row
        try:
            from multiprocessing import shared_memory

            return shared_memory.SharedMemory(create=True, size=max(1, size))
        except Exception:
            return None  # no shm on this platform: pickle rails instead

    def detect_masks(
        self, good: RailBatch, pattern_count: int, faults: Sequence[Fault]
    ) -> List[int]:
        """Masks for ``faults`` (a sub-list of the pool's fault list)."""
        get_abort().check()
        fault_list = list(faults)
        pool = self._pool
        if pool is None or len(fault_list) < 2 * self.min_shard:
            return self._simulator.detect_masks(good, pattern_count, fault_list)
        indices = [self._index_of[fault] for fault in fault_list]
        shard_size = -(-len(indices) // self.workers)
        shards = [
            indices[start:start + shard_size]
            for start in range(0, len(indices), shard_size)
        ]
        in_ones = [good.ones[i] for i in self.circuit.input_ids]
        in_zeros = [good.zeros[i] for i in self.circuit.input_ids]
        try:
            if self._shm is not None and pattern_count <= 8 * self._shm_row:
                masks = self._detect_shm(shards, in_ones, in_zeros, pattern_count)
                if masks is not None:
                    return masks
                # Attach failed somewhere: the channel is now retired
                # and the call must be redone over pickled rails.
            return self._detect_pickled(shards, in_ones, in_zeros, pattern_count)
        except BrokenExecutor:
            # A worker died mid-call: retire the pool and recompute the
            # whole call serially — correctness over partial credit.
            self.close()
            return self._simulator.detect_masks(good, pattern_count, fault_list)

    def indices_of(self, faults: Sequence[Fault]) -> List[int]:
        """Positions of ``faults`` in the pool's canonical fault list."""
        index_of = self._index_of
        return [index_of[fault] for fault in faults]

    def prewarm(self) -> None:
        """Start the worker processes now instead of at the first call.

        Fire-and-forget no-ops, one per worker: the forks happen while
        the caller is busy with other work (the engine prewarms right
        after building the backend plan, so every worker inherits it
        warm), and any startup failure simply surfaces at the first
        real call through the usual serial degradation.
        """
        if self._pool is None:
            return
        try:
            for _ in range(self.workers):
                self._pool.submit(_shard_noop)
        except Exception:
            self.close()

    def run_tasks(self, fn, arg_tuples) -> Optional[list]:
        """Fan arbitrary picklable tasks across the pool, in order.

        Returns the per-task results, or None when no pool is available
        (never created, retired, or broken mid-call) — the caller runs
        its serial fallback.  ``fn`` must be a module-level function;
        worker-side state installed by :func:`_shard_init`
        (``_SHARD_SIMULATOR``, ``_SHARD_FAULTS``) is available to it.
        """
        pool = self._pool
        if pool is None:
            return None
        get_abort().check()
        try:
            futures = [pool.submit(fn, *args) for args in arg_tuples]
            return [future.result() for future in futures]
        except BrokenExecutor:
            self.close()
            return None

    def detect_masks_patterns(
        self, good: RailBatch, pattern_count: int, faults: Sequence[Fault]
    ) -> List[int]:
        """Masks for ``faults``, sharded along the *pattern* axis.

        Each worker computes all the faults over one 64-aligned window
        of the batch; the parent ORs the window masks back, shifted to
        their pattern positions.  Dual-rail detection is per-bit
        independent, so the merged masks are bit-identical to
        :meth:`FaultSimulator.detect_masks` over the whole batch — this
        is purely an execution strategy for wide X-free sweeps whose
        region-chase cost scales with the word count.
        """
        get_abort().check()
        fault_list = list(faults)
        words = pattern_count >> 6
        serial = (
            self._pool is None
            or pattern_count % 64
            or words < 2
            or len(fault_list) < self.min_shard
        )
        if serial:
            return self._simulator.detect_masks(good, pattern_count, fault_list)
        indices = [self._index_of[fault] for fault in fault_list]
        window_words = -(-words // self.workers)
        tasks = []
        bases = []
        for first in range(0, words, window_words):
            base = first * 64
            width = min(window_words * 64, pattern_count - base)
            window_full = (1 << width) - 1
            in_ones = [
                (good.ones[i] >> base) & window_full
                for i in self.circuit.input_ids
            ]
            in_zeros = [
                (good.zeros[i] >> base) & window_full
                for i in self.circuit.input_ids
            ]
            tasks.append((indices, in_ones, in_zeros, width))
            bases.append(base)
        results = self.run_tasks(_shard_window_detect, tasks)
        if results is None:
            return self._simulator.detect_masks(good, pattern_count, fault_list)
        masks = [0] * len(fault_list)
        for base, window_masks in zip(bases, results):
            for k, mask in enumerate(window_masks):
                if mask:
                    masks[k] |= mask << base
        return masks

    def _detect_shm(
        self,
        shards: List[List[int]],
        in_ones: List[int],
        in_zeros: List[int],
        pattern_count: int,
    ) -> Optional[List[int]]:
        """One sharded call over the shared-memory rail channel.

        Returns None — after retiring the channel — when any worker
        failed to attach the segment; BrokenExecutor propagates to the
        caller's serial fallback.
        """
        row = self._shm_row
        payload = b"".join(
            value.to_bytes(row, "little") for value in in_ones + in_zeros
        )
        self._shm.buf[: len(payload)] = payload
        name = self._shm.name
        futures = [
            self._pool.submit(_shard_detect_shm, shard, name, row, pattern_count)
            for shard in shards
        ]
        masks: List[int] = []
        failed = False
        for future in futures:
            try:
                masks.extend(future.result())
            except ShmAttachError:
                failed = True
        if failed:
            self._close_shm()
            return None
        SIM_STATS["shard_bytes_shared"] += len(payload)
        return masks

    def _detect_pickled(
        self,
        shards: List[List[int]],
        in_ones: List[int],
        in_zeros: List[int],
        pattern_count: int,
    ) -> List[int]:
        """One sharded call with the rails pickled into every task."""
        futures = [
            self._pool.submit(_shard_detect, shard, in_ones, in_zeros, pattern_count)
            for shard in shards
        ]
        masks: List[int] = []
        for future in futures:
            masks.extend(future.result())
        # Each shard task carries its own copy of both rails; count the
        # minimal big-endian byte footprint of what was serialized.
        SIM_STATS["shard_bytes_pickled"] += len(shards) * sum(
            (value.bit_length() + 7) // 8 for value in in_ones + in_zeros
        )
        return masks

    def _close_shm(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except Exception:
                pass
            self._shm = None

    def close(self) -> None:
        """Shut the pool down; further calls run serially."""
        self._close_shm()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "FaultShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def fault_coverage(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, Optional[int]]],
    faults: List[Fault],
    batch_size: Optional[int] = None,
    workers: int = 1,
) -> float:
    """Fraction of ``faults`` detected by ``patterns``.

    ``batch_size`` defaults to the backend's block width (64 patterns
    per lane); detection is a monotone OR over patterns, so the coverage
    is chunking-invariant.  ``workers`` > 1 shards the fault list across
    a process pool (:class:`FaultShardPool`); results are bit-identical
    to the serial sweep for any worker count.
    """
    if not faults:
        raise ValueError("empty fault list")
    if batch_size is None:
        batch_size = 64 * circuit.block_lanes
    simulator = FaultSimulator(circuit)
    remaining = list(faults)
    with FaultShardPool(circuit, faults, workers, simulator) as pool:
        for start in range(0, len(patterns), batch_size):
            batch = patterns[start:start + batch_size]
            good, count = simulator.good_values(list(batch))
            masks = pool.detect_masks(good, count, remaining)
            remaining = [f for f, m in zip(remaining, masks) if not m]
            if not remaining:
                break
    return 1.0 - len(remaining) / len(faults)
