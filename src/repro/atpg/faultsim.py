"""Event-driven, bit-parallel stuck-at fault simulation.

Parallel-pattern single-fault propagation: the good machine is
simulated once per pattern batch (arbitrarily wide, thanks to Python
integers), then each fault is injected and its effect is chased with a
*levelized event worklist* — only gates whose faulty inputs actually
changed are re-evaluated, instead of rescanning the fault's whole
static fanout cone.  The kernel stops early when

- the event frontier dies (every downstream gate absorbed the fault
  effect),
- the remaining events sit on nets that cannot reach any
  (pseudo-)primary output (such gates are never even scheduled, via
  the circuit's ``reaches_output`` flags), or
- every pattern in the batch already detects the fault
  (``detected == full``).

Fault dropping removes detected faults from consideration as soon as
any pattern in the batch catches them.  All detect masks are
bit-identical to the full-cone reference rescan
(``tests/test_faultsim_kernel.py`` enforces this differentially).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..observability import register_counter
from ..runtime.abort import get_abort
from .compiled import OP_AND, OP_NAND, OP_NOR, OP_NOT, OP_XNOR, CompiledCircuit
from .faults import Fault
from .logicsim import (
    Rail,
    RailBatch,
    eval_rail_op,
    pack_patterns_flat,
    simulate_flat,
)

# Running totals over every FaultSimulator in the process — the
# benchmarks read these to attribute speedups to the kernel
# (faults-simulated-per-second) rather than to pattern-count drift.
SIM_STATS = {"detect_calls": 0, "fault_pattern_evals": 0, "gate_evals": 0}


def reset_sim_stats() -> None:
    """Zero the kernel counters (benchmark bookkeeping)."""
    for key in SIM_STATS:
        SIM_STATS[key] = 0


def sim_stats() -> Dict[str, int]:
    """A snapshot of the kernel counters."""
    return dict(SIM_STATS)


# Tracer metric names for the kernel counters above.  The inner kernel
# never calls the tracer (per-event overhead would be measurable);
# instead callers snapshot SIM_STATS around a span and publish the
# delta once via :func:`publish_kernel_stats`.
KERNEL_METRICS = {
    "detect_calls": register_counter(
        "faultsim.detect_calls", "fault-simulation kernel invocations"
    ),
    "fault_pattern_evals": register_counter(
        "faultsim.fault_pattern_evals", "fault x pattern pairs simulated"
    ),
    "gate_evals": register_counter(
        "faultsim.gate_evals", "gate re-evaluations in the event kernel"
    ),
}


def publish_kernel_stats(tracer, baseline: Dict[str, int]) -> None:
    """Count the SIM_STATS growth since ``baseline`` into ``tracer``."""
    for key, metric in KERNEL_METRICS.items():
        delta = SIM_STATS[key] - baseline.get(key, 0)
        if delta:
            tracer.count(metric, delta)


GoodValues = Union[RailBatch, List[Rail]]


class FaultSimulator:
    """Reusable fault-simulation context for one compiled circuit.

    Cone and reachability precomputation lives on the
    :class:`CompiledCircuit` (computed once per circuit), so any number
    of simulator instances — e.g. one per n-detect pass — share it.
    The per-instance state is only the epoch-stamped scratch arrays of
    the event kernel.
    """

    def __init__(self, circuit: CompiledCircuit):
        self.circuit = circuit
        net_count = circuit.net_count
        # Epoch-stamped scratch: a net/gate is "touched this call" iff
        # its stamp equals the current epoch, so no per-call clearing.
        self._f_ones = [0] * net_count
        self._f_zeros = [0] * net_count
        self._net_stamp = [0] * net_count
        self._gate_stamp = [0] * len(circuit.gates)
        self._buckets: List[List[int]] = [[] for _ in range(circuit.max_level + 1)]
        self._epoch = 0

    def good_values(
        self, patterns: Sequence[Dict[int, Optional[int]]]
    ) -> Tuple[RailBatch, int]:
        """Simulate the fault-free machine over a pattern batch.

        Once per batch (the granularity is coarse enough to be free),
        the ambient abort token gets a cooperative deadline check — this
        is the kernel's only concession to the runtime layer above it.
        """
        get_abort().check()
        ones, zeros = pack_patterns_flat(self.circuit, patterns)
        simulate_flat(self.circuit, ones, zeros, len(patterns))
        return RailBatch(ones, zeros, len(patterns)), len(patterns)

    def detect_mask(
        self,
        good: GoodValues,
        pattern_count: int,
        fault: Fault,
    ) -> int:
        """Bitmask of batch patterns that detect ``fault``.

        A pattern detects the fault when some (pseudo-)primary output
        has a defined good value and the opposite defined faulty value.
        """
        return self._propagate(good, pattern_count, fault, None)

    def faulty_output_rails(
        self,
        good: GoodValues,
        pattern_count: int,
        fault: Fault,
    ) -> Dict[int, Rail]:
        """Faulty rails of every output net the fault effect reaches.

        Only outputs whose faulty rail differs from the good rail are
        returned.  Shares the event kernel with :meth:`detect_mask`
        (minus the ``detected == full`` early exit, since callers like
        diagnosis need every output).
        """
        touched: List[int] = []
        self._propagate(good, pattern_count, fault, touched)
        f_ones, f_zeros = self._f_ones, self._f_zeros
        return {net_id: (f_ones[net_id], f_zeros[net_id]) for net_id in touched}

    # -- the event-driven kernel ----------------------------------------

    def _propagate(
        self,
        good: GoodValues,
        pattern_count: int,
        fault: Fault,
        collect: Optional[List[int]],
    ) -> int:
        """Inject ``fault`` and chase its effect; returns the detect mask.

        With ``collect`` given, every faulty output net id is appended
        to it and the full-detection early exit is disabled.
        """
        circuit = self.circuit
        if type(good) is RailBatch:
            g_ones, g_zeros = good.ones, good.zeros
        else:  # legacy list-of-rails form
            g_ones = [rail[0] for rail in good]
            g_zeros = [rail[1] for rail in good]
        full = (1 << pattern_count) - 1
        SIM_STATS["detect_calls"] += 1
        SIM_STATS["fault_pattern_evals"] += pattern_count

        reaches = circuit.reaches_output
        is_out = circuit.is_output_flag
        gate_table = circuit.gate_table
        gate_out = circuit.gate_out
        gate_levels = circuit.gate_levels
        fan_start = circuit.fanout_start
        fan_gates = circuit.fanout_gates
        f_ones, f_zeros = self._f_ones, self._f_zeros
        net_stamp, gate_stamp = self._net_stamp, self._gate_stamp
        buckets = self._buckets
        self._epoch += 1
        epoch = self._epoch

        stuck_ones, stuck_zeros = (full, 0) if fault.stuck_at else (0, full)

        # -- seed the worklist with the fault site ----------------------
        if fault.is_branch:
            seed_gate = fault.gate_index
            op, seed_net, ins = gate_table[seed_gate]
            if not reaches[seed_net]:
                return 0
            inputs = [(g_ones[i], g_zeros[i]) for i in ins]
            inputs[fault.pin] = (stuck_ones, stuck_zeros)
            o, z = eval_rail_op(op, inputs, full)
            if o == g_ones[seed_net] and z == g_zeros[seed_net]:
                return 0
            gate_stamp[seed_gate] = epoch  # never re-evaluate the faulty gate
        else:
            seed_net = fault.net
            if not reaches[seed_net]:
                return 0
            if g_ones[seed_net] == stuck_ones and g_zeros[seed_net] == stuck_zeros:
                return 0
            o, z = stuck_ones, stuck_zeros
        f_ones[seed_net] = o
        f_zeros[seed_net] = z
        net_stamp[seed_net] = epoch
        detected = 0
        if is_out[seed_net]:
            detected = (g_ones[seed_net] & z) | (g_zeros[seed_net] & o)
            if collect is not None:
                collect.append(seed_net)
            elif detected == full:
                return detected

        pending = 0
        level = circuit.max_level + 1
        top_level = 0
        for k in range(fan_start[seed_net], fan_start[seed_net + 1]):
            g = fan_gates[k]
            if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                gate_stamp[g] = epoch
                lvl = gate_levels[g]
                buckets[lvl].append(g)
                pending += 1
                if lvl < level:
                    level = lvl
                if lvl > top_level:
                    top_level = lvl

        # -- levelized event sweep --------------------------------------
        # Events only travel to strictly higher levels, so each touched
        # gate is evaluated exactly once, with all its inputs final.
        gate_evals = 0
        while pending and level <= top_level:
            bucket = buckets[level]
            level += 1
            if not bucket:
                continue
            for gi in bucket:
                pending -= 1
                gate_evals += 1
                op, out_net, ins = gate_table[gi]
                if op >= OP_AND and op <= OP_NOR:
                    if op <= OP_NAND:  # AND / NAND
                        o, z = full, 0
                        for i in ins:
                            if net_stamp[i] == epoch:
                                o &= f_ones[i]
                                z |= f_zeros[i]
                            else:
                                o &= g_ones[i]
                                z |= g_zeros[i]
                        if op == OP_NAND:
                            o, z = z, o
                    else:  # OR / NOR
                        o, z = 0, full
                        for i in ins:
                            if net_stamp[i] == epoch:
                                o |= f_ones[i]
                                z &= f_zeros[i]
                            else:
                                o |= g_ones[i]
                                z &= g_zeros[i]
                        if op == OP_NOR:
                            o, z = z, o
                elif op <= OP_NOT:  # BUF / NOT
                    i = ins[0]
                    if net_stamp[i] == epoch:
                        o, z = f_ones[i], f_zeros[i]
                    else:
                        o, z = g_ones[i], g_zeros[i]
                    if op == OP_NOT:
                        o, z = z, o
                else:  # XOR / XNOR
                    it = iter(ins)
                    i = next(it)
                    if net_stamp[i] == epoch:
                        o, z = f_ones[i], f_zeros[i]
                    else:
                        o, z = g_ones[i], g_zeros[i]
                    for i in it:
                        if net_stamp[i] == epoch:
                            io, iz = f_ones[i], f_zeros[i]
                        else:
                            io, iz = g_ones[i], g_zeros[i]
                        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                    if op == OP_XNOR:
                        o, z = z, o
                if o == g_ones[out_net] and z == g_zeros[out_net]:
                    continue  # event absorbed — fanout stays good
                f_ones[out_net] = o
                f_zeros[out_net] = z
                net_stamp[out_net] = epoch
                if is_out[out_net]:
                    detected |= (g_ones[out_net] & z) | (g_zeros[out_net] & o)
                    if collect is not None:
                        collect.append(out_net)
                    elif detected == full:
                        # Drain the worklist so the scratch buckets are
                        # clean for the next call.
                        del bucket[:]
                        for l in range(level, top_level + 1):
                            if buckets[l]:
                                del buckets[l][:]
                        SIM_STATS["gate_evals"] += gate_evals
                        return detected
                for k in range(fan_start[out_net], fan_start[out_net + 1]):
                    g = fan_gates[k]
                    if gate_stamp[g] != epoch and reaches[gate_out[g]]:
                        gate_stamp[g] = epoch
                        lvl = gate_levels[g]
                        buckets[lvl].append(g)
                        pending += 1
                        if lvl > top_level:
                            top_level = lvl
            del bucket[:]
        SIM_STATS["gate_evals"] += gate_evals
        return detected

    # -- batch conveniences ---------------------------------------------

    def simulate_batch(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: Iterable[Fault],
    ) -> Dict[Fault, int]:
        """Detection masks for every fault over one pattern batch."""
        good, count = self.good_values(patterns)
        return {fault: self.detect_mask(good, count, fault) for fault in faults}

    def drop_detected(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: List[Fault],
    ) -> Tuple[List[Fault], int]:
        """Partition faults into (remaining, detected-count) for a batch."""
        good, count = self.good_values(patterns)
        remaining = []
        dropped = 0
        for fault in faults:
            if self._propagate(good, count, fault, None):
                dropped += 1
            else:
                remaining.append(fault)
        return remaining, dropped

    def useful_pattern_mask(
        self,
        patterns: Sequence[Dict[int, Optional[int]]],
        faults: List[Fault],
        batch_size: int = 64,
    ) -> int:
        """Bitmask of patterns that detect at least one listed fault.

        Long pattern lists are processed in words of ``batch_size``
        patterns; within a word, fault iteration stops as soon as every
        pattern is already known useful.
        """
        useful = 0
        for start in range(0, len(patterns), batch_size):
            block = patterns[start:start + batch_size]
            good, count = self.good_values(block)
            full = (1 << count) - 1
            word = 0
            for fault in faults:
                word |= self._propagate(good, count, fault, None)
                if word == full:
                    break
            useful |= word << start
        return useful


def fault_coverage(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, Optional[int]]],
    faults: List[Fault],
    batch_size: int = 64,
) -> float:
    """Fraction of ``faults`` detected by ``patterns``."""
    if not faults:
        raise ValueError("empty fault list")
    simulator = FaultSimulator(circuit)
    remaining = list(faults)
    for start in range(0, len(patterns), batch_size):
        batch = patterns[start:start + batch_size]
        remaining, _ = simulator.drop_detected(batch, remaining)
        if not remaining:
            break
    return 1.0 - len(remaining) / len(faults)
