"""Random-pattern test generation phase.

Deterministic ATPG is expensive, so every practical flow (ATALANTA
included) first throws cheap random patterns at the fault list,
keeping the ones that detect something new and dropping the detected
faults.  The phase stops when a batch's yield falls below a threshold —
the remaining, random-pattern-resistant faults go to PODEM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..observability import get_tracer, register_counter
from ..runtime.abort import get_abort
from .compiled import CompiledCircuit
from .faults import Fault
from .faultsim import FaultShardPool, FaultSimulator
from .patterns import TestPattern, pattern_from_rails, random_pattern_rails
from .streams import stream_rails

RANDOM_BATCHES = register_counter(
    "random_phase.batches", "random-pattern batches simulated"
)
RANDOM_PATTERNS_KEPT = register_counter(
    "random_phase.patterns_kept", "random patterns kept as first detectors"
)
RANDOM_FAULTS_DROPPED = register_counter(
    "random_phase.faults_dropped", "faults detected (dropped) by random patterns"
)


@dataclass
class RandomPhaseResult:
    patterns: List[TestPattern] = field(default_factory=list)
    remaining_faults: List[Fault] = field(default_factory=list)
    detected: int = 0
    batches: int = 0


def run_random_phase(
    circuit: CompiledCircuit,
    faults: List[Fault],
    seed: int = 0,
    batch_size: int = 64,
    max_batches: int = 32,
    min_yield: int = 1,
    stream: int = 1,
    pool: Optional[FaultShardPool] = None,
) -> RandomPhaseResult:
    """Generate random patterns until they stop paying for themselves.

    Within each batch, only patterns that are the *first* detector of at
    least one remaining fault are kept, so the kept set carries no
    obviously redundant members.

    ``stream`` selects the pattern-stream epoch
    (:mod:`repro.atpg.streams`): 1 draws the legacy sequential Mersenne
    stream, 2 the counter-based order-independent stream.  ``pool`` (a
    :class:`~repro.atpg.faultsim.FaultShardPool` over exactly
    ``faults``) optionally shards wide detect-mask sweeps along the
    pattern axis — a pure execution detail, bit-identical to serial.
    """
    tracer = get_tracer()
    with tracer.span("random_phase"):
        result = _run_batches(
            circuit, faults, seed, batch_size, max_batches, min_yield,
            stream, pool,
        )
        if tracer.enabled:
            tracer.count(RANDOM_BATCHES, result.batches)
            tracer.count(RANDOM_PATTERNS_KEPT, len(result.patterns))
            tracer.count(RANDOM_FAULTS_DROPPED, result.detected)
    return result


def _run_batches(
    circuit: CompiledCircuit,
    faults: List[Fault],
    seed: int,
    batch_size: int,
    max_batches: int,
    min_yield: int,
    stream: int = 1,
    pool: Optional[FaultShardPool] = None,
) -> RandomPhaseResult:
    simulator = FaultSimulator(circuit)
    if stream == 2 and batch_size % 64:
        raise ValueError(
            f"stream-2 batches must be 64-aligned, got batch_size={batch_size}"
        )
    rng = random.Random(seed) if stream == 1 else None
    result = RandomPhaseResult(remaining_faults=list(faults))
    abort = get_abort()
    input_ids = circuit.input_ids
    # The backend's lane count widens each draw/simulate round-trip to
    # several 64-pattern batches at once; the per-batch bookkeeping below
    # then replays the wide detect masks chunk by chunk.  Dual-rail ops
    # are per-bit independent, so each 64-bit slice of a wide mask equals
    # the mask a narrow round would have computed — batches, kept
    # patterns, dropped faults, and the early-exit point are identical
    # for every lane count.
    lanes = circuit.block_lanes
    batch_full = (1 << batch_size) - 1
    while result.remaining_faults and result.batches < max_batches:
        abort.check()
        # The block is drawn directly in packed dual-rail form — same
        # RNG stream as chunk_count * batch_size random_pattern() calls
        # (the contract random_pattern_rails documents), with no
        # per-pattern dicts and no pack_patterns_flat repack.  Only the
        # handful of kept first detectors are materialized back into
        # TestPattern form below.  When a chunk's yield stops the phase
        # early, the already-drawn later chunks are simply discarded;
        # the rng is local, so the over-draw leaks nowhere.
        chunk_count = min(lanes, max_batches - result.batches)
        count = batch_size * chunk_count
        if stream == 2:
            # Counter stream: the window's bits depend only on the
            # pattern indices it covers, never on draw history — the
            # over-draw-and-discard of the wide path is literally free.
            ones, zeros = stream_rails(
                input_ids, seed, result.batches * batch_size, count,
                circuit.net_count,
            )
        else:
            ones, zeros = random_pattern_rails(
                input_ids, rng, count, circuit.net_count
            )
        good, count = simulator.good_values_rails(ones, zeros, count)
        if pool is not None and count >= 128:
            masks = pool.detect_masks_patterns(
                good, count, result.remaining_faults
            )
        else:
            masks = simulator.detect_masks(good, count, result.remaining_faults)
        pairs = list(zip(result.remaining_faults, masks))
        stop = False
        for chunk in range(chunk_count):
            base = chunk * batch_size
            first_detector = [False] * batch_size
            survivors = []
            detected_here = 0
            for fault, mask in pairs:
                sub = (mask >> base) & batch_full
                if sub:
                    detected_here += 1
                    first_detector[(sub & -sub).bit_length() - 1] = True
                else:
                    survivors.append((fault, mask))
            result.batches += 1
            result.detected += detected_here
            pairs = survivors
            result.patterns.extend(
                pattern_from_rails(input_ids, good.ones, base + bit)
                for bit, keep in enumerate(first_detector)
                if keep
            )
            if detected_here < min_yield:
                stop = True
                break
            if not pairs:
                break
        result.remaining_faults = [fault for fault, _ in pairs]
        if stop:
            break
    return result
