"""Random-pattern test generation phase.

Deterministic ATPG is expensive, so every practical flow (ATALANTA
included) first throws cheap random patterns at the fault list,
keeping the ones that detect something new and dropping the detected
faults.  The phase stops when a batch's yield falls below a threshold —
the remaining, random-pattern-resistant faults go to PODEM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..observability import get_tracer, register_counter
from ..runtime.abort import get_abort
from .compiled import CompiledCircuit
from .faults import Fault
from .faultsim import FaultSimulator
from .patterns import TestPattern, pattern_from_rails, random_pattern_rails

RANDOM_BATCHES = register_counter(
    "random_phase.batches", "random-pattern batches simulated"
)
RANDOM_PATTERNS_KEPT = register_counter(
    "random_phase.patterns_kept", "random patterns kept as first detectors"
)
RANDOM_FAULTS_DROPPED = register_counter(
    "random_phase.faults_dropped", "faults detected (dropped) by random patterns"
)


@dataclass
class RandomPhaseResult:
    patterns: List[TestPattern] = field(default_factory=list)
    remaining_faults: List[Fault] = field(default_factory=list)
    detected: int = 0
    batches: int = 0


def run_random_phase(
    circuit: CompiledCircuit,
    faults: List[Fault],
    seed: int = 0,
    batch_size: int = 64,
    max_batches: int = 32,
    min_yield: int = 1,
) -> RandomPhaseResult:
    """Generate random patterns until they stop paying for themselves.

    Within each batch, only patterns that are the *first* detector of at
    least one remaining fault are kept, so the kept set carries no
    obviously redundant members.
    """
    tracer = get_tracer()
    with tracer.span("random_phase"):
        result = _run_batches(
            circuit, faults, seed, batch_size, max_batches, min_yield
        )
        if tracer.enabled:
            tracer.count(RANDOM_BATCHES, result.batches)
            tracer.count(RANDOM_PATTERNS_KEPT, len(result.patterns))
            tracer.count(RANDOM_FAULTS_DROPPED, result.detected)
    return result


def _run_batches(
    circuit: CompiledCircuit,
    faults: List[Fault],
    seed: int,
    batch_size: int,
    max_batches: int,
    min_yield: int,
) -> RandomPhaseResult:
    simulator = FaultSimulator(circuit)
    rng = random.Random(seed)
    result = RandomPhaseResult(remaining_faults=list(faults))
    abort = get_abort()
    input_ids = circuit.input_ids
    while result.remaining_faults and result.batches < max_batches:
        abort.check()
        # The batch is drawn directly in packed dual-rail form — same
        # RNG stream as batch_size random_pattern() calls (the contract
        # random_pattern_rails documents), with no per-pattern dicts and
        # no pack_patterns_flat repack.  Only the handful of kept first
        # detectors are materialized back into TestPattern form below.
        ones, zeros = random_pattern_rails(
            input_ids, rng, batch_size, circuit.net_count
        )
        good, count = simulator.good_values_rails(ones, zeros, batch_size)
        first_detector = [False] * count
        survivors = []
        detected_here = 0
        masks = simulator.detect_masks(good, count, result.remaining_faults)
        for fault, mask in zip(result.remaining_faults, masks):
            if mask:
                detected_here += 1
                first_detector[(mask & -mask).bit_length() - 1] = True
            else:
                survivors.append(fault)
        result.batches += 1
        result.detected += detected_here
        result.remaining_faults = survivors
        result.patterns.extend(
            pattern_from_rails(input_ids, good.ones, bit)
            for bit, keep in enumerate(first_detector)
            if keep
        )
        if detected_here < min_yield:
            break
    return result
