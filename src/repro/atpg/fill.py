"""X-fill strategies for partial test patterns.

ATPG leaves most stimulus bits X; *something* must fill them before
delivery, and the choice is a real design lever:

* ``random`` — the default elsewhere in the package; maximizes the
  chance of incidental detections;
* ``zero`` / ``one`` — constant fill; long runs, so run-length
  compression collapses (the EDT-era observation);
* ``adjacent`` — repeat the previous specified value along the scan
  order; minimizes care-bit-to-fill transitions, the standard low-power
  fill (shift power tracks the number of transitions shifted through
  the chains).

:func:`shift_transitions` provides the weighted-switching-activity
proxy used to compare the strategies, and the fill study in the tests
pins the expected ordering: adjacent-fill minimizes transitions,
constant fill maximizes run-length compressibility, random fill
maximizes neither.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .compiled import CompiledCircuit
from .patterns import TestPattern, TestSet

FILL_STRATEGIES = ("random", "zero", "one", "adjacent")


def fill_pattern(
    pattern: TestPattern,
    input_ids: Sequence[int],
    strategy: str = "random",
    rng: Optional[random.Random] = None,
) -> TestPattern:
    """Fill one pattern's X bits over ``input_ids`` (scan order)."""
    if strategy not in FILL_STRATEGIES:
        raise ValueError(
            f"unknown fill strategy {strategy!r}; choose from {FILL_STRATEGIES}"
        )
    assignments: Dict[int, int] = dict(pattern.assignments)
    if strategy == "random":
        rng = rng or random.Random(0)
        for net_id in input_ids:
            if net_id not in assignments:
                assignments[net_id] = rng.getrandbits(1)
    elif strategy in ("zero", "one"):
        value = 0 if strategy == "zero" else 1
        for net_id in input_ids:
            if net_id not in assignments:
                assignments[net_id] = value
    else:  # adjacent
        previous = 0
        for net_id in input_ids:
            specified = assignments.get(net_id)
            if specified is None:
                assignments[net_id] = previous
            else:
                previous = specified
    return TestPattern(assignments)


def fill_test_set(
    test_set: TestSet,
    circuit: CompiledCircuit,
    strategy: str = "random",
    seed: int = 0,
) -> TestSet:
    """Fill every pattern of a set with one strategy (one RNG overall)."""
    rng = random.Random(seed)
    return TestSet(
        circuit_name=test_set.circuit_name,
        patterns=[
            fill_pattern(pattern, circuit.input_ids, strategy, rng)
            for pattern in test_set.patterns
        ],
    )


def shift_transitions(
    test_set: TestSet, input_ids: Sequence[int]
) -> int:
    """Total adjacent-bit transitions across all stimulus streams.

    The standard proxy for scan shift power: every 0-to-1 or 1-to-0
    boundary in a serial load toggles every cell it passes through.
    X bits (unfilled patterns) are skipped conservatively.
    """
    total = 0
    for pattern in test_set.patterns:
        previous: Optional[int] = None
        for net_id in input_ids:
            value = pattern.assignments.get(net_id)
            if value is None:
                continue
            if previous is not None and value != previous:
                total += 1
            previous = value
    return total


def fill_strategy_report(
    test_set: TestSet,
    circuit: CompiledCircuit,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Per-strategy transitions and run-length compressibility.

    Input ``test_set`` should be the *partial* (pre-fill) patterns; the
    report fills it each way and measures both costs, making the
    power-vs-compression-vs-coverage triangle concrete.
    """
    from .compression import compress_streams, pattern_streams

    report: Dict[str, Dict[str, float]] = {}
    for strategy in FILL_STRATEGIES:
        filled = fill_test_set(test_set, circuit, strategy, seed=seed)
        compression = compress_streams(
            strategy, pattern_streams(circuit, filled)
        )
        report[strategy] = {
            "transitions": float(shift_transitions(filled, circuit.input_ids)),
            "run_length_ratio": compression.run_length_ratio,
        }
    return report
