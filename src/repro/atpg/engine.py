"""The complete ATPG flow: random phase, PODEM, compaction, verification.

This is the reproduction's stand-in for ATALANTA: given a (full-scan)
netlist it produces a compacted, fully specified stuck-at test set and
reports the pattern count — the ``T`` that every TDV formula of the
paper consumes.  The flow is deterministic for a given seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..circuit.cones import Cone, extract_cones
from ..circuit.netlist import Netlist
from ..observability import get_tracer, register_counter
from ..runtime.abort import get_abort
from ..runtime.config import AtpgConfig
from .backends import BACKEND_RUNS
from .compaction import static_compact
from .compiled import CompiledCircuit
from .faults import Fault, collapse_faults
from . import faultsim as _faultsim
from .faultsim import (
    FaultShardPool,
    FaultSimulator,
    publish_kernel_stats,
    sim_stats,
)
from .logicsim import (
    RailBatch,
    pack_full_patterns_flat,
    pack_patterns_flat,
    simulate_flat_sparse,
)
from .patterns import TestPattern, TestSet
from .podem import Podem, PodemOutcome
from .random_phase import run_random_phase
from .streams import fill_test_set

ATPG_RUNS = register_counter("atpg.runs", "generate_tests invocations")
ATPG_FAULTS_TOTAL = register_counter("atpg.faults.total", "collapsed faults targeted")
ATPG_FAULTS_DETECTED = register_counter("atpg.faults.detected", "faults detected")
ATPG_FAULTS_UNTESTABLE = register_counter(
    "atpg.faults.untestable", "faults proven untestable"
)
ATPG_FAULTS_ABORTED = register_counter(
    "atpg.faults.aborted", "faults aborted at the backtrack limit"
)
ATPG_PATTERNS_RANDOM = register_counter(
    "atpg.patterns.random", "patterns kept by the random phase"
)
ATPG_PATTERNS_DETERMINISTIC = register_counter(
    "atpg.patterns.deterministic", "deterministic patterns after compaction"
)
ATPG_PATTERNS_PRE_COMPACTION = register_counter(
    "atpg.patterns.pre_compaction", "deterministic patterns before compaction"
)
ATPG_PATTERNS_FINAL = register_counter(
    "atpg.patterns.final", "patterns kept after verify/prune (the T of the paper)"
)


@dataclass
class AtpgResult:
    """Everything the experiments need from one ATPG run."""

    circuit_name: str
    test_set: TestSet
    fault_count: int
    detected_count: int
    untestable: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)
    random_pattern_count: int = 0
    deterministic_pattern_count: int = 0
    pre_compaction_count: int = 0

    @property
    def pattern_count(self) -> int:
        """The ``T`` of the TDV formulas."""
        return len(self.test_set)

    @property
    def fault_coverage(self) -> float:
        return self.detected_count / self.fault_count if self.fault_count else 1.0

    @property
    def testable_coverage(self) -> float:
        """Coverage over faults not proven untestable."""
        testable = self.fault_count - len(self.untestable)
        return self.detected_count / testable if testable else 1.0


class _PatternBlock:
    """Up to 64 recent patterns packed into one fault-dropping word.

    The deterministic phase used to fault-simulate every queued fault
    against each fresh PODEM pattern individually.  This block instead
    accumulates the good-machine rails of successive patterns into one
    packed word (each pattern is simulated once at width 1 and OR-merged
    into its own bit column — bit slices are independent, so the merge
    equals simulating the patterns together).  Queued faults are then
    checked lazily: once when popped, and against the whole word when
    the block fills and :meth:`flush` filters the queue in a single
    64-wide pass.  The surviving faults, their order, and every PODEM
    call are bit-identical to the one-pattern-at-a-time flow.
    """

    CAPACITY = 64

    __slots__ = ("_simulator", "_circuit", "capacity", "ones", "zeros", "count")

    def __init__(self, simulator: FaultSimulator):
        self._simulator = simulator
        self._circuit = simulator.circuit
        # Wide-lane backends widen the block to several 64-bit words.
        # The skip invariant — a fault is dropped iff some previously
        # generated pattern detects it — is capacity-independent
        # (``detects`` always checks everything since the last flush, and
        # flushed patterns already filtered the queue), so every PODEM
        # decision stays bit-identical at any width.
        self.capacity = self.CAPACITY * self._circuit.block_lanes
        self.ones: List[int] = []
        self.zeros: List[int] = []
        self.count = 0

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    def add(self, pattern: TestPattern) -> None:
        """Simulate one (partial) pattern and merge it into the block."""
        circuit = self._circuit
        ones, zeros = pack_patterns_flat(circuit, [pattern.assignments])
        # PODEM patterns specify a narrow cone of care bits; the sparse
        # sweep touches only the gates that cone reaches.
        simulate_flat_sparse(circuit, ones, zeros, 1)
        if self.count == 0:
            self.ones = ones
            self.zeros = zeros
        else:
            shift = self.count
            block_ones, block_zeros = self.ones, self.zeros
            for net_id, one in enumerate(ones):
                if one:
                    block_ones[net_id] |= one << shift
            for net_id, zero in enumerate(zeros):
                if zero:
                    block_zeros[net_id] |= zero << shift
        self.count += 1

    def detects(self, fault: Fault) -> bool:
        """Whether any accumulated pattern provably detects the fault."""
        if self.count == 0:
            return False
        good = RailBatch(self.ones, self.zeros, self.count)
        return bool(self._simulator.detect_mask(good, self.count, fault))

    def flush(self, queue: Deque[Fault]) -> None:
        """Filter the whole queue against the block, then reset it."""
        if self.count == 0:
            return
        good = RailBatch(self.ones, self.zeros, self.count)
        masks = self._simulator.detect_masks(good, self.count, queue)
        survivors = [
            fault for fault, mask in zip(queue, masks) if not mask
        ]
        queue.clear()
        queue.extend(survivors)
        self.ones = []
        self.zeros = []
        self.count = 0


def generate_tests(
    netlist: Netlist,
    seed: int = 0,
    backtrack_limit: int = 100,
    random_batches: int = 32,
    compact: bool = True,
    faults: Optional[List[Fault]] = None,
    dynamic_compaction: int = 0,
    config: Optional[AtpgConfig] = None,
    circuit: Optional[CompiledCircuit] = None,
    workers: int = 1,
    stream: int = 1,
) -> AtpgResult:
    """Run the full ATPG flow on a netlist's full-scan view.

    Phases: fault collapsing, random-pattern bootstrap with fault
    dropping, PODEM for the resistant faults (with lazy fault dropping
    against a packed block of recent patterns), greedy static compaction
    of the partial patterns, deterministic X-fill, and a final
    verification fault simulation that also prunes patterns detecting
    nothing new.

    ``dynamic_compaction`` > 0 enables secondary targeting: after each
    PODEM success, up to that many queued faults are attempted with the
    fresh pattern's assignments frozen, extending the pattern instead
    of starting new ones — fewer, denser patterns at some CPU cost.

    ``config`` is the bundled form of the engine knobs
    (:class:`repro.runtime.config.AtpgConfig`); when given it overrides
    the individual keyword arguments, so a run's identity — what the
    runtime cache keys results on — lives in one value.

    ``circuit`` optionally supplies an already-compiled view of
    ``netlist`` so repeated runs (e.g. the n-detect passes) share one
    compilation and its memoized cone/reachability precomputation.  It
    is pure shared state, never part of a run's identity, and does not
    enter the :meth:`~repro.runtime.config.AtpgConfig.fingerprint`.

    ``workers`` > 1 shards the final verification fault simulation
    across a process pool (:class:`~repro.atpg.faultsim.FaultShardPool`);
    the merged masks are bit-identical to the serial pass, so — like
    ``circuit`` — it is an execution detail, never part of a run's
    identity, and deliberately not an :class:`AtpgConfig` field.

    ``stream`` selects the pattern-stream epoch
    (:mod:`repro.atpg.streams`).  Stream 1 (default) is the legacy
    sequential draw order, byte-identical to every historical run.
    Stream 2 is the counter-based order-independent generator: random
    blocks are drawn as pure functions of the pattern index, X-fill is
    keyed per pattern, the deterministic phase runs fault-sharded
    across ``workers`` in canonical rounds with cross-shard
    detected-fault exchange, and verification credits keepers from the
    random phase's own bookkeeping.  Stream-2 results are byte-identical
    across worker counts and backends — only against *each other*, not
    against stream 1; the epoch is part of the run identity
    (:class:`AtpgConfig` fingerprints it).
    """
    if config is not None:
        seed = config.seed
        backtrack_limit = config.backtrack_limit
        random_batches = config.random_batches
        compact = config.compact
        dynamic_compaction = config.dynamic_compaction
        stream = config.stream

    tracer = get_tracer()
    kernel_baseline = sim_stats() if tracer.enabled else None
    with tracer.span("atpg", circuit=netlist.name, seed=seed):
        with tracer.span("compile"):
            if circuit is None:
                circuit = CompiledCircuit(
                    netlist, backend=config.backend if config is not None else None
                )
            if faults is None:
                faults = collapse_faults(circuit)
            all_faults = list(faults)

        simulator = FaultSimulator(circuit)
        pool: Optional[FaultShardPool] = None
        if stream == 2 and workers > 1:
            # Build the backend's derived tables before the pool forks,
            # so every worker inherits them warm; the no-op prewarm
            # overlaps process startup with the random phase below.
            circuit.backend.prepare(circuit)
            pool = FaultShardPool(circuit, all_faults, workers, simulator)
            pool.prewarm()
        try:
            random_result = run_random_phase(
                circuit, all_faults, seed=seed, max_batches=random_batches,
                stream=stream, pool=pool,
            )
            remaining = random_result.remaining_faults

            deterministic: List[TestPattern] = []
            untestable: List[Fault] = []
            aborted: List[Fault] = []
            abort = get_abort()
            with tracer.span("podem"):
                if stream == 2:
                    deterministic, untestable, aborted = _podem_stream2(
                        circuit,
                        simulator,
                        remaining,
                        backtrack_limit,
                        dynamic_compaction,
                        pool,
                    )
                else:
                    podem = Podem(circuit, backtrack_limit=backtrack_limit)
                    queue: Deque[Fault] = deque(remaining)
                    block = _PatternBlock(simulator)
                    while queue:
                        abort.check()
                        fault = queue.popleft()
                        # Lazy fault dropping: a fault detected by any
                        # pattern since the last flush is discarded here,
                        # exactly where the eager per-pattern filter
                        # would already have removed it.
                        if block.detects(fault):
                            continue
                        result = podem.generate(fault)
                        if result.outcome is PodemOutcome.UNTESTABLE:
                            untestable.append(fault)
                            continue
                        if result.outcome is PodemOutcome.ABORTED:
                            aborted.append(fault)
                            continue
                        pattern = result.pattern
                        if dynamic_compaction > 0:
                            pattern = _extend_with_secondary_targets(
                                podem,
                                pattern,
                                _pop_secondary_candidates(
                                    queue, block, dynamic_compaction
                                ),
                            )
                        deterministic.append(pattern)
                        block.add(pattern)
                        if block.full:
                            block.flush(queue)

            pre_compaction = len(deterministic)
            with tracer.span("compact"):
                if compact and deterministic:
                    deterministic = static_compact(deterministic)

            combined = TestSet(
                circuit_name=netlist.name,
                patterns=random_result.patterns + deterministic,
            )
            with tracer.span("fill"):
                if stream == 2:
                    filled = fill_test_set(combined, circuit, seed)
                else:
                    filled = combined.filled(circuit, seed=seed)

            with tracer.span("verify"):
                kept, detected = _verify_and_prune(
                    circuit,
                    filled,
                    all_faults,
                    simulator,
                    workers=workers,
                    pool=pool,
                )
        finally:
            if pool is not None:
                pool.close()

        if tracer.enabled:
            tracer.count(ATPG_RUNS)
            tracer.count(BACKEND_RUNS[circuit.backend_name])
            tracer.count(ATPG_FAULTS_TOTAL, len(all_faults))
            tracer.count(ATPG_FAULTS_DETECTED, detected)
            tracer.count(ATPG_FAULTS_UNTESTABLE, len(untestable))
            tracer.count(ATPG_FAULTS_ABORTED, len(aborted))
            tracer.count(ATPG_PATTERNS_RANDOM, len(random_result.patterns))
            tracer.count(ATPG_PATTERNS_DETERMINISTIC, len(deterministic))
            tracer.count(ATPG_PATTERNS_PRE_COMPACTION, pre_compaction)
            tracer.count(ATPG_PATTERNS_FINAL, len(kept))
            publish_kernel_stats(tracer, kernel_baseline)

    return AtpgResult(
        circuit_name=netlist.name,
        test_set=kept,
        fault_count=len(all_faults),
        detected_count=detected,
        untestable=untestable,
        aborted=aborted,
        random_pattern_count=len(random_result.patterns),
        deterministic_pattern_count=len(deterministic),
        pre_compaction_count=pre_compaction,
    )


def _pop_secondary_candidates(
    queue: Deque[Fault],
    block: _PatternBlock,
    limit: int,
) -> List[Fault]:
    """The first ``limit`` still-undetected queued faults, in order.

    Skipped (already-detected) faults are discarded for good; the
    selected candidates are pushed back so they keep their place in the
    queue — matching the eager flow, where dynamic compaction sliced
    the head of an always-filtered queue without consuming it.
    """
    candidates: List[Fault] = []
    while queue and len(candidates) < limit:
        fault = queue.popleft()
        if block.detects(fault):
            continue
        candidates.append(fault)
    queue.extendleft(reversed(candidates))
    return candidates


def _extend_with_secondary_targets(
    podem: Podem,
    pattern: TestPattern,
    candidates: List[Fault],
) -> TestPattern:
    """Dynamic compaction: fold extra fault detections into one pattern.

    Each candidate is attempted with the accumulated assignments frozen;
    successes replace the pattern with the extended one.  Failures cost
    one bounded PODEM run and change nothing — the candidate stays in
    the queue for its own primary attempt later.
    """
    current = pattern
    for extra in candidates:
        result = podem.generate(extra, frozen=current.assignments)
        if result.outcome is PodemOutcome.DETECTED:
            current = result.pattern
    return current


# -- the stream-2 fault-parallel deterministic phase ----------------------
#
# Under the counter stream there is no draw-order coupling left, so the
# only sequential dependency in the PODEM phase is fault dropping.  The
# remaining faults are partitioned into a *canonical* shard layout (a
# function of the fault count alone — never of the worker count), each
# shard task is a pure function of (circuit, shard faults, knobs), and
# shards exchange their detected faults between rounds.  The serial
# fallback executes the identical task schedule in-process, which is
# what makes worker count an execution detail: every pattern, order,
# and classification is byte-identical at any parallelism.

_STREAM2_MAX_SHARDS = 8
_STREAM2_MIN_PER_SHARD = 3
_STREAM2_ROUND_QUOTA = 32


def _stream2_shard_count(fault_count: int) -> int:
    """Canonical shard count — a function of the fault count alone."""
    return max(1, min(_STREAM2_MAX_SHARDS, fault_count // _STREAM2_MIN_PER_SHARD))


def _generate_for_shard(
    circuit: CompiledCircuit,
    simulator: FaultSimulator,
    faults: List[Fault],
    backtrack_limit: int,
    dynamic_compaction: int,
) -> tuple:
    """One shard task of the stream-2 deterministic phase.

    A fresh :class:`Podem` and pattern block per task make the task a
    pure function of its inputs — the same code runs in the parent's
    serial fallback and in every pool worker, so where a task executes
    cannot change a single pattern bit.  Untestable/aborted faults come
    back as positions into ``faults`` (cheap to ship from workers).
    """
    podem = Podem(circuit, backtrack_limit=backtrack_limit)
    queue: Deque[Fault] = deque(faults)
    position = {fault: i for i, fault in enumerate(faults)}
    block = _PatternBlock(simulator)
    patterns: List[TestPattern] = []
    untestable: List[int] = []
    aborted: List[int] = []
    while queue:
        fault = queue.popleft()
        if block.detects(fault):
            continue
        result = podem.generate(fault)
        if result.outcome is PodemOutcome.UNTESTABLE:
            untestable.append(position[fault])
            continue
        if result.outcome is PodemOutcome.ABORTED:
            aborted.append(position[fault])
            continue
        pattern = result.pattern
        if dynamic_compaction > 0:
            pattern = _extend_with_secondary_targets(
                podem,
                pattern,
                _pop_secondary_candidates(queue, block, dynamic_compaction),
            )
        patterns.append(pattern)
        block.add(pattern)
        if block.full:
            block.flush(queue)
    return patterns, untestable, aborted


def _shard_generate(
    indices: List[int], backtrack_limit: int, dynamic_compaction: int
) -> tuple:
    """Worker entry point: one stream-2 PODEM shard task.

    Runs against the circuit/fault state the pool initializer installed
    (:func:`repro.atpg.faultsim._shard_init`); patterns travel back as
    their assignment dicts.
    """
    simulator = _faultsim._SHARD_SIMULATOR
    faults = [_faultsim._SHARD_FAULTS[i] for i in indices]
    patterns, untestable, aborted = _generate_for_shard(
        simulator.circuit, simulator, faults, backtrack_limit, dynamic_compaction
    )
    return [p.assignments for p in patterns], untestable, aborted


def _drop_round_detected(
    simulator: FaultSimulator,
    patterns: List[TestPattern],
    queues: List[Deque[Fault]],
) -> None:
    """Cross-shard exchange: drop queued faults the round's patterns hit.

    Detection is a monotone OR over patterns, so the lane-dependent
    chunking below never changes which faults survive — only how many
    patterns each detect call sweeps at once.
    """
    circuit = simulator.circuit
    capacity = 64 * circuit.block_lanes
    for start in range(0, len(patterns), capacity):
        block = _PatternBlock(simulator)
        for pattern in patterns[start:start + capacity]:
            block.add(pattern)
        good = RailBatch(block.ones, block.zeros, block.count)
        for queue in queues:
            if not queue:
                continue
            masks = simulator.detect_masks(good, block.count, queue)
            survivors = [fault for fault, mask in zip(queue, masks) if not mask]
            if len(survivors) != len(queue):
                queue.clear()
                queue.extend(survivors)


def _podem_stream2(
    circuit: CompiledCircuit,
    simulator: FaultSimulator,
    remaining: List[Fault],
    backtrack_limit: int,
    dynamic_compaction: int,
    pool: Optional[FaultShardPool],
) -> tuple:
    """The deterministic phase in canonical fault-sharded rounds.

    Each round takes up to ``_STREAM2_ROUND_QUOTA`` faults from every
    live shard queue, runs the tasks (on the pool when one is available,
    else serially — same tasks, same order), merges the results in
    shard order, and exchanges the round's detections across all
    queues.  The schedule depends only on the fault list, so any worker
    count — including zero pool workers — produces byte-identical
    patterns and fault classifications.
    """
    deterministic: List[TestPattern] = []
    untestable: List[Fault] = []
    aborted: List[Fault] = []
    faults = list(remaining)
    if not faults:
        return deterministic, untestable, aborted
    shard_count = _stream2_shard_count(len(faults))
    shard_size = -(-len(faults) // shard_count)
    queues: List[Deque[Fault]] = [
        deque(faults[start:start + shard_size])
        for start in range(0, len(faults), shard_size)
    ]
    abort = get_abort()
    while any(queues):
        abort.check()
        tasks: List[List[Fault]] = []
        for queue in queues:
            if queue:
                take = min(len(queue), _STREAM2_ROUND_QUOTA)
                tasks.append([queue.popleft() for _ in range(take)])
        results = None
        if pool is not None and len(tasks) > 1:
            payloads = [
                (pool.indices_of(task), backtrack_limit, dynamic_compaction)
                for task in tasks
            ]
            raw = pool.run_tasks(_shard_generate, payloads)
            if raw is not None:
                results = [
                    ([TestPattern(assignments) for assignments in patterns],
                     untestable_pos, aborted_pos)
                    for patterns, untestable_pos, aborted_pos in raw
                ]
        if results is None:
            results = [
                _generate_for_shard(
                    circuit, simulator, task, backtrack_limit, dynamic_compaction
                )
                for task in tasks
            ]
        round_patterns: List[TestPattern] = []
        for task, (patterns, untestable_pos, aborted_pos) in zip(tasks, results):
            round_patterns.extend(patterns)
            untestable.extend(task[i] for i in untestable_pos)
            aborted.extend(task[i] for i in aborted_pos)
        deterministic.extend(round_patterns)
        if round_patterns and any(queues):
            _drop_round_detected(simulator, round_patterns, queues)
    return deterministic, untestable, aborted


def _verify_and_prune(
    circuit: CompiledCircuit,
    test_set: TestSet,
    faults: List[Fault],
    simulator: FaultSimulator,
    workers: int = 1,
    pool: Optional[FaultShardPool] = None,
) -> tuple:
    """Final fault simulation; drops patterns that add no coverage.

    The pass runs in *reverse* pattern order: later patterns are the
    compacted deterministic ones, which detect many faults each, so
    crediting them first sheds most of the sparse random-phase keepers —
    the classic reverse-order fault-simulation pruning, typically worth
    a multi-x pattern-count reduction over a forward pass.  The kept
    patterns come back in their original relative order.

    With ``workers`` > 1 the per-batch mask sweep shards the remaining
    fault list across a :class:`~repro.atpg.faultsim.FaultShardPool`;
    the canonical-order merge keeps the kept set and detect counts
    bit-identical to the serial pass.  An already-open ``pool`` (the
    stream-2 engine keeps one alive across phases) is reused instead of
    spawning a fresh one, and is left open for the caller to close.
    """
    remaining = list(faults)
    detected = 0
    # Wide-lane backends sweep several 64-pattern words per detect call.
    # Detection is monotone and the credited pattern is the *first*
    # detector in reverse order, which is the same pattern whatever the
    # chunking — kept sets and detect counts are width-invariant.
    batch_size = 64 * circuit.block_lanes
    patterns = test_set.patterns
    keep_flags = [False] * len(patterns)
    reversed_index = list(range(len(patterns) - 1, -1, -1))
    abort = get_abort()
    own_pool = pool is None
    if own_pool:
        pool = FaultShardPool(circuit, faults, workers, simulator)
    try:
        for start in range(0, len(patterns), batch_size):
            abort.check()
            chunk = reversed_index[start:start + batch_size]
            # Patterns are fully specified here, so their assignment
            # dicts are already the per-input trit maps the packer wants
            # and the complement-based full packer applies.
            trits = [patterns[i].assignments for i in chunk]
            ones, zeros = pack_full_patterns_flat(circuit, trits)
            good, count = simulator.good_values_rails(ones, zeros, len(trits))
            survivors = []
            masks = pool.detect_masks(good, count, remaining)
            for fault, mask in zip(remaining, masks):
                if mask:
                    detected += 1
                    keep_flags[chunk[(mask & -mask).bit_length() - 1]] = True
                else:
                    survivors.append(fault)
            remaining = survivors
    finally:
        if own_pool:
            pool.close()
    kept = TestSet(
        circuit_name=test_set.circuit_name,
        patterns=[p for p, keep in zip(patterns, keep_flags) if keep],
    )
    return kept, detected


def generate_n_detect_tests(
    netlist: Netlist,
    n_detect: int = 3,
    max_passes: Optional[int] = None,
    config: Optional[AtpgConfig] = None,
    workers: int = 1,
) -> AtpgResult:
    """N-detect test generation: every fault observed ``n_detect`` times.

    Modern defect-oriented flows require each stuck-at fault to be
    detected by several *distinct* patterns, which raises the chance of
    incidentally catching the unmodelled defect at the same site.  The
    flow here runs the standard engine repeatedly, masking each fault
    once per pass until its quota is met; pattern counts therefore grow
    roughly linearly in ``n_detect`` — yet another pattern-count
    multiplier feeding the paper's per-core ``T`` values.

    The result's ``test_set`` is the concatenation of the per-pass sets
    (re-verified as a whole); ``detected_count`` counts faults that met
    the full quota.

    The engine knobs belong in ``config``
    (:class:`~repro.runtime.config.AtpgConfig`): the loose ``seed`` /
    ``backtrack_limit`` keywords of earlier releases are gone — passing
    them is a :class:`TypeError` now.  ``workers`` fans the
    verification and quota-charging fault simulations out across
    processes (bit-identical for any count) and, like the engine's,
    stays out of ``config``.
    """
    seed = config.seed if config is not None else 0
    backtrack_limit = config.backtrack_limit if config is not None else 100
    stream = config.stream if config is not None else 1
    if n_detect < 1:
        raise ValueError(f"n_detect must be >= 1, got {n_detect}")
    circuit = CompiledCircuit(
        netlist, backend=config.backend if config is not None else None
    )
    all_faults = collapse_faults(circuit)
    simulator = FaultSimulator(circuit)

    remaining_quota: Dict[Fault, int] = {fault: n_detect for fault in all_faults}
    combined = TestSet(circuit_name=netlist.name)
    untestable: List[Fault] = []
    aborted: List[Fault] = []
    passes = 0
    limit = max_passes if max_passes is not None else n_detect + 2
    abort = get_abort()
    with FaultShardPool(circuit, all_faults, workers, simulator) as pool:
        while passes < limit and remaining_quota:
            abort.check()
            targets = list(remaining_quota)
            result = generate_tests(
                netlist,
                seed=seed + passes,
                backtrack_limit=backtrack_limit,
                faults=targets,
                circuit=circuit,
                workers=workers,
                stream=stream,
            )
            if passes == 0:
                untestable = result.untestable
                for fault in untestable:
                    remaining_quota.pop(fault, None)
            aborted = result.aborted
            combined.patterns.extend(result.test_set.patterns)
            # Charge the new patterns against the quotas they serve, a
            # block at a time: the popcount of the detect mask is
            # exactly the number of per-pattern decrements the
            # one-at-a-time loop would make, and a quota only ever hits
            # zero once, so the chunking never changes which faults
            # retire or the surviving dict order.
            new_patterns = result.test_set.patterns
            charge_width = 64 * circuit.block_lanes
            for start in range(0, len(new_patterns), charge_width):
                batch = new_patterns[start:start + charge_width]
                good, count = simulator.good_values([p.assignments for p in batch])
                targets = list(remaining_quota)
                masks = pool.detect_masks(good, count, targets)
                for fault, mask in zip(targets, masks):
                    if mask:
                        remaining_quota[fault] -= bin(mask).count("1")
                        if remaining_quota[fault] <= 0:
                            del remaining_quota[fault]
            passes += 1

    satisfied = len(all_faults) - len(untestable) - len(remaining_quota)
    return AtpgResult(
        circuit_name=netlist.name,
        test_set=combined,
        fault_count=len(all_faults),
        detected_count=satisfied,
        untestable=untestable,
        aborted=aborted,
        random_pattern_count=0,
        deterministic_pattern_count=len(combined),
        pre_compaction_count=len(combined),
    )


def extract_cone_netlist(netlist: Netlist, cone: Cone) -> Netlist:
    """The standalone netlist of one logic cone.

    Inputs are the cone's (pseudo-)primary inputs, the single output is
    the cone's output net; only the cone's gates are copied.  This is
    the unit the paper's Section 3 reasons about.
    """
    sub = Netlist(f"{netlist.name}_cone_{cone.output}")
    for net in sorted(cone.inputs):
        sub.add_input(net)
    cone_gates = set(cone.gates)
    for gate in netlist.topological_order():
        if gate.output in cone_gates:
            sub.add_gate(gate.gate_type, gate.output, gate.inputs)
    if cone.output not in cone_gates and cone.output not in cone.inputs:
        raise ValueError(f"cone output {cone.output!r} has no driver in the cone")
    sub.mark_output(cone.output)
    sub.validate()
    return sub


def per_cone_pattern_counts(
    netlist: Netlist,
    runtime=None,
) -> Dict[str, int]:
    """Stand-alone ATPG pattern count for every logic cone.

    This measures the quantity the paper's whole argument rests on: the
    variation of per-cone pattern counts that monolithic testing tops
    off to the maximum.  Intended for small circuits (it runs one ATPG
    per cone).

    ``runtime`` (a :class:`repro.runtime.Runtime`) supplies the config,
    cache, and worker fan-out for the per-cone runs; without one, the
    historical defaults apply (seed 0, backtrack limit 50 — cones are
    small, so the tighter limit loses nothing).  The loose ``seed`` /
    ``backtrack_limit`` keywords of earlier releases are gone — passing
    them is a :class:`TypeError` now.
    """
    # Imported lazily: the engine sits below the runtime facade.
    from ..runtime.executor import AtpgJob
    from ..runtime.session import ensure_runtime

    config = runtime.config if runtime is not None else AtpgConfig(backtrack_limit=50)
    runtime = ensure_runtime(runtime)

    cones = extract_cones(netlist)
    # Feed-through cones (no gates) have nothing to test; pre-filling
    # every output keeps the historical cone-order dict layout while
    # the real jobs run (possibly out of order) through the runtime.
    counts: Dict[str, int] = {cone.output: 0 for cone in cones}
    jobs: List[AtpgJob] = []
    job_outputs: List[str] = []
    for cone in cones:
        if not cone.gates:
            continue
        sub = extract_cone_netlist(netlist, cone)
        jobs.append(AtpgJob(name=sub.name, netlist=sub, config=config))
        job_outputs.append(cone.output)
    if jobs:
        for output, result in zip(job_outputs, runtime.map(jobs)):
            counts[output] = result.pattern_count
    return counts
