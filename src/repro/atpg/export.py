"""Scan test vector export — from abstract patterns to delivered bits.

The TDV formulas count one stimulus bit per (pseudo-)input and one
response bit per (pseudo-)output per pattern.  This module makes those
bits concrete: it expands an ATPG result over a scan-chain configuration
into an explicit vector file (a minimal STIL-flavoured text format) with
per-chain load/unload strings and expected primary-output values, and
counts the bits actually delivered.  The count reconciles exactly with
the model (``tests/test_export.py`` pins stimulus+response ==
``(I + O + 2S) * T`` for balanced single-capture scan), closing the loop
between the paper's Eq. 1 accounting and a deliverable test program.

Format::

    Design <name>
    Inputs <pi> <pi> ...
    Outputs <po> <po> ...
    Chain <name> : <cell> <cell> ...
    Pattern <k>
        PI <bits>              # one char per primary input: 0/1/X
        Load <chain> <bits>    # scan-in values, shift order
        PO <bits>              # expected primary outputs: 0/1/X
        Unload <chain> <bits>  # expected captured values, shift order
    End
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..circuit.scan import ScanInsertion, insert_scan
from .compiled import CompiledCircuit
from .engine import AtpgResult
from .logicsim import RailBatch, pack_patterns_flat, simulate_flat, unpack_value
from .patterns import TestSet


class VectorFormatError(ValueError):
    """Raised on malformed scan-vector text."""


@dataclass
class ScanVector:
    """One expanded pattern: stimulus and expected response."""

    index: int
    pi_values: str  # one char per primary input: 0/1/X
    loads: Dict[str, str]  # chain name -> scan-in string (shift order)
    po_values: str  # expected primary outputs
    unloads: Dict[str, str]  # chain name -> expected capture string

    def stimulus_bits(self) -> int:
        return len(self.pi_values) + sum(len(bits) for bits in self.loads.values())

    def response_bits(self) -> int:
        return len(self.po_values) + sum(len(bits) for bits in self.unloads.values())

    def care_bits(self) -> int:
        """Specified (non-X) bits in stimulus and response."""
        text = (
            self.pi_values
            + self.po_values
            + "".join(self.loads.values())
            + "".join(self.unloads.values())
        )
        return sum(1 for char in text if char != "X")


@dataclass
class VectorProgram:
    """A complete scan test program for one design."""

    design: str
    primary_inputs: List[str]
    primary_outputs: List[str]
    chains: Dict[str, Tuple[str, ...]]  # chain name -> cell names, shift order
    vectors: List[ScanVector] = field(default_factory=list)

    @property
    def pattern_count(self) -> int:
        return len(self.vectors)

    def total_stimulus_bits(self) -> int:
        return sum(vector.stimulus_bits() for vector in self.vectors)

    def total_response_bits(self) -> int:
        return sum(vector.response_bits() for vector in self.vectors)

    def total_bits(self) -> int:
        """The delivered test data volume of this program."""
        return self.total_stimulus_bits() + self.total_response_bits()

    def care_bit_fraction(self) -> float:
        total = self.total_bits()
        if total == 0:
            raise ValueError("empty program")
        return sum(vector.care_bits() for vector in self.vectors) / total


def expand_vectors(
    netlist: Netlist,
    test_set: TestSet,
    insertion: Optional[ScanInsertion] = None,
) -> VectorProgram:
    """Expand a test set into explicit scan load/unload vectors.

    Expected responses come from good-machine simulation: primary
    outputs and flip-flop D values (the next capture) are computed for
    every pattern in one bit-parallel pass per 64-pattern block.
    """
    circuit = CompiledCircuit(netlist)
    if insertion is None:
        insertion = insert_scan(netlist, chain_count=1)
    chains = {chain.name: tuple(chain.cells) for chain in insertion.chains}
    placed = [cell for cells in chains.values() for cell in cells]
    if sorted(placed) != sorted(ff.output for ff in netlist.flip_flops):
        raise ValueError(
            f"{netlist.name}: scan insertion does not cover the flip-flops"
        )
    d_net_of = {ff.output: ff.data for ff in netlist.flip_flops}

    program = VectorProgram(
        design=netlist.name,
        primary_inputs=list(netlist.inputs),
        primary_outputs=list(netlist.outputs),
        chains=chains,
    )
    patterns = test_set.patterns
    for start in range(0, len(patterns), 64):
        block = patterns[start:start + 64]
        trits = [p.as_trits(circuit.input_ids) for p in block]
        ones, zeros = pack_patterns_flat(circuit, trits)
        simulate_flat(circuit, ones, zeros, len(block))
        values = RailBatch(ones, zeros, len(block))
        for offset, pattern in enumerate(block):
            def stim(net: str) -> str:
                value = pattern.assignments.get(circuit.net_ids[net])
                return "X" if value is None else str(value)

            def resp(net: str) -> str:
                value = unpack_value(values[circuit.net_ids[net]], offset)
                return "X" if value is None else str(value)

            program.vectors.append(
                ScanVector(
                    index=start + offset,
                    pi_values="".join(stim(net) for net in netlist.inputs),
                    loads={
                        name: "".join(stim(cell) for cell in cells)
                        for name, cells in chains.items()
                    },
                    po_values="".join(resp(net) for net in netlist.outputs),
                    unloads={
                        name: "".join(resp(d_net_of[cell]) for cell in cells)
                        for name, cells in chains.items()
                    },
                )
            )
    return program


def export_program(
    netlist: Netlist,
    result: AtpgResult,
    chain_count: int = 1,
) -> VectorProgram:
    """Convenience: expand an ATPG result over balanced scan chains."""
    insertion = insert_scan(netlist, chain_count=chain_count)
    return expand_vectors(netlist, result.test_set, insertion)


def dump_vectors(program: VectorProgram) -> str:
    """Serialize a vector program to the documented text format."""
    lines = [f"Design {program.design}"]
    if program.primary_inputs:
        lines.append(f"Inputs {' '.join(program.primary_inputs)}")
    if program.primary_outputs:
        lines.append(f"Outputs {' '.join(program.primary_outputs)}")
    for name, cells in program.chains.items():
        lines.append(f"Chain {name} : {' '.join(cells)}")
    for vector in program.vectors:
        lines.append(f"Pattern {vector.index}")
        if vector.pi_values:
            lines.append(f"    PI {vector.pi_values}")
        for name in program.chains:
            if vector.loads[name]:
                lines.append(f"    Load {name} {vector.loads[name]}")
        if vector.po_values:
            lines.append(f"    PO {vector.po_values}")
        for name in program.chains:
            if vector.unloads[name]:
                lines.append(f"    Unload {name} {vector.unloads[name]}")
        lines.append("End")
    return "\n".join(lines) + "\n"


def parse_vectors(text: str) -> VectorProgram:
    """Parse the text format back into a :class:`VectorProgram`."""
    design: Optional[str] = None
    inputs: List[str] = []
    outputs: List[str] = []
    chains: Dict[str, Tuple[str, ...]] = {}
    vectors: List[ScanVector] = []
    current: Optional[ScanVector] = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        keyword, _, rest = line.partition(" ")
        rest = rest.strip()
        if keyword == "Design":
            design = rest
        elif keyword == "Inputs":
            inputs = rest.split()
        elif keyword == "Outputs":
            outputs = rest.split()
        elif keyword == "Chain":
            name, _, cells = rest.partition(":")
            chains[name.strip()] = tuple(cells.split())
        elif keyword == "Pattern":
            if current is not None:
                raise VectorFormatError(f"line {line_number}: nested Pattern")
            current = ScanVector(
                index=int(rest), pi_values="", loads={}, po_values="", unloads={}
            )
        elif keyword == "End":
            if current is None:
                raise VectorFormatError(f"line {line_number}: End without Pattern")
            vectors.append(current)
            current = None
        elif keyword in ("PI", "PO"):
            if current is None:
                raise VectorFormatError(f"line {line_number}: {keyword} outside Pattern")
            if keyword == "PI":
                current.pi_values = rest
            else:
                current.po_values = rest
        elif keyword in ("Load", "Unload"):
            if current is None:
                raise VectorFormatError(f"line {line_number}: {keyword} outside Pattern")
            name, _, bits = rest.partition(" ")
            target = current.loads if keyword == "Load" else current.unloads
            target[name] = bits.strip()
        else:
            raise VectorFormatError(f"line {line_number}: unknown keyword {keyword!r}")
    if current is not None:
        raise VectorFormatError("unterminated Pattern block")
    if design is None:
        raise VectorFormatError("missing Design header")
    for vector in vectors:
        for name in chains:
            vector.loads.setdefault(name, "")
            vector.unloads.setdefault(name, "")
    return VectorProgram(
        design=design,
        primary_inputs=inputs,
        primary_outputs=outputs,
        chains=chains,
        vectors=vectors,
    )


def model_bits(netlist: Netlist, pattern_count: int) -> int:
    """The Eq. 1-style bit count for this design: ``(I + O + 2S) * T``."""
    return (
        len(netlist.inputs) + len(netlist.outputs) + 2 * len(netlist.flip_flops)
    ) * pattern_count
