"""The ``numpy`` kernel backend: vectorized array kernels over wide words.

Pattern blocks grow from one 64-bit word to ``lanes_for`` words (N x 64
packed patterns), and the per-fault scalar algebra of the fanout-free-
region fast path (:meth:`FaultSimulator._ffr_detect_masks`) is replaced
by whole-array operations over ``(faults, words)`` uint64 matrices:

* **excitation** is one gather per polarity from the good rails,
* **branch side-sensitization** reads a compile-time per-pin sibling
  table (class codes: AND-like pins mask with sibling ones-rails,
  OR-like with zeros-rails, BUF/NOT/XOR pins pass),
* **chain sensitization** is computed for *every* net at once by
  walking chain-depth buckets (``depth[n] = depth[parent] + 1``,
  resolved structurally at compile time),
* **root observability** needs one scalar stem chase per *live* region
  root — and only one, not two: seeding the chase with the
  complemented root rails (the "flip chase") yields exactly
  ``obs0 | obs1``, and for stem-at-root faults ``flip & excitation``
  is exactly the single-polarity chase the pure path runs.  Per-bit
  independence of the dual-rail ops makes both identities exact, and
  the differential backend suite pins them against the pure path.

The logic simulator is also lowered to a level-ordered dispatch plan
(:meth:`NumpyBackend.lane_simulate`): gates grouped by (level, opcode,
arity) evaluate as one fancy-indexed array op per input pin.  The
production pipeline keeps Python-int rails canonical (the event kernel
and stem chases run on them, and bigint gate sweeps are already
word-width-free), so the lane simulator serves array-native consumers
and the differential tests rather than the default good-machine path.

Everything here is bit-identical to the pure backend by construction;
only the work changes.  This module imports :mod:`numpy` at module
level — the registry only loads it when NumPy is importable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..compiled import (
    OP_AND,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    CompiledCircuit,
)
from ..faultsim import SIM_STATS

_U64 = np.uint64
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Pattern-block width (in 64-bit words) by circuit size.  Tiny
#: circuits (per-cone ATPG in the population studies) keep single-word
#: blocks: their random phases stop after a batch or two, so wider
#: draws would waste RNG work the pure path never spends.
WIDE_LANES = 8
MID_LANES = 4
WIDE_NET_THRESHOLD = 384
MID_NET_THRESHOLD = 192

#: Below this many faults the fixed cost of rail conversion and array
#: setup exceeds the scalar loop it replaces; the fault simulator's own
#: pure FFR path handles the call (bit-identical either way).
FFR_MIN_FAULTS = 16

# -- packed-rail <-> array conversion helpers ----------------------------


def rails_to_words(rails: List[int], words: int) -> np.ndarray:
    """Pack per-net Python-int rails into an (nets, words) uint64 array.

    Bit ``k`` of pattern word ``w`` of net ``n`` lands in
    ``out[n, w] >> k & 1`` — little-endian word order, matching
    ``int.to_bytes(..., "little")``.
    """
    size = words * 8
    buf = b"".join(value.to_bytes(size, "little") for value in rails)
    return np.frombuffer(buf, dtype="<u8").reshape(len(rails), words)


def words_to_rails(array: np.ndarray) -> List[int]:
    """Inverse of :func:`rails_to_words` (one Python int per row)."""
    words = array.shape[1]
    size = words * 8
    buf = np.ascontiguousarray(array, dtype="<u8").tobytes()
    return [
        int.from_bytes(buf[row * size:(row + 1) * size], "little")
        for row in range(array.shape[0])
    ]


def _int_to_words(value: int, words: int) -> np.ndarray:
    return np.frombuffer(value.to_bytes(words * 8, "little"), dtype="<u8")


class _CircuitPlan:
    """Compile-time array tables for one circuit (cached on it).

    Built lazily on first use and shared by every simulator holding the
    circuit; shipping a planned circuit to shard workers pickles the
    tables along (they are pure derived state).
    """

    def __init__(self, circuit: CompiledCircuit):
        gates = circuit.gates
        net_count = circuit.net_count

        # -- level-dispatch simulation plan -------------------------
        # Gates grouped by (level, opcode, arity); levels ascend, so a
        # group's input gathers always read finished values.
        grouped: Dict[Tuple[int, int, int], List[int]] = {}
        for gate in gates:
            key = (gate.level, circuit.gate_op[gate.index], len(gate.inputs))
            grouped.setdefault(key, []).append(gate.index)
        self.sim_groups: List[Tuple[int, np.ndarray, Tuple[np.ndarray, ...]]] = []
        for (_, op, arity), members in sorted(grouped.items()):
            outs = np.array([circuit.gate_out[g] for g in members], dtype=np.int64)
            cols = tuple(
                np.array([gates[g].inputs[pin] for g in members], dtype=np.int64)
                for pin in range(arity)
            )
            self.sim_groups.append((op, outs, cols))

        # -- fanout-free-region tables ------------------------------
        ffr_root, ffr_load = circuit.ffr_view()
        self.net_count = net_count
        self.root = np.array(ffr_root, dtype=np.int64)
        self.reaches = np.array(circuit.reaches_output, dtype=bool)
        self.gate_out = np.array(circuit.gate_out, dtype=np.int64)
        self.gate_in_start = np.array(circuit.gate_in_start, dtype=np.int64)

        # Per-pin sensitization metadata over the CSR pin rows:
        # class code (0 pass, 1 AND-like, 2 OR-like) and the sibling
        # net ids of the same gate, padded to max arity with -1.
        gate_in_ids = circuit.gate_in_ids
        total_pins = len(gate_in_ids)
        max_sibs = max((len(g.inputs) for g in gates), default=1) - 1
        max_sibs = max(max_sibs, 1)
        pin_class = np.zeros(total_pins, dtype=np.int64)
        pin_sibs = np.full((total_pins, max_sibs), -1, dtype=np.int64)
        for gate in gates:
            op = circuit.gate_op[gate.index]
            if OP_AND <= op <= OP_NAND:
                code = 1
            elif OP_OR <= op <= OP_NOR:
                code = 2
            else:
                code = 0
            start = circuit.gate_in_start[gate.index]
            ins = gate.inputs
            for pin in range(len(ins)):
                row = start + pin
                pin_class[row] = code
                k = 0
                for other in range(len(ins)):
                    if other != pin:
                        pin_sibs[row, k] = ins[other]
                        k += 1
        self.pin_class = pin_class
        self.pin_sibs = pin_sibs

        # Chain tables: every non-root net has exactly one load pin;
        # depth counts gates to its region root.  Net ids are
        # topological (parents have higher ids), so one descending
        # pass resolves every depth.
        parent = np.full(net_count, -1, dtype=np.int64)
        pin_row = np.full(net_count, -1, dtype=np.int64)
        depth = np.zeros(net_count, dtype=np.int64)
        gate_in_start_list = circuit.gate_in_start
        for net_id in range(net_count - 1, -1, -1):
            load = ffr_load[net_id]
            if load < 0:
                continue
            out_net = circuit.gate_out[load]
            parent[net_id] = out_net
            start = gate_in_start_list[load]
            end = gate_in_start_list[load + 1]
            for row in range(start, end):
                if gate_in_ids[row] == net_id:
                    pin_row[net_id] = row
                    break
            depth[net_id] = depth[out_net] + 1
        self.parent_net = parent
        self.net_pin_row = pin_row
        max_depth = int(depth.max()) if net_count else 0
        self.depth_buckets = [
            np.nonzero(depth == d)[0] for d in range(1, max_depth + 1)
        ]
        self.depth0 = np.nonzero(depth == 0)[0]

    # -- per-batch algebra ----------------------------------------------

    def pin_side_mask(
        self, rows: np.ndarray, g1: np.ndarray, g0: np.ndarray, words: int
    ) -> np.ndarray:
        """Side-sensitization masks for a batch of pin rows.

        AND-like pins need every sibling at 1, OR-like every sibling at
        0; pass-class pins (BUF/NOT/XOR/XNOR) always propagate a flip.
        """
        mask = np.full((len(rows), words), _FULL_WORD, dtype=_U64)
        cls = self.pin_class[rows]
        sibs = self.pin_sibs[rows]
        for column in range(sibs.shape[1]):
            sib = sibs[:, column]
            sel = (cls == 1) & (sib >= 0)
            if sel.any():
                mask[sel] &= g1[sib[sel]]
            sel = (cls == 2) & (sib >= 0)
            if sel.any():
                mask[sel] &= g0[sib[sel]]
        return mask

    def sens_all(self, g1: np.ndarray, g0: np.ndarray, words: int) -> np.ndarray:
        """Chain sensitization of every net to its region root.

        Region roots are trivially sensitized; each deeper net ANDs its
        parent's value with its own pin's side mask.  Buckets by chain
        depth keep every step a pure array op.
        """
        sens = np.empty((self.net_count, words), dtype=_U64)
        sens[self.depth0] = _FULL_WORD
        for bucket in self.depth_buckets:
            rows = self.net_pin_row[bucket]
            mask = self.pin_side_mask(rows, g1, g0, words)
            sens[bucket] = sens[self.parent_net[bucket]] & mask
        return sens


def _plan_for(circuit: CompiledCircuit) -> _CircuitPlan:
    plan = getattr(circuit, "_np_plan", None)
    if plan is None:
        plan = _CircuitPlan(circuit)
        circuit._np_plan = plan
    return plan


class NumpyBackend:
    """Strategy object for the vectorized kernels (see module docs).

    Stateless — all derived tables cache on the circuit — and shared
    process-wide; pickles by class reference like the pure backend.
    """

    name = "numpy"

    def lanes_for(self, circuit: CompiledCircuit) -> int:
        """Pattern-block width in 64-bit words, by circuit size."""
        if circuit.net_count >= WIDE_NET_THRESHOLD:
            return WIDE_LANES
        if circuit.net_count >= MID_NET_THRESHOLD:
            return MID_LANES
        return 1

    def prepare(self, circuit: CompiledCircuit) -> None:
        """Build (and cache on the circuit) the derived array tables now.

        Normally the plan is built lazily inside the first wide detect
        call.  Callers about to fork worker processes build it eagerly
        instead, so every forked worker inherits the warm plan rather
        than rebuilding it cold.
        """
        _plan_for(circuit)

    # -- vectorized fanout-free-region detect masks ---------------------

    def ffr_detect_masks(
        self,
        simulator,
        g_ones: List[int],
        g_zeros: List[int],
        full: int,
        pattern_count: int,
        faults: Iterable,
    ) -> Optional[List[int]]:
        """Array-form of ``FaultSimulator._ffr_detect_masks``.

        Returns ``None`` for fault lists too small to amortize the
        conversion — the caller's scalar path takes over, bit-identical
        either way.
        """
        fault_list = faults if isinstance(faults, list) else list(faults)
        count = len(fault_list)
        if count < FFR_MIN_FAULTS:
            return None
        circuit = simulator.circuit
        plan = _plan_for(circuit)
        words = (pattern_count + 63) // 64
        g1 = rails_to_words(g_ones, words)
        g0 = rails_to_words(g_zeros, words)

        net = np.fromiter((f.net for f in fault_list), dtype=np.int64, count=count)
        sa = np.fromiter(
            (f.stuck_at for f in fault_list), dtype=np.int64, count=count
        )
        gate_index = np.fromiter(
            (-1 if f.gate_index is None else f.gate_index for f in fault_list),
            dtype=np.int64,
            count=count,
        )
        pin = np.fromiter(
            (0 if f.pin is None else f.pin for f in fault_list),
            dtype=np.int64,
            count=count,
        )

        # Excitation: patterns whose good value differs from the stuck
        # value (X-free batches make the complement rail exact).
        candidate = np.where((sa == 0)[:, None], g1[net], g0[net])
        start = net.copy()
        branch = gate_index >= 0
        if branch.any():
            rows = plan.gate_in_start[gate_index[branch]] + pin[branch]
            candidate[branch] &= plan.pin_side_mask(rows, g1, g0, words)
            start[branch] = plan.gate_out[gate_index[branch]]
        candidate &= plan.sens_all(g1, g0, words)[start]
        candidate[~plan.reaches[net]] = 0

        live = candidate.any(axis=1)
        roots = plan.root[start]
        if live.any():
            # One scalar flip chase per live region root: seeding the
            # stem sweep with the complemented root rails computes
            # obs0 | obs1 in a single pass (per-bit independence makes
            # the union exact; stem-at-root faults recover their
            # single-polarity chase through the excitation factor).
            observability = np.zeros((plan.net_count, words), dtype=_U64)
            chase_flip = simulator._chase_flip
            for root in np.unique(roots[live]):
                root_id = int(root)
                flip = chase_flip(g_ones, g_zeros, full, root_id)
                if flip:
                    observability[root_id] = _int_to_words(flip, words)
            candidate &= observability[roots]

        SIM_STATS["detect_calls"] += count
        SIM_STATS["fault_pattern_evals"] += count * pattern_count
        word_bytes = words * 8
        buf = candidate.tobytes()
        nonzero = candidate.any(axis=1)
        from_bytes = int.from_bytes
        return [
            from_bytes(buf[i * word_bytes:(i + 1) * word_bytes], "little")
            if nonzero[i]
            else 0
            for i in range(count)
        ]

    # -- level-dispatched logic simulation ------------------------------

    def lane_simulate(
        self, circuit: CompiledCircuit, ones: np.ndarray, zeros: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate every gate over (nets, words) dual-rail arrays.

        In-place over ``ones``/``zeros`` (input rows must be filled,
        all other rows are overwritten), mirroring
        :func:`repro.atpg.logicsim.simulate_flat` word for word — the
        differential backend tests pin the two against each other on
        every opcode, including X handling.
        """
        for op, outs, cols in _plan_for(circuit).sim_groups:
            if op <= OP_NOT:  # BUF / NOT
                o = ones[cols[0]]
                z = zeros[cols[0]]
            elif op <= OP_NOR:  # AND / NAND / OR / NOR
                o = ones[cols[0]]
                z = zeros[cols[0]]
                if op <= OP_NAND:
                    for col in cols[1:]:
                        o = o & ones[col]
                        z = z | zeros[col]
                else:
                    for col in cols[1:]:
                        o = o | ones[col]
                        z = z & zeros[col]
            else:  # XOR / XNOR
                o = ones[cols[0]]
                z = zeros[cols[0]]
                for col in cols[1:]:
                    io = ones[col]
                    iz = zeros[col]
                    o, z = (o & iz) | (z & io), (o & io) | (z & iz)
            if op in (OP_NOT, OP_NAND, OP_NOR, OP_XNOR):
                o, z = z, o
            ones[outs] = o
            zeros[outs] = z
        return ones, zeros
