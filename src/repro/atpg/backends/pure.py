"""The ``pure`` kernel backend: today's Python-int path, unchanged.

This backend is the reference implementation every other backend is
differentially pinned against.  It adds no acceleration hooks: pattern
blocks stay one 64-bit word wide, and the fault simulator keeps its
scalar fanout-free-region fast path and event kernel exactly as they
were.
"""

from __future__ import annotations

from typing import Iterable, List, Optional


class PureBackend:
    """Strategy object for the unaccelerated kernels.

    Stateless and shared process-wide (``resolve_backend`` hands out a
    singleton); instances pickle by class reference, so a
    :class:`~repro.atpg.compiled.CompiledCircuit` carrying one ships to
    :class:`~repro.atpg.faultsim.FaultShardPool` workers unchanged.
    """

    name = "pure"

    def lanes_for(self, circuit) -> int:
        """Pattern-block width in 64-bit words: always one."""
        return 1

    def prepare(self, circuit) -> None:
        """No derived tables to build ahead of time."""

    def ffr_detect_masks(
        self,
        simulator,
        g_ones: List[int],
        g_zeros: List[int],
        full: int,
        pattern_count: int,
        faults: Iterable,
    ) -> Optional[List[int]]:
        """No acceleration: the caller runs its own scalar FFR path."""
        return None
