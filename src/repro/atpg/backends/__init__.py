"""Kernel backend registry for the flat-array simulators.

A *backend* is a strategy object attached to each
:class:`~repro.atpg.compiled.CompiledCircuit` at build time.  It
decides how wide the engine packs pattern blocks (``lanes_for``) and
may accelerate whole kernel stages with vectorized array code — today
the fanout-free-region detect-mask algebra and the level-dispatched
logic simulation of the ``numpy`` backend.  Every backend is
**bit-identical by construction** to the ``pure`` path: pattern
counts, fault coverage, detect masks, and cache fingerprints never
depend on the backend (``tests/test_backends.py`` enforces this
differentially), so selection is an execution detail, never part of a
run's identity.

Selection precedence: an explicit name (``AtpgConfig.backend``,
``CompiledCircuit(netlist, backend=...)``, ``--backend``) wins over the
``REPRO_BACKEND`` environment variable, which wins over the default
``auto`` (``numpy`` when importable, else ``pure``).  NumPy is an
optional dependency (``pip install repro[fast]``): when it is absent —
or masked with ``REPRO_NO_NUMPY=1``, which is how CI exercises the
fallback leg without a second environment — every resolution degrades
gracefully to ``pure``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ...errors import ConfigError
from ...observability import register_counter

#: Environment variable naming the default backend (lowest-precedence
#: explicit selection; ``AtpgConfig.backend``/``backend=`` win over it).
BACKEND_ENV = "REPRO_BACKEND"

#: When set (to anything but "" or "0"), NumPy is treated as absent —
#: ``auto`` and even an explicit ``numpy`` request resolve to ``pure``.
#: This is how the CI fallback leg and the chaos tests simulate a
#: NumPy-less install inside an environment that has it.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: The names ``resolve_backend`` accepts (and the CLI offers).
BACKEND_CHOICES = ("auto", "pure", "numpy")

#: Per-backend run counters: the engine counts one per traced ATPG run,
#: so the CI telemetry artifact attributes throughput to a kernel.
BACKEND_RUNS = {
    "pure": register_counter("kernel.backend.pure", "ATPG runs on the pure backend"),
    "numpy": register_counter("kernel.backend.numpy", "ATPG runs on the numpy backend"),
}

_INSTANCES: Dict[str, object] = {}


def numpy_available() -> bool:
    """Whether the numpy backend can run (import works, not masked)."""
    if os.environ.get(NO_NUMPY_ENV, "").strip() not in ("", "0"):
        return False
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def _instance(name: str):
    backend = _INSTANCES.get(name)
    if backend is None:
        if name == "pure":
            from .pure import PureBackend

            backend = PureBackend()
        else:
            from .numpy_backend import NumpyBackend

            backend = NumpyBackend()
        _INSTANCES[name] = backend
    return backend


def resolve_backend(name: Optional[str] = None):
    """Resolve a backend request to a shared backend instance.

    ``None`` (or ``""``) means "not chosen explicitly": the
    ``REPRO_BACKEND`` environment variable applies, then ``auto``.
    ``auto`` picks ``numpy`` when available, else ``pure``; an explicit
    ``numpy`` request without NumPy also falls back to ``pure`` (the
    graceful-degradation contract — results are identical anyway).
    Unknown names raise :class:`~repro.errors.ConfigError`.
    """
    if not name:
        name = os.environ.get(BACKEND_ENV, "").strip() or "auto"
    if name not in BACKEND_CHOICES:
        raise ConfigError(
            f"unknown kernel backend {name!r}: choose from {', '.join(BACKEND_CHOICES)}"
        )
    if name == "auto":
        name = "numpy" if numpy_available() else "pure"
    elif name == "numpy" and not numpy_available():
        name = "pure"
    return _instance(name)


__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_ENV",
    "BACKEND_RUNS",
    "NO_NUMPY_ENV",
    "numpy_available",
    "resolve_backend",
]
