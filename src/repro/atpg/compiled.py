"""Array-compiled circuit representation — the ATPG engines' hot format.

Name-keyed :class:`~repro.circuit.netlist.Netlist` objects are pleasant
to build and inspect but slow to simulate.  :class:`CompiledCircuit`
lowers the full-scan combinational view once into dense integer arrays:
net ids, a topologically ordered gate table, per-net fanout lists, and
per-gate logic levels.  PODEM, the bit-parallel logic simulator, and
the event-driven fault simulator all run on this form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist


@dataclass(frozen=True)
class CompiledGate:
    """One gate in the compiled table."""

    index: int  # position in topological order
    gate_type: GateType
    output: int  # net id
    inputs: Tuple[int, ...]  # net ids
    level: int  # 1 + max level of fanin gates (inputs are level 0)


class CompiledCircuit:
    """The full-scan combinational view of a netlist, as arrays.

    ``input_ids`` covers primary inputs followed by pseudo-primary
    inputs (flip-flop outputs); ``output_ids`` covers primary outputs
    followed by pseudo-primary outputs (flip-flop D nets), matching the
    conventions of :mod:`repro.circuit.netlist`.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.name = netlist.name
        order = netlist.topological_order()

        self.net_names: List[str] = []
        self.net_ids: Dict[str, int] = {}
        for net in netlist.combinational_inputs():
            self._intern(net)
        for gate in order:
            self._intern(gate.output)
        # Output nets are already interned (inputs or gate outputs), but
        # a PO may also be a PI in degenerate netlists; intern defensively.
        for net in netlist.combinational_outputs():
            self._intern(net)

        self.input_ids: List[int] = [
            self.net_ids[net] for net in netlist.combinational_inputs()
        ]
        self.output_ids: List[int] = [
            self.net_ids[net] for net in netlist.combinational_outputs()
        ]
        self.primary_input_count = len(netlist.inputs)
        self.primary_output_count = len(netlist.outputs)

        level: Dict[int, int] = {net_id: 0 for net_id in self.input_ids}
        self.gates: List[CompiledGate] = []
        self.driver_gate: Dict[int, int] = {}  # net id -> gate index
        for index, gate in enumerate(order):
            in_ids = tuple(self.net_ids[net] for net in gate.inputs)
            gate_level = 1 + max((level.get(i, 0) for i in in_ids), default=0)
            out_id = self.net_ids[gate.output]
            level[out_id] = gate_level
            compiled = CompiledGate(
                index=index,
                gate_type=gate.gate_type,
                output=out_id,
                inputs=in_ids,
                level=gate_level,
            )
            self.gates.append(compiled)
            self.driver_gate[out_id] = index

        self.net_count = len(self.net_names)
        self.fanout: List[List[int]] = [[] for _ in range(self.net_count)]
        for gate in self.gates:
            for net_id in gate.inputs:
                self.fanout[net_id].append(gate.index)
        self.max_level = max((gate.level for gate in self.gates), default=0)
        self._output_id_set = set(self.output_ids)

    def _intern(self, net: str) -> int:
        if net not in self.net_ids:
            self.net_ids[net] = len(self.net_names)
            self.net_names.append(net)
        return self.net_ids[net]

    def is_input(self, net_id: int) -> bool:
        return net_id not in self.driver_gate

    def is_output(self, net_id: int) -> bool:
        return net_id in self._output_id_set

    def fanout_cone_gates(self, net_id: int) -> List[int]:
        """Gate indices in the transitive fanout of a net, topo order.

        This is the region a fault on ``net_id`` can influence — the
        event-driven fault simulator touches nothing else.
        """
        seen_gates = set()
        seen_nets = {net_id}
        stack = [net_id]
        while stack:
            net = stack.pop()
            for gate_index in self.fanout[net]:
                if gate_index not in seen_gates:
                    seen_gates.add(gate_index)
                    out = self.gates[gate_index].output
                    if out not in seen_nets:
                        seen_nets.add(out)
                        stack.append(out)
        return sorted(seen_gates)

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.name!r}, nets={self.net_count}, "
            f"gates={len(self.gates)}, inputs={len(self.input_ids)}, "
            f"outputs={len(self.output_ids)})"
        )
