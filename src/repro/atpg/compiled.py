"""Array-compiled circuit representation — the ATPG engines' hot format.

Name-keyed :class:`~repro.circuit.netlist.Netlist` objects are pleasant
to build and inspect but slow to simulate.  :class:`CompiledCircuit`
lowers the full-scan combinational view once into dense integer arrays:
net ids, a topologically ordered gate table, per-net fanout lists, and
per-gate logic levels.  PODEM, the bit-parallel logic simulator, and
the event-driven fault simulator all run on this form.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .backends import resolve_backend

# Gate-type opcodes for the flat-array kernels.  Every simulator in the
# package (bit-parallel logic sim, event-driven fault sim, PODEM's
# five-valued implication) dispatches on these small ints instead of
# GateType enum members; the numbering is stable and pairs inverting
# variants next to their base ops.
OP_BUF, OP_NOT, OP_AND, OP_NAND, OP_OR, OP_NOR, OP_XOR, OP_XNOR = range(8)

OPCODES: Dict[GateType, int] = {
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
}


@dataclass(frozen=True)
class CompiledGate:
    """One gate in the compiled table."""

    index: int  # position in topological order
    gate_type: GateType
    output: int  # net id
    inputs: Tuple[int, ...]  # net ids
    level: int  # 1 + max level of fanin gates (inputs are level 0)


class CompiledCircuit:
    """The full-scan combinational view of a netlist, as arrays.

    ``input_ids`` covers primary inputs followed by pseudo-primary
    inputs (flip-flop outputs); ``output_ids`` covers primary outputs
    followed by pseudo-primary outputs (flip-flop D nets), matching the
    conventions of :mod:`repro.circuit.netlist`.
    """

    def __init__(self, netlist: Netlist, backend: Optional[str] = None):
        netlist.validate()
        self.name = netlist.name
        # Kernel backend selection (see repro.atpg.backends): an
        # explicit name wins over $REPRO_BACKEND, which wins over
        # "auto".  The backend never changes results — every backend is
        # bit-identical to "pure" — so it is an execution detail here,
        # not part of any run's identity or cache key.  ``block_lanes``
        # is the pattern-block width (in 64-bit words) the engines pack
        # batches to; tests may override it to force wide paths on
        # small circuits.
        self.backend = resolve_backend(backend)
        self.backend_name: str = self.backend.name
        order = netlist.topological_order()

        self.net_names: List[str] = []
        self.net_ids: Dict[str, int] = {}
        for net in netlist.combinational_inputs():
            self._intern(net)
        for gate in order:
            self._intern(gate.output)
        # Output nets are already interned (inputs or gate outputs), but
        # a PO may also be a PI in degenerate netlists; intern defensively.
        for net in netlist.combinational_outputs():
            self._intern(net)

        self.input_ids: List[int] = [
            self.net_ids[net] for net in netlist.combinational_inputs()
        ]
        self.output_ids: List[int] = [
            self.net_ids[net] for net in netlist.combinational_outputs()
        ]
        self.primary_input_count = len(netlist.inputs)
        self.primary_output_count = len(netlist.outputs)

        level: Dict[int, int] = {net_id: 0 for net_id in self.input_ids}
        self.gates: List[CompiledGate] = []
        self.driver_gate: Dict[int, int] = {}  # net id -> gate index
        for index, gate in enumerate(order):
            in_ids = tuple(self.net_ids[net] for net in gate.inputs)
            gate_level = 1 + max((level.get(i, 0) for i in in_ids), default=0)
            out_id = self.net_ids[gate.output]
            level[out_id] = gate_level
            compiled = CompiledGate(
                index=index,
                gate_type=gate.gate_type,
                output=out_id,
                inputs=in_ids,
                level=gate_level,
            )
            self.gates.append(compiled)
            self.driver_gate[out_id] = index

        self.net_count = len(self.net_names)
        self.fanout: List[List[int]] = [[] for _ in range(self.net_count)]
        for gate in self.gates:
            for net_id in gate.inputs:
                self.fanout[net_id].append(gate.index)
        self.max_level = max((gate.level for gate in self.gates), default=0)
        self._output_id_set = set(self.output_ids)
        self._build_flat_view()
        self._cone_cache: Dict[int, List[int]] = {}
        self._ffr: Optional[Tuple[List[int], List[int]]] = None
        # Good-machine batch memo (filled by FaultSimulator): input-rail
        # key -> fully simulated RailBatch.  Lives here so every
        # simulator sharing this compilation shares the memo; it is pure
        # derived state and never part of a run's identity.
        self.good_value_cache: "OrderedDict" = OrderedDict()
        self.block_lanes: int = self.backend.lanes_for(self)

    def _build_flat_view(self) -> None:
        """Lower the gate table to parallel flat arrays.

        This is the representation the hot kernels run on: opcode /
        output-net / level arrays indexed by gate, CSR-style index
        arrays for gate inputs and net fanouts, and per-net flags for
        "is a (pseudo-)primary output" and "can reach one".  The object
        view (``self.gates``) stays available for inspection and for
        the colder code paths.
        """
        gates = self.gates
        self.gate_op: List[int] = [OPCODES[g.gate_type] for g in gates]
        self.gate_out: List[int] = [g.output for g in gates]
        self.gate_levels: List[int] = [g.level for g in gates]
        # One-tuple-per-gate iteration form shared by the kernels.
        self.gate_table: List[Tuple[int, int, Tuple[int, ...]]] = [
            (op, out, g.inputs)
            for op, out, g in zip(self.gate_op, self.gate_out, gates)
        ]
        # CSR gate-input arrays: inputs of gate i are
        # gate_in_ids[gate_in_start[i]:gate_in_start[i + 1]].
        self.gate_in_start: List[int] = [0] * (len(gates) + 1)
        self.gate_in_ids: List[int] = []
        for i, gate in enumerate(gates):
            self.gate_in_ids.extend(gate.inputs)
            self.gate_in_start[i + 1] = len(self.gate_in_ids)
        # CSR fanout arrays: gates loading net n are
        # fanout_gates[fanout_start[n]:fanout_start[n + 1]].
        self.fanout_start: List[int] = [0] * (self.net_count + 1)
        self.fanout_gates: List[int] = []
        for net_id, loads in enumerate(self.fanout):
            self.fanout_gates.extend(loads)
            self.fanout_start[net_id + 1] = len(self.fanout_gates)
        self.is_output_flag: List[bool] = [False] * self.net_count
        for net_id in self.output_ids:
            self.is_output_flag[net_id] = True
        # Per-net observability: True when the net can reach some
        # (pseudo-)primary output.  A fault effect confined to
        # unobservable nets can never be detected, so the event-driven
        # fault simulator refuses to schedule gates behind them.
        reaches = [False] * self.net_count
        stack: List[int] = []
        for net_id in self.output_ids:
            if not reaches[net_id]:
                reaches[net_id] = True
                stack.append(net_id)
        while stack:
            net_id = stack.pop()
            gate_index = self.driver_gate.get(net_id)
            if gate_index is None:
                continue
            for in_id in gates[gate_index].inputs:
                if not reaches[in_id]:
                    reaches[in_id] = True
                    stack.append(in_id)
        self.reaches_output: List[bool] = reaches

    def _intern(self, net: str) -> int:
        if net not in self.net_ids:
            self.net_ids[net] = len(self.net_names)
            self.net_names.append(net)
        return self.net_ids[net]

    def is_input(self, net_id: int) -> bool:
        return net_id not in self.driver_gate

    def is_output(self, net_id: int) -> bool:
        return net_id in self._output_id_set

    def fanout_cone_gates(self, net_id: int) -> List[int]:
        """Gate indices in the transitive fanout of a net, topo order.

        This is the static bound on the region a fault on ``net_id``
        can influence; the event-driven fault simulator visits only the
        dynamically changed subset of it.  Cones are memoized on the
        circuit, so every simulator/pass sharing one
        :class:`CompiledCircuit` shares the precomputation.  Callers
        must not mutate the returned list.
        """
        cone = self._cone_cache.get(net_id)
        if cone is not None:
            return cone
        seen_gates = set()
        seen_nets = {net_id}
        stack = [net_id]
        while stack:
            net = stack.pop()
            for gate_index in self.fanout[net]:
                if gate_index not in seen_gates:
                    seen_gates.add(gate_index)
                    out = self.gates[gate_index].output
                    if out not in seen_nets:
                        seen_nets.add(out)
                        stack.append(out)
        cone = sorted(seen_gates)
        self._cone_cache[net_id] = cone
        return cone

    def ffr_view(self) -> Tuple[List[int], List[int]]:
        """Fanout-free-region structure: ``(ffr_root, ffr_load_gate)``.

        A net is a *region root* when it is a (pseudo-)primary output
        or does not feed exactly one gate pin (fanout stems, dangling
        nets, and nets wired to two pins of the same gate all count —
        the fanout list holds one entry per loading *pin*).
        ``ffr_root[n]`` is the root net the unique gate chain from
        ``n`` ends at (``n`` itself for roots); ``ffr_load_gate[n]`` is
        the single loading gate along that chain, or ``-1`` at roots.

        Inside a region every fault effect travels a unique
        reconvergence-free path, which is what lets the fault simulator
        replace per-fault event chases with local path-sensitization
        algebra on fully specified batches.  Net ids are topological
        (a gate's output id exceeds all its input ids), so one
        descending pass resolves every chain.  Memoized per circuit.
        """
        if self._ffr is None:
            load = [-1] * self.net_count
            root = list(range(self.net_count))
            is_out = self.is_output_flag
            fanout = self.fanout
            gate_out = self.gate_out
            for net_id in range(self.net_count - 1, -1, -1):
                loads = fanout[net_id]
                if len(loads) == 1 and not is_out[net_id]:
                    gate_index = loads[0]
                    load[net_id] = gate_index
                    root[net_id] = root[gate_out[gate_index]]
            self._ffr = (root, load)
        return self._ffr

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.name!r}, nets={self.net_count}, "
            f"gates={len(self.gates)}, inputs={len(self.input_ids)}, "
            f"outputs={len(self.output_ids)})"
        )
