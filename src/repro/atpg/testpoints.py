"""Test-point insertion for random-pattern testability.

BIST's pseudo-random patterns miss faults behind poorly controllable or
observable logic (:mod:`repro.circuit.scoap` quantifies where).  The
standard fix inserts *test points*:

* an **observation point** taps a hard-to-observe net to a new
  pseudo-output (a capture-only scan cell);
* a **control point** ORs (to force 1) or ANDs-with-NOT (to force 0) a
  dedicated scan-driven input into a hard-to-control net.

Both add scan cells — i.e. test data volume — so the coverage-vs-TDV
trade lands right back in the paper's accounting; the extension
experiment measures both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..circuit.scoap import INFINITY, scoap_measures


@dataclass(frozen=True)
class TestPoint:
    """One inserted test point."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    kind: str  # "observe", "control-1" or "control-0"
    net: str  # the net it improves


@dataclass
class TestPointPlan:
    """Selected test points plus the instrumented netlist."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    original_name: str
    points: List[TestPoint] = field(default_factory=list)

    @property
    def observe_count(self) -> int:
        return sum(1 for p in self.points if p.kind == "observe")

    @property
    def control_count(self) -> int:
        return sum(1 for p in self.points if p.kind.startswith("control"))

    def added_scan_cells(self) -> int:
        """Every point costs one scan cell (capture or drive)."""
        return len(self.points)


def select_test_points(
    netlist: Netlist,
    budget: int,
    observe_threshold: int = 20,
    control_threshold: int = 20,
) -> TestPointPlan:
    """Pick up to ``budget`` test points by SCOAP cost, worst first.

    Observation points go on gate-output nets with the highest CO;
    control points on nets whose worse controllability side exceeds the
    threshold (forcing the expensive value).  Primary outputs and
    (pseudo-)inputs are never instrumented — they are already
    accessible.
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    measures = scoap_measures(netlist)
    accessible = set(netlist.combinational_inputs()) | set(
        netlist.combinational_outputs()
    )
    candidates: List[Tuple[int, TestPoint]] = []
    for net, measure in measures.items():
        if net in accessible or netlist.gate_driving(net) is None:
            continue
        if measure.co >= observe_threshold:
            candidates.append(
                (min(measure.co, INFINITY), TestPoint("observe", net))
            )
        if measure.cc1 >= control_threshold and measure.cc1 >= measure.cc0:
            candidates.append((measure.cc1, TestPoint("control-1", net)))
        elif measure.cc0 >= control_threshold:
            candidates.append((measure.cc0, TestPoint("control-0", net)))
    candidates.sort(key=lambda item: (-item[0], item[1].net, item[1].kind))
    plan = TestPointPlan(original_name=netlist.name)
    seen = set()
    for _cost, point in candidates:
        if len(plan.points) >= budget:
            break
        if (point.net, point.kind) in seen:
            continue
        seen.add((point.net, point.kind))
        plan.points.append(point)
    return plan


def insert_test_points(netlist: Netlist, plan: TestPointPlan) -> Netlist:
    """Build the instrumented netlist.

    Control points rewrite the fanout of the target net: loads read the
    gated version (``OR(net, cp)`` or ``AND(net, NOT(cp))``) driven by a
    new flip-flop ``cp`` (scan-controllable, functionally neutral when
    the cell holds the inactive value).  Observation points add a new
    flip-flop capturing the net.
    """
    control_of: Dict[str, str] = {}
    instrumented = Netlist(f"{netlist.name}_tp")
    for net in netlist.inputs:
        instrumented.add_input(net)

    # New control flip-flops (their D inputs are tied back to themselves
    # through a buffer: pure test cells with no mission next-state).
    for index, point in enumerate(plan.points):
        if not point.kind.startswith("control"):
            continue
        cp = f"tp_ctl{index}"
        instrumented.add_flip_flop(cp, f"{cp}_hold")
        gated = f"tp_gated{index}"
        control_of[point.net] = gated
        if point.kind == "control-1":
            instrumented.add_gate(GateType.OR, gated, [point.net, cp])
        else:
            inverted = f"tp_ctln{index}"
            instrumented.add_gate(GateType.NOT, inverted, [cp])
            instrumented.add_gate(GateType.AND, gated, [point.net, inverted])
        instrumented.add_gate(GateType.BUF, f"{cp}_hold", [cp])

    def read(net: str) -> str:
        return control_of.get(net, net)

    for ff in netlist.flip_flops:
        instrumented.add_flip_flop(ff.output, f"{ff.output}_tp_d")
    for gate in netlist.topological_order():
        instrumented.add_gate(
            gate.gate_type, gate.output, [read(net) for net in gate.inputs]
        )
    for ff in netlist.flip_flops:
        instrumented.add_gate(GateType.BUF, f"{ff.output}_tp_d", [read(ff.data)])
    for net in netlist.outputs:
        instrumented.mark_output(net)

    for index, point in enumerate(plan.points):
        if point.kind != "observe":
            continue
        op = f"tp_obs{index}"
        instrumented.add_flip_flop(op, f"{op}_d")
        instrumented.add_gate(GateType.BUF, f"{op}_d", [read(point.net)])

    instrumented.validate()
    return instrumented


def map_faults_to_instrumented(
    original: Netlist, instrumented: Netlist
) -> Tuple[List, List]:
    """The original circuit's collapsed faults, in both id spaces.

    Coverage before/after test-point insertion is only comparable over
    the *same* logical fault list; the instrumented netlist adds gates
    (and hence faults) of its own.  Returns ``(original_faults,
    instrumented_faults)`` aligned index by index: stem faults map by
    net name, branch faults by (driving-gate output name, pin) — pins
    rewired to a gated net carry the fault on the new feeding net,
    which is the same physical gate input.
    """
    from .compiled import CompiledCircuit
    from .faults import Fault, collapse_faults

    source = CompiledCircuit(original)
    target = CompiledCircuit(instrumented)
    originals = collapse_faults(source)
    mapped = []
    for fault in originals:
        if fault.is_branch:
            out_name = source.net_names[source.gates[fault.gate_index].output]
            gate_index = target.driver_gate[target.net_ids[out_name]]
            net_id = target.gates[gate_index].inputs[fault.pin]
            mapped.append(Fault(net_id, fault.stuck_at, gate_index, fault.pin))
        else:
            mapped.append(Fault(target.net_ids[source.net_names[fault.net]],
                                fault.stuck_at))
    return originals, mapped


def apply_test_points(
    netlist: Netlist,
    budget: int,
    observe_threshold: int = 20,
    control_threshold: int = 20,
) -> Tuple[TestPointPlan, Netlist]:
    """Select and insert in one step."""
    plan = select_test_points(
        netlist, budget,
        observe_threshold=observe_threshold,
        control_threshold=control_threshold,
    )
    return plan, insert_test_points(netlist, plan)
