"""Bit-parallel three-valued logic simulation.

Patterns are packed into arbitrary-width Python integers in *dual-rail*
form: each net carries a pair ``(ones, zeros)`` of bitmasks, where bit
``k`` of ``ones`` means pattern ``k`` drives the net to 1, bit ``k`` of
``zeros`` means 0, and neither means X.  One pass over the gate table
simulates every packed pattern simultaneously — the classic
parallel-pattern single-fault trick, here with unbounded word width
because Python integers are arbitrary precision.

The hot representation is *flat*: the ones and zeros rails live in two
parallel lists indexed by net id (:class:`RailBatch`), and gate
evaluation dispatches through an opcode-indexed table of evaluators
(:data:`OP_EVAL`) over those lists.  The tuple-of-rails view
(``List[Rail]``) and the :func:`_eval_rail` if-chain are kept as the
compatibility/reference form — the differential kernel tests check the
flat kernels against them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuit.gates import GateType
from .compiled import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    OPCODES,
    CompiledCircuit,
)

Rail = Tuple[int, int]  # (ones mask, zeros mask)


class RailBatch:
    """Flat dual-rail net values for one packed pattern batch.

    ``ones[net_id]`` / ``zeros[net_id]`` are the per-net bitmasks over
    ``count`` packed patterns.  Indexing (``batch[net_id]``) returns the
    tuple-form :data:`Rail`, so code written against the list-of-rails
    view keeps working.
    """

    __slots__ = ("ones", "zeros", "count")

    def __init__(self, ones: List[int], zeros: List[int], count: int):
        self.ones = ones
        self.zeros = zeros
        self.count = count

    @property
    def full(self) -> int:
        return (1 << self.count) - 1

    def __getitem__(self, net_id: int) -> Rail:
        return (self.ones[net_id], self.zeros[net_id])

    def __len__(self) -> int:
        return len(self.ones)


def pack_patterns_flat(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, Optional[int]]],
) -> Tuple[List[int], List[int]]:
    """Pack per-pattern input assignments into flat ones/zeros lists.

    Each pattern maps input net ids to 0/1/None; missing entries are X.
    Non-input nets start all-X.
    """
    ones = [0] * circuit.net_count
    zeros = [0] * circuit.net_count
    for bit, pattern in enumerate(patterns):
        mask = 1 << bit
        for net_id, value in pattern.items():
            if value == 1:
                ones[net_id] |= mask
            elif value == 0:
                zeros[net_id] |= mask
    return ones, zeros


def pack_full_patterns_flat(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, int]],
) -> Tuple[List[int], List[int]]:
    """:func:`pack_patterns_flat` for *fully specified* patterns.

    Precondition: every pattern assigns 0/1 (never ``None``) to every
    input net.  The zeros rail is then just the complement of the ones
    rail over the batch width, so only the set bits need scattering —
    about half the per-bit work of the general packer on the final
    verify sweep's full-width batches.
    """
    ones = [0] * circuit.net_count
    zeros = [0] * circuit.net_count
    for bit, pattern in enumerate(patterns):
        mask = 1 << bit
        for net_id, value in pattern.items():
            if value:
                ones[net_id] |= mask
    full = (1 << len(patterns)) - 1
    for net_id in circuit.input_ids:
        zeros[net_id] = ones[net_id] ^ full
    return ones, zeros


def pack_patterns(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, Optional[int]]],
) -> List[Rail]:
    """Tuple-of-rails view of :func:`pack_patterns_flat` (compatibility)."""
    ones, zeros = pack_patterns_flat(circuit, patterns)
    return list(zip(ones, zeros))


# -- opcode-dispatched gate evaluators over the flat rails ---------------
#
# Each evaluator reads its input rails out of the flat ones/zeros lists
# and returns the gate's output rail.  ``OP_EVAL[opcode]`` replaces the
# old per-gate ``_eval_rail`` if-chain in the simulation hot loop.


def _eval_buf(ones, zeros, ins, full):
    i = ins[0]
    return ones[i], zeros[i]


def _eval_not(ones, zeros, ins, full):
    i = ins[0]
    return zeros[i], ones[i]


def _eval_and(ones, zeros, ins, full):
    o, z = full, 0
    for i in ins:
        o &= ones[i]
        z |= zeros[i]
    return o, z


def _eval_nand(ones, zeros, ins, full):
    o, z = full, 0
    for i in ins:
        o &= ones[i]
        z |= zeros[i]
    return z, o


def _eval_or(ones, zeros, ins, full):
    o, z = 0, full
    for i in ins:
        o |= ones[i]
        z &= zeros[i]
    return o, z


def _eval_nor(ones, zeros, ins, full):
    o, z = 0, full
    for i in ins:
        o |= ones[i]
        z &= zeros[i]
    return z, o


def _eval_xor(ones, zeros, ins, full):
    # Defined only where every operand is defined.
    it = iter(ins)
    i = next(it)
    o, z = ones[i], zeros[i]
    for i in it:
        io, iz = ones[i], zeros[i]
        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
    return o, z


def _eval_xnor(ones, zeros, ins, full):
    it = iter(ins)
    i = next(it)
    o, z = ones[i], zeros[i]
    for i in it:
        io, iz = ones[i], zeros[i]
        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
    return z, o


OP_EVAL = (
    _eval_buf,
    _eval_not,
    _eval_and,
    _eval_nand,
    _eval_or,
    _eval_nor,
    _eval_xor,
    _eval_xnor,
)
assert OP_EVAL[OP_BUF] is _eval_buf and OP_EVAL[OP_XNOR] is _eval_xnor


def simulate_flat(
    circuit: CompiledCircuit,
    ones: List[int],
    zeros: List[int],
    pattern_count: int,
) -> Tuple[List[int], List[int]]:
    """Evaluate every gate over flat packed rails, in place.

    ``ones``/``zeros`` must cover the input nets (one entry per net
    id); values for all other nets are overwritten.  Returns the same
    two lists for convenience.

    The opcode dispatch is inlined (one branch tree per gate instead of
    an :data:`OP_EVAL` indirect call) — this sweep runs once per packed
    batch and per accumulated PODEM pattern, and the per-gate call and
    result-tuple overhead of the table dispatch is measurable there.
    :data:`OP_EVAL` remains the reference the kernel tests check
    against.
    """
    full = (1 << pattern_count) - 1
    for op, out, ins in circuit.gate_table:
        if OP_AND <= op <= OP_NOR:
            if op <= OP_NAND:  # AND / NAND
                o, z = full, 0
                for i in ins:
                    o &= ones[i]
                    z |= zeros[i]
                if op == OP_NAND:
                    o, z = z, o
            else:  # OR / NOR
                o, z = 0, full
                for i in ins:
                    o |= ones[i]
                    z &= zeros[i]
                if op == OP_NOR:
                    o, z = z, o
        elif op <= OP_NOT:  # BUF / NOT
            i = ins[0]
            o, z = ones[i], zeros[i]
            if op == OP_NOT:
                o, z = z, o
        else:  # XOR / XNOR
            it = iter(ins)
            i = next(it)
            o, z = ones[i], zeros[i]
            for i in it:
                io, iz = ones[i], zeros[i]
                o, z = (o & iz) | (z & io), (o & io) | (z & iz)
            if op == OP_XNOR:
                o, z = z, o
        ones[out] = o
        zeros[out] = z
    return ones, zeros


def simulate_flat_sparse(
    circuit: CompiledCircuit,
    ones: List[int],
    zeros: List[int],
    pattern_count: int,
) -> Tuple[List[int], List[int]]:
    """Event-driven :func:`simulate_flat` for sparse (mostly-X) batches.

    Precondition: every non-input net is all-X (``ones[n] == zeros[n]
    == 0``), as :func:`pack_patterns_flat` produces.  Only gates
    reachable from non-X inputs are evaluated, and fanout is chased
    only from gates whose output came out non-X.

    This is bit-identical to the full sweep: in three-valued dual-rail
    logic a gate output can be non-X only if at least one input is
    non-X (every evaluator starts from the all-X identity and only
    accumulates input bits), so the full sweep leaves exactly the
    unvisited gates at X.  For PODEM's partial patterns — a few care
    bits driving a narrow cone — this touches a small fraction of the
    gate table.
    """
    full = (1 << pattern_count) - 1
    gate_table = circuit.gate_table
    gate_levels = circuit.gate_levels
    fanout_start = circuit.fanout_start
    fanout_gates = circuit.fanout_gates
    buckets: List[List[int]] = [[] for _ in range(circuit.max_level + 1)]
    scheduled = bytearray(len(gate_table))
    for net_id in circuit.input_ids:
        if ones[net_id] or zeros[net_id]:
            for slot in range(fanout_start[net_id], fanout_start[net_id + 1]):
                gate = fanout_gates[slot]
                if not scheduled[gate]:
                    scheduled[gate] = 1
                    buckets[gate_levels[gate]].append(gate)
    # Levels ascend, and a gate's inputs all come from strictly lower
    # levels, so by the time a bucket runs its gates see final values.
    for level in range(1, len(buckets)):
        for gate in buckets[level]:
            op, out, ins = gate_table[gate]
            if OP_AND <= op <= OP_NOR:
                if op <= OP_NAND:  # AND / NAND
                    o, z = full, 0
                    for i in ins:
                        o &= ones[i]
                        z |= zeros[i]
                    if op == OP_NAND:
                        o, z = z, o
                else:  # OR / NOR
                    o, z = 0, full
                    for i in ins:
                        o |= ones[i]
                        z &= zeros[i]
                    if op == OP_NOR:
                        o, z = z, o
            elif op <= OP_NOT:  # BUF / NOT
                i = ins[0]
                o, z = ones[i], zeros[i]
                if op == OP_NOT:
                    o, z = z, o
            else:  # XOR / XNOR
                it = iter(ins)
                i = next(it)
                o, z = ones[i], zeros[i]
                for i in it:
                    io, iz = ones[i], zeros[i]
                    o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                if op == OP_XNOR:
                    o, z = z, o
            if o or z:
                ones[out] = o
                zeros[out] = z
                for slot in range(fanout_start[out], fanout_start[out + 1]):
                    load = fanout_gates[slot]
                    if not scheduled[load]:
                        scheduled[load] = 1
                        buckets[gate_levels[load]].append(load)
    return ones, zeros


def simulate(
    circuit: CompiledCircuit,
    rails: List[Rail],
    pattern_count: int,
) -> List[Rail]:
    """Tuple-of-rails view of :func:`simulate_flat` (compatibility).

    The input list is not modified.
    """
    ones = [rail[0] for rail in rails]
    zeros = [rail[1] for rail in rails]
    simulate_flat(circuit, ones, zeros, pattern_count)
    return list(zip(ones, zeros))


def eval_rail_op(opcode: int, inputs: List[Rail], full: int) -> Rail:
    """Evaluate one gate (by opcode) over tuple-form input rails.

    This is the reference evaluator: exhaustively equivalent to the
    flat :data:`OP_EVAL` table (the kernel tests enforce it), and used
    on cold paths that assemble ad-hoc input rails — e.g. injecting a
    stuck value at one gate pin.
    """
    if opcode == OP_BUF:
        return inputs[0]
    if opcode == OP_NOT:
        ones, zeros = inputs[0]
        return zeros, ones
    if opcode == OP_AND or opcode == OP_NAND:
        ones, zeros = full, 0
        for in_ones, in_zeros in inputs:
            ones &= in_ones
            zeros |= in_zeros
        if opcode == OP_NAND:
            ones, zeros = zeros, ones
        return ones, zeros
    if opcode == OP_OR or opcode == OP_NOR:
        ones, zeros = 0, full
        for in_ones, in_zeros in inputs:
            ones |= in_ones
            zeros &= in_zeros
        if opcode == OP_NOR:
            ones, zeros = zeros, ones
        return ones, zeros
    # XOR / XNOR: defined only where both operands are defined.
    ones, zeros = inputs[0]
    for in_ones, in_zeros in inputs[1:]:
        ones, zeros = (
            (ones & in_zeros) | (zeros & in_ones),
            (ones & in_ones) | (zeros & in_zeros),
        )
    if opcode == OP_XNOR:
        ones, zeros = zeros, ones
    return ones, zeros


def _eval_rail(gate_type: GateType, inputs: List[Rail], full: int) -> Rail:
    """GateType-keyed form of :func:`eval_rail_op` (compatibility)."""
    return eval_rail_op(OPCODES[gate_type], inputs, full)


def output_rails(
    circuit: CompiledCircuit, values: Union[List[Rail], RailBatch]
) -> List[Rail]:
    """Rails of the (pseudo-)primary outputs, in declaration order."""
    return [values[net_id] for net_id in circuit.output_ids]


def unpack_value(rail: Rail, bit: int) -> Optional[int]:
    """The three-valued value of one pattern on one rail."""
    mask = 1 << bit
    if rail[0] & mask:
        return 1
    if rail[1] & mask:
        return 0
    return None
