"""Bit-parallel three-valued logic simulation.

Patterns are packed into arbitrary-width Python integers in *dual-rail*
form: each net carries a pair ``(ones, zeros)`` of bitmasks, where bit
``k`` of ``ones`` means pattern ``k`` drives the net to 1, bit ``k`` of
``zeros`` means 0, and neither means X.  One pass over the gate table
simulates every packed pattern simultaneously — the classic
parallel-pattern single-fault trick, here with unbounded word width
because Python integers are arbitrary precision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from .compiled import CompiledCircuit

Rail = Tuple[int, int]  # (ones mask, zeros mask)


def pack_patterns(
    circuit: CompiledCircuit,
    patterns: Sequence[Dict[int, Optional[int]]],
) -> List[Rail]:
    """Pack per-pattern input assignments into per-net rails.

    Each pattern maps input net ids to 0/1/None; missing entries are X.
    Returns a rail per net id (non-input nets start all-X).
    """
    ones = [0] * circuit.net_count
    zeros = [0] * circuit.net_count
    for bit, pattern in enumerate(patterns):
        mask = 1 << bit
        for net_id, value in pattern.items():
            if value == 1:
                ones[net_id] |= mask
            elif value == 0:
                zeros[net_id] |= mask
    return list(zip(ones, zeros))


def simulate(
    circuit: CompiledCircuit,
    rails: List[Rail],
    pattern_count: int,
) -> List[Rail]:
    """Evaluate every gate over the packed patterns; returns net rails.

    ``rails`` must cover the input nets; values for all other nets are
    overwritten.  The input list is not modified.
    """
    full = (1 << pattern_count) - 1
    values = list(rails)
    for gate in circuit.gates:
        values[gate.output] = _eval_rail(gate.gate_type, [values[i] for i in gate.inputs], full)
    return values


def _eval_rail(gate_type: GateType, inputs: List[Rail], full: int) -> Rail:
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.NOT:
        ones, zeros = inputs[0]
        return zeros, ones
    if gate_type in (GateType.AND, GateType.NAND):
        ones, zeros = full, 0
        for in_ones, in_zeros in inputs:
            ones &= in_ones
            zeros |= in_zeros
        if gate_type is GateType.NAND:
            ones, zeros = zeros, ones
        return ones, zeros
    if gate_type in (GateType.OR, GateType.NOR):
        ones, zeros = 0, full
        for in_ones, in_zeros in inputs:
            ones |= in_ones
            zeros &= in_zeros
        if gate_type is GateType.NOR:
            ones, zeros = zeros, ones
        return ones, zeros
    # XOR / XNOR: defined only where both operands are defined.
    ones, zeros = inputs[0]
    for in_ones, in_zeros in inputs[1:]:
        ones, zeros = (
            (ones & in_zeros) | (zeros & in_ones),
            (ones & in_ones) | (zeros & in_zeros),
        )
    if gate_type is GateType.XNOR:
        ones, zeros = zeros, ones
    return ones, zeros


def output_rails(circuit: CompiledCircuit, values: List[Rail]) -> List[Rail]:
    """Rails of the (pseudo-)primary outputs, in declaration order."""
    return [values[net_id] for net_id in circuit.output_ids]


def unpack_value(rail: Rail, bit: int) -> Optional[int]:
    """The three-valued value of one pattern on one rail."""
    mask = 1 << bit
    if rail[0] & mask:
        return 1
    if rail[1] & mask:
        return 0
    return None
