"""Linear-feedback shift registers and MISR response compaction.

The paper's introduction notes that a modular test's pattern source and
sink can sit on-chip (BIST) instead of on the ATE — trading stored test
data for generated patterns and compacted signatures.  This module
provides the two standard primitives: a Fibonacci-style LFSR as the
pseudo-random pattern source and a multiple-input signature register
(MISR) as the response sink.

Feedback polynomials are not hard-coded: :func:`find_primitive_taps`
*searches* for a primitive polynomial of the requested degree and
:func:`is_primitive` proves primitivity algebraically (x has
multiplicative order 2^n - 1 in GF(2)[x]/p(x)), so maximal length is a
theorem here, not a table lookup — and a property test confirms it by
walking the full cycle for small widths.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence

MAX_WIDTH = 32


# -- GF(2) polynomial arithmetic (polynomials as int bitmasks) -----------------


def _polymulmod(a: int, b: int, modulus: int) -> int:
    """(a * b) mod modulus over GF(2)."""
    degree = modulus.bit_length() - 1
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a >> degree & 1:
            a ^= modulus
    return result


def _polypowmod(base: int, exponent: int, modulus: int) -> int:
    result = 1
    while exponent:
        if exponent & 1:
            result = _polymulmod(result, base, modulus)
        base = _polymulmod(base, base, modulus)
        exponent >>= 1
    return result


def _prime_factors(value: int) -> List[int]:
    factors = []
    candidate = 2
    while candidate * candidate <= value:
        if value % candidate == 0:
            factors.append(candidate)
            while value % candidate == 0:
                value //= candidate
        candidate += 1 if candidate == 2 else 2
    if value > 1:
        factors.append(value)
    return factors


def is_primitive(width: int, taps: int) -> bool:
    """Whether ``x^width + sum(x^i for tap bits i)`` is primitive.

    Primitive means x generates the full multiplicative group of
    GF(2^width): ``x^(2^w - 1) == 1`` and ``x^((2^w - 1)/q) != 1`` for
    every prime factor q — exactly the maximal-length LFSR condition.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if not taps & 1:
        return False  # no constant term: x divides p, not even irreducible
    if taps >> width:
        raise ValueError("taps must have degree below width")
    modulus = (1 << width) | taps
    order = (1 << width) - 1
    if _polypowmod(2, order, modulus) != 1:  # 2 encodes the polynomial x
        return False
    return all(
        _polypowmod(2, order // q, modulus) != 1 for q in _prime_factors(order)
    )


@lru_cache(maxsize=None)
def find_primitive_taps(width: int) -> int:
    """The lowest-weight, lowest-value primitive tap mask for ``width``.

    Deterministic: trinomials (x^w + x^k + 1) are tried first, then
    pentanomials, so the result is stable across runs.
    """
    if not 2 <= width <= MAX_WIDTH:
        raise ValueError(f"width must be in [2, {MAX_WIDTH}], got {width}")
    # Trinomials: taps = x^k + 1.
    for k in range(1, width):
        taps = (1 << k) | 1
        if is_primitive(width, taps):
            return taps
    # Pentanomials: taps = x^a + x^b + x^c + 1.
    for a in range(3, width):
        for b in range(2, a):
            for c in range(1, b):
                taps = (1 << a) | (1 << b) | (1 << c) | 1
                if is_primitive(width, taps):
                    return taps
    raise RuntimeError(f"no primitive polynomial found for width {width}")


class Lfsr:
    """A Fibonacci LFSR over a proven-primitive polynomial.

    With a primitive polynomial the register cycles through all
    ``2**width - 1`` non-zero states — the maximal-length property BIST
    relies on for pattern coverage.
    """

    def __init__(self, width: int, seed: int = 1, taps: int = None):
        if not 2 <= width <= MAX_WIDTH:
            raise ValueError(f"width must be in [2, {MAX_WIDTH}], got {width}")
        if not 0 < seed < (1 << width):
            raise ValueError(f"seed must be a non-zero {width}-bit value")
        if taps is None:
            taps = find_primitive_taps(width)
        elif not is_primitive(width, taps):
            raise ValueError(f"taps {taps:#x} are not primitive for width {width}")
        self.width = width
        self.taps = taps
        self.state = seed

    def step(self) -> int:
        """Advance one cycle; returns the new state.

        The update is the companion recurrence of the feedback
        polynomial: the new low bit is the parity of the tapped state
        bits plus the outgoing high bit.
        """
        high = (self.state >> (self.width - 1)) & 1
        feedback = high ^ _parity(self.state & (self.taps >> 1))
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        return self.state

    def states(self, count: int) -> Iterator[int]:
        """The next ``count`` states."""
        for _ in range(count):
            yield self.step()

    def pattern_bits(self, count: int) -> List[List[int]]:
        """``count`` patterns of ``width`` bits each (MSB first)."""
        patterns = []
        for state in self.states(count):
            patterns.append(
                [(state >> (self.width - 1 - k)) & 1 for k in range(self.width)]
            )
        return patterns

    def period(self, limit: int = 1 << 22) -> int:
        """Cycle length from the current state (bounded walk)."""
        start = self.state
        steps = 0
        while steps < limit:
            self.step()
            steps += 1
            if self.state == start:
                return steps
        raise RuntimeError("period exceeds limit")


class Misr:
    """A multiple-input signature register (response compactor).

    Each cycle XORs an output-response vector into the shifting state;
    after the test the residual state is the signature.  Aliasing (a
    faulty response mapping to the good signature) has probability
    ~``2**-width``.
    """

    def __init__(self, width: int, seed: int = 0):
        if not 2 <= width <= MAX_WIDTH:
            raise ValueError(f"width must be in [2, {MAX_WIDTH}], got {width}")
        self.width = width
        self.taps = find_primitive_taps(width)
        self.state = seed

    def absorb(self, response_bits: Sequence[int]) -> int:
        """Compact one response vector (must fit the register width)."""
        if len(response_bits) > self.width:
            raise ValueError(
                f"response of {len(response_bits)} bits exceeds MISR width "
                f"{self.width}"
            )
        high = (self.state >> (self.width - 1)) & 1
        feedback = high ^ _parity(self.state & (self.taps >> 1))
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        word = 0
        for bit in response_bits:
            word = (word << 1) | (bit & 1)
        self.state ^= word
        return self.state

    @property
    def signature(self) -> int:
        return self.state


def _parity(value: int) -> int:
    return bin(value).count("1") & 1
