"""Logic BIST: on-chip pattern source and response sink.

The paper's test-architecture framing (after Zorian et al.) allows the
pattern source/sink to be on-chip.  This module closes that loop: an
LFSR drives the full-scan inputs, a MISR compacts the outputs, and the
external test data volume collapses to configuration, seed and
signature bits — the BIST-vs-ATE TDV comparison the introduction
gestures at, made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from ..runtime.config import AtpgConfig
    from .engine import AtpgResult

from ..circuit.netlist import Netlist
from .compiled import CompiledCircuit
from .faults import Fault, collapse_faults
from .faultsim import FaultSimulator
from .lfsr import MAX_WIDTH, Lfsr, Misr


@dataclass
class BistResult:
    """Outcome of one BIST session on one circuit."""

    circuit_name: str
    lfsr_width: int
    misr_width: int
    patterns_applied: int
    fault_count: int
    detected_count: int
    good_signature: int

    @property
    def fault_coverage(self) -> float:
        return self.detected_count / self.fault_count if self.fault_count else 1.0

    def external_data_bits(self) -> int:
        """Bits the ATE must still supply/compare under BIST.

        Seed in, expected signature out, plus a pattern-count word —
        constant in the pattern count, which is the whole point.
        """
        return self.lfsr_width + self.misr_width + 32


def _register_width(minimum: int) -> int:
    """Clamp a register width into the supported [2, MAX_WIDTH] range."""
    return max(2, min(MAX_WIDTH, minimum))


def run_bist(
    netlist: Netlist,
    patterns: int = 1024,
    seed: int = 1,
    faults: Optional[List[Fault]] = None,
    misr_width: int = 24,
) -> BistResult:
    """Pseudo-random BIST session with fault-dropping coverage measurement.

    The LFSR is as wide as the (pseudo-)input count (patterns are its
    successive states); coverage is measured by fault simulation of the
    applied sequence.  Random-pattern-resistant faults remain undetected
    — exactly the BIST quality problem deterministic ATPG top-up solves.
    """
    circuit = CompiledCircuit(netlist)
    if faults is None:
        faults = collapse_faults(circuit)
    input_count = len(circuit.input_ids)
    # Registers are capped at MAX_WIDTH bits; wide scan loads draw
    # several successive LFSR states per pattern instead — the serial
    # PRPG-feeds-scan-chain arrangement of STUMPS.
    lfsr = Lfsr(_register_width(input_count), seed=seed)
    misr = Misr(_register_width(max(2, misr_width)))
    simulator = FaultSimulator(circuit)

    def next_pattern():
        bits: List[int] = []
        while len(bits) < input_count:
            state = lfsr.step()
            bits.extend(
                (state >> (lfsr.width - 1 - k)) & 1 for k in range(lfsr.width)
            )
        return {
            net_id: bits[k] for k, net_id in enumerate(circuit.input_ids)
        }

    remaining = list(faults)
    applied = 0
    while applied < patterns:
        block_size = min(64, patterns - applied)
        block = [next_pattern() for _ in range(block_size)]
        good, count = simulator.good_values(block)
        remaining = [
            fault for fault in remaining
            if not simulator.detect_mask(good, count, fault)
        ]
        ones = good.ones
        for bit in range(count):
            mask = 1 << bit
            # Read responses straight off the flat ones rail; an X
            # output compacts as 0, as before.
            response = [
                1 if ones[net_id] & mask else 0
                for net_id in circuit.output_ids
            ]
            # Fold wide responses into the MISR width.
            folded = [0] * min(misr.width, len(response))
            for k, value in enumerate(response):
                folded[k % len(folded)] ^= value
            misr.absorb(folded)
        applied += block_size

    return BistResult(
        circuit_name=netlist.name,
        lfsr_width=lfsr.width,
        misr_width=misr.width,
        patterns_applied=applied,
        fault_count=len(faults),
        detected_count=len(faults) - len(remaining),
        good_signature=misr.signature,
    )


@dataclass
class BistVsAteComparison:
    """External TDV under BIST vs external scan test, one circuit."""

    bist: BistResult
    ate_patterns: int
    ate_bits: int  # (I + O + 2S) * T, the Eq. 1 accounting

    @property
    def external_reduction_ratio(self) -> float:
        return self.ate_bits / self.bist.external_data_bits()


def compare_bist_vs_ate(
    netlist: Netlist,
    bist_patterns: int = 1024,
    seed: int = 1,
    config: Optional["AtpgConfig"] = None,
    ate_result: Optional["AtpgResult"] = None,
) -> BistVsAteComparison:
    """External-data comparison: BIST session vs deterministic scan test.

    ``config`` gives the ATE-side ATPG run a full identity
    (:class:`repro.runtime.config.AtpgConfig`; its seed also drives the
    LFSR); ``ate_result`` lets callers inject a result obtained through
    the runtime's cache/executor instead of rerunning ATPG here.
    """
    from .engine import generate_tests
    from .export import model_bits

    if config is not None:
        seed = config.seed
    bist = run_bist(netlist, patterns=bist_patterns, seed=seed)
    if ate_result is None:
        ate_result = generate_tests(netlist, seed=seed, config=config)
    return BistVsAteComparison(
        bist=bist,
        ate_patterns=ate_result.pattern_count,
        ate_bits=model_bits(netlist, ate_result.pattern_count),
    )
