"""Transition-delay fault testing via launch-off-shift (LOS).

At-speed testing targets *transition faults* — a net too slow to rise
or fall — with pattern pairs: the initial vector V1 sets the net to the
start value, the launch vector V2 creates the transition and propagates
the (late) final value to an observation point.  Under launch-off-shift
the launch vector is the last shift of the scan load, so the two
vectors are locked together: ``V2's scan state = V1's shifted by one
position`` (per chain, with one fresh scan-in bit), while primary
inputs are held constant across the pair.

The generator here reuses the stuck-at machinery: V2 must detect
stuck-at-(final value) on the net, which PODEM provides; V1 is then
*derived* by inverse-shifting V2's scan state (the free bits are the
ones shifted out), and the launch condition (net at the start value
under V1) is checked by simulation over several X-fill completions —
the pragmatic justify-by-retry scheme, with per-fault success/abort
accounting.

Transition tests cost more data than stuck-at tests: more patterns
(each fault needs a satisfiable pair) at the *same* per-pattern bit
width — which is exactly how they enter the paper's TDV accounting, and
what the extension experiment measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Netlist
from ..circuit.scan import ScanInsertion, insert_scan
from ..runtime.config import AtpgConfig
from .compiled import CompiledCircuit
from .faults import Fault
from .logicsim import pack_patterns_flat, simulate_flat
from .patterns import TestPattern
from .podem import Podem, PodemOutcome


@dataclass(frozen=True)
class TransitionFault:
    """A slow-to-rise (``rising=True``) or slow-to-fall transition fault."""

    net: int
    rising: bool

    @property
    def initial_value(self) -> int:
        return 0 if self.rising else 1

    @property
    def final_value(self) -> int:
        return 1 if self.rising else 0

    def describe(self, circuit: CompiledCircuit) -> str:
        kind = "slow-to-rise" if self.rising else "slow-to-fall"
        return f"{circuit.net_names[self.net]} {kind}"


@dataclass
class TransitionPatternPair:
    """One LOS pair: the initial load plus the scan-in launch bits."""

    fault: TransitionFault
    initial: TestPattern  # V1: primary inputs + scan state
    launch_scan_in: Dict[str, int]  # chain name -> the bit shifted in for V2


@dataclass
class TransitionAtpgResult:
    """Transition-fault ATPG outcome for one circuit."""

    circuit_name: str
    pairs: List[TransitionPatternPair] = field(default_factory=list)
    fault_count: int = 0
    detected_count: int = 0
    unlaunchable: int = 0  # V2 exists but no V1 completion launches
    untestable: int = 0  # no V2 at all (stuck-at untestable)

    @property
    def pattern_pair_count(self) -> int:
        return len(self.pairs)

    @property
    def fault_coverage(self) -> float:
        return self.detected_count / self.fault_count if self.fault_count else 1.0


def transition_fault_universe(circuit: CompiledCircuit) -> List[TransitionFault]:
    """Both transition polarities on every net (stem faults)."""
    faults = []
    for net_id in range(circuit.net_count):
        faults.append(TransitionFault(net_id, rising=True))
        faults.append(TransitionFault(net_id, rising=False))
    return faults


def _inverse_shift(
    v2_scan: Dict[str, int],
    insertion: ScanInsertion,
    name_to_id: Dict[str, int],
) -> Tuple[Dict[int, int], Dict[str, Optional[int]]]:
    """Derive V1's scan state from V2's under the LOS relation.

    Shifting moves each chain's cell k value into cell k+1, so V1's
    cell k+1 must equal V2's cell k; V2's cell 0 came from the scan-in
    pin (free), and V1's last cell shifted out (free in V1).
    """
    v1_scan: Dict[int, int] = {}
    scan_in: Dict[str, Optional[int]] = {}
    for chain in insertion.chains:
        cells = [name_to_id[name] for name in chain.cells]
        for k in range(1, len(cells)):
            value = v2_scan.get(cells[k])
            if value is not None:
                v1_scan[cells[k - 1]] = value
        scan_in[chain.name] = (
            v2_scan.get(cells[0]) if cells else None
        )
    return v1_scan, scan_in


def generate_transition_tests(
    netlist: Netlist,
    insertion: Optional[ScanInsertion] = None,
    seed: int = 0,
    fill_retries: int = 8,
    backtrack_limit: int = 100,
    faults: Optional[List[TransitionFault]] = None,
    config: Optional[AtpgConfig] = None,
) -> TransitionAtpgResult:
    """LOS transition-fault test generation.

    Per fault: PODEM finds a launch vector V2 detecting stuck-at-(final)
    on the net; the LOS relation fixes most of V1; the remaining X bits
    are filled (several seeds) until a completion satisfies the launch
    condition (net at the initial value under V1).  Primary inputs are
    shared by V1/V2, so V2's PI assignment carries over.

    ``config`` overrides ``seed``/``backtrack_limit`` so transition runs
    share the stuck-at flow's run identity
    (:class:`repro.runtime.config.AtpgConfig`).
    """
    if config is not None:
        seed = config.seed
        backtrack_limit = config.backtrack_limit
    circuit = CompiledCircuit(netlist)
    if insertion is None:
        insertion = insert_scan(netlist, chain_count=1)
    if faults is None:
        faults = transition_fault_universe(circuit)
    ff_ids = {netlist.flip_flops[i].output for i in range(len(netlist.flip_flops))}
    name_to_id = circuit.net_ids
    scan_id_set = {name_to_id[name] for name in ff_ids}
    pi_ids = [name_to_id[name] for name in netlist.inputs]

    podem = Podem(circuit, backtrack_limit=backtrack_limit)
    rng = random.Random(seed)
    result = TransitionAtpgResult(
        circuit_name=netlist.name, fault_count=len(faults)
    )

    for fault in faults:
        v2_result = podem.generate(Fault(fault.net, fault.final_value ^ 1))
        # Detecting stuck-at-initial means V2 drives the net to *final*
        # and propagates it: exactly the launch vector's job.
        if v2_result.outcome is not PodemOutcome.DETECTED:
            result.untestable += 1
            continue
        v2 = v2_result.pattern.assignments
        v2_scan = {net: value for net, value in v2.items() if net in scan_id_set}
        v1_scan, scan_in = _inverse_shift(v2_scan, insertion, name_to_id)
        v1_base = {net: value for net, value in v2.items() if net in set(pi_ids)}
        v1_base.update(v1_scan)

        pair = _justify_launch(
            circuit, fault, v1_base, scan_in, rng, fill_retries
        )
        if pair is None:
            result.unlaunchable += 1
            continue
        result.pairs.append(pair)
        result.detected_count += 1
    return result


def _justify_launch(
    circuit: CompiledCircuit,
    fault: TransitionFault,
    v1_base: Dict[int, int],
    scan_in: Dict[str, Optional[int]],
    rng: random.Random,
    fill_retries: int,
) -> Optional[TransitionPatternPair]:
    """Fill V1's free bits until the net sits at the initial value."""
    free = [net for net in circuit.input_ids if net not in v1_base]
    for _ in range(max(1, fill_retries)):
        candidate = dict(v1_base)
        for net in free:
            candidate[net] = rng.getrandbits(1)
        ones, zeros = pack_patterns_flat(circuit, [candidate])
        simulate_flat(circuit, ones, zeros, 1)
        launched = (ones if fault.initial_value else zeros)[fault.net] & 1
        if launched:
            launch_bits = {
                chain: (value if value is not None else rng.getrandbits(1))
                for chain, value in scan_in.items()
            }
            return TransitionPatternPair(
                fault=fault,
                initial=TestPattern(candidate),
                launch_scan_in=launch_bits,
            )
    return None


def transition_vs_stuck_at_patterns(
    netlist: Netlist, seed: int = 0
) -> Tuple[int, int]:
    """(stuck-at pattern count, transition pattern-pair count).

    The at-speed data-volume multiplier: each transition pair costs one
    full load plus a shift, so the TDV ratio is roughly the pair/pattern
    ratio — the quantity the extension experiment reports per core.
    """
    from .engine import generate_tests

    stuck_at = generate_tests(netlist, seed=seed)
    transition = generate_transition_tests(netlist, seed=seed)
    return stuck_at.pattern_count, transition.pattern_pair_count
