"""The population study: Section 5.2's correlation at large N.

The paper ties TDV reduction to the normalized standard deviation of
core pattern counts using ten benchmark SOCs.  Ten points make a
suggestive scatter, not a statistical claim — so this experiment
re-tests the relation on a latin-hypercube population of 1000+
profile-matched synthetic SOCs (:mod:`repro.synth.population`), with
every *other* design knob (core count, mean test size, scan depth,
wrapper width) varying at the same time.  If the correlation survives
that noise, it is a property of the TDV model, not of the benchmark
selection.

The sweep runs on :class:`~repro.sweeps.engine.SweepEngine`: it fans
across ``--workers``, journals shards under ``--run-dir`` and resumes
with ``--resume``, and streams every record through the aggregators —
so stdout is byte-identical no matter how the run was executed,
killed, or resumed.  ``REPRO_POPULATION_N`` scales the population
(CI smokes run small); the report prints the same checks either way.
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..runtime.session import Runtime

from ..core.report import format_table
from ..sweeps import (
    BinnedMean,
    FractionTrue,
    RunningStats,
    StreamingRegression,
    SweepEngine,
    SweepRunResult,
)
from ..synth.population import (
    CORE_COUNT_RANGE,
    evaluate_population_point,
    population_spec,
    profile_io_bounds,
    profile_scan_bounds,
)
from .registry import experiment

DEFAULT_SAMPLES = 1000
DEFAULT_SHARD_SIZE = 50
DEFAULT_SEED = 11

#: The large-N acceptance thresholds: the relation must be clearly
#: positive, not just nonzero-by-luck.
MIN_PEARSON = 0.30

NSD_BIN_EDGES = (0.25, 0.5, 0.75, 1.0, 1.5)


def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
    samples: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> SweepRunResult:
    """CLI entry point: sample, analyze, correlate, and judge.

    ``samples`` defaults to ``$REPRO_POPULATION_N`` or 1000;
    ``shard_size`` to ``$REPRO_POPULATION_SHARD`` or 50 (a killed run
    re-does at most one shard per worker).  Execution details go to
    stderr; stdout carries only the population-invariant report.
    """
    if samples is None:
        samples = int(os.environ.get("REPRO_POPULATION_N", DEFAULT_SAMPLES))
    if shard_size is None:
        shard_size = int(
            os.environ.get("REPRO_POPULATION_SHARD", DEFAULT_SHARD_SIZE)
        )
    if seed is None:
        seed = DEFAULT_SEED

    spec = population_spec(samples, seed=seed)
    nsd = RunningStats("nsd")
    reduction = RunningStats("reduction_pct")
    trend = StreamingRegression("nsd", "reduction_pct")
    wins = FractionTrue("modular_wins")
    bins = BinnedMean("nsd", "reduction_pct", NSD_BIN_EDGES)

    engine = SweepEngine(runtime, shard_size=shard_size)
    result = engine.run(
        spec,
        evaluate_population_point,
        aggregators=(nsd, reduction, trend, wins, bins),
    )
    print(f"[sweep] {result.summary()}", file=sys.stderr)

    if verbose:
        scan_lo, scan_hi = profile_scan_bounds()
        io_lo, io_hi = profile_io_bounds()
        print(f"Population study: reduction vs pattern variation "
              f"(N={samples} synthetic SOCs)")
        print(f"  profile-matched axes: cores {CORE_COUNT_RANGE[0]}-"
              f"{CORE_COUNT_RANGE[1]}, scan/core {scan_lo}-{scan_hi} "
              f"(ISCAS'89 envelope), wrapper I/O {io_lo}-{io_hi}")
        print(f"  nsd: mean {nsd.mean:.2f}, stdev {nsd.stdev:.2f}, "
              f"range [{nsd.minimum:.2f}, {nsd.maximum:.2f}]")
        print(f"  reduction: mean {reduction.mean:+.1f}%, stdev "
              f"{reduction.stdev:.1f}, range [{reduction.minimum:+.1f}%, "
              f"{reduction.maximum:+.1f}%]")
        print(f"  modular wins on {100.0 * wins.fraction:.1f}% of SOCs "
              f"({wins.true_count}/{wins.count})")
        rows = [
            [row["bin"], row["count"],
             "-" if row["mean"] is None else f"{row['mean']:+.1f}%"]
            for row in bins.rows()
        ]
        print(format_table(["nsd bin", "SOCs", "mean reduction"], rows))
        print(f"  Pearson r(nsd, reduction) = {trend.pearson:+.3f}   "
              f"(benchmark suite: +0.832 over ten SOCs)")
        print(f"  trend: reduction ~= {trend.slope:+.1f}%/nsd "
              f"{trend.intercept:+.1f}%")
        print(f"  check: correlation positive at scale "
              f"(r > {MIN_PEARSON:.2f}): "
              f"{'PASS' if trend.pearson > MIN_PEARSON else 'FAIL'}")
        print(f"  check: reduction rises with variation (slope > 0): "
              f"{'PASS' if trend.slope > 0 else 'FAIL'}")
    return result


experiment("population", order=70)(run)
