"""Command-line runner: ``repro-experiments <name>``.

Experiments map one-to-one to the paper's tables and figures:

===============  ======================================================
``cone-example`` Section 3 worked example (Figures 1-2)
``table1``       SOC1 from ISCAS'89-profile cores (Table 1, Figure 4)
``table2``       SOC2 from ISCAS'89-profile cores (Table 2, Figure 5)
``table3``       p34392 per-core TDV (Table 3, Figure 3)
``table4``       all ten ITC'02 SOCs (Table 4)
``correlation``  reduction vs pattern-count variation (Section 5.2)
``ablation``     idle bits / wrapper overhead / granularity
``extensions``   BIST / compression / abort-on-fail follow-on studies
``tam``          wrapper/TAM co-optimization design space (ROADMAP 3)
``population``   Section 5.2's correlation at N=1000+ synthetic SOCs
``all``          everything above, in order
===============  ======================================================

The table is not maintained by hand: each experiment module registers
its entry point with :func:`repro.experiments.registry.experiment`,
and ``EXPERIMENTS`` is derived from that registry at import time.

Every experiment executes its ATPG through :mod:`repro.runtime`: the
shared ``--workers`` / ``--cache-dir`` / ``--no-cache`` flags control
parallel fan-out and the content-addressed result cache, and a run
manifest (job count, cache hit rate, ATPG wall-clock) is printed to
stderr so table output on stdout stays byte-identical across serial,
parallel and warm-cache runs.  The resilience flags (``--deadline``,
``--retries``, ``--on-error``) harden long campaigns, and ``--run-dir``
/ ``--resume`` journal completed jobs so a killed run picks up where
it stopped — with byte-identical output.

``--seed`` is threaded into every experiment uniformly.  Left unset,
each experiment keeps its historical default seed (it used to be
silently dropped for everything except tables 1-2); the analytic
experiments (table3/table4, correlation's benchmark half, ablation)
have no stochastic component and ignore it by construction.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from contextlib import contextmanager
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..observability import register_counter
from ..runtime.session import Runtime, ensure_runtime
from . import (  # noqa: F401 — importing registers each experiment
    ablation,
    cone_example,
    correlation,
    extensions,
    iscas_socs,
    itc02_tables,
    population,
    tam,
)
from .registry import get as get_experiment
from .registry import names as experiment_names

EXPERIMENTS = experiment_names()

EXPERIMENT_RUNS = register_counter("experiments.runs", "experiments executed")


def _accepted_options(
    run: Any, options: Optional[Mapping[str, Any]]
) -> Dict[str, Any]:
    """The subset of ``options`` the experiment's ``run`` accepts.

    Experiment-specific flags (``--tam-widths``, ...) are threaded by
    keyword; an experiment that doesn't take one simply doesn't get it,
    so ``all`` runs apply each option only where it belongs.
    """
    if not options:
        return {}
    parameters = inspect.signature(run).parameters
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return dict(options)
    return {key: value for key, value in options.items() if key in parameters}


def run_experiment(
    name: str,
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> None:
    """Run one experiment, threading seed and runtime into it.

    The whole experiment runs under the runtime's tracer (if any), so
    even its non-runtime work lands inside one ``experiment`` span.
    ``options`` carries experiment-specific keyword arguments; only
    those the experiment accepts are passed.  An unknown name raises
    ValueError.
    """
    entry = get_experiment(name)
    runtime = ensure_runtime(runtime)
    extra = _accepted_options(entry.run, options)
    with runtime.activate() as tracer:
        with tracer.span("experiment", name=name):
            tracer.count(EXPERIMENT_RUNS)
            entry.run(seed=seed, runtime=runtime, **extra)


def run_experiments(
    names: Sequence[str],
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> None:
    """Run several experiments, each followed by a blank line.

    Experiments sharing one underlying runner (``table3``/``table4``,
    which both print the combined ITC'02 report) run once per group,
    not once per name — the behavior both CLIs used to hand-roll.
    """
    seen = set()
    for name in names:
        key = get_experiment(name).dedupe_key
        if key in seen:
            continue
        seen.add(key)
        run_experiment(name, seed=seed, runtime=runtime, options=options)
        print()


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution flags shared by both CLIs (see also repro.cli)."""
    parser.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="worker processes for per-core/per-circuit ATPG fan-out "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="ATPG result cache directory (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro/atpg)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the ATPG result cache entirely",
    )
    parser.add_argument(
        "--backend", choices=("auto", "pure", "numpy"), default=None,
        help="fault-simulation kernel backend (default: $REPRO_BACKEND "
             "or auto; every backend is bit-identical)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a JSONL span/counter trace of the whole run to FILE",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry summary table to stderr after the run",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock deadline; a job past it aborts "
             "cooperatively with a timeout (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="re-attempt failed jobs up to N extra times (implies "
             "--on-error retry; timeouts retry under a perturbed seed)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        help="what a failed job does to the run: raise (default), skip "
             "(record and continue), or retry",
    )
    parser.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="journal every completed job to DIR (jobs/ + manifest.json) "
             "so a killed run can be resumed",
    )
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="run under cProfile and dump pstats data to FILE "
             "(parent process only; inspect with python -m pstats FILE)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the run journaled in --run-dir: journaled jobs are "
             "skipped, output is bit-identical to an uninterrupted run",
    )


def _int_list(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        )
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _str_list(text: str) -> List[str]:
    values = [part.strip() for part in text.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected at least one name")
    return values


def add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment-specific flags, shared by both CLIs.

    Each flag maps to a keyword argument of one experiment's ``run``;
    the runner threads it only into experiments that accept it.
    """
    from ..tam import SCHEDULERS

    group = parser.add_argument_group("tam experiment")
    group.add_argument(
        "--tam-widths", type=_int_list, default=None, metavar="W,W,...",
        help="TAM widths to sweep, comma-separated "
             "(default: 8,16,24,32,48,64)",
    )
    group.add_argument(
        "--tam-socs", type=_str_list, default=None, metavar="SOC,SOC,...",
        help="ITC'02 SOCs to sweep, comma-separated "
             "(default: the full ten-SOC suite)",
    )
    group.add_argument(
        "--scheduler", choices=SCHEDULERS, default=None,
        help="restrict the sweep to one test scheduler "
             "(default: greedy and binpack, so their makespans compare)",
    )
    group.add_argument(
        "--tam-front", default=None, metavar="FILE",
        help="write the surviving (width, makespan, TDV) Pareto front "
             "as a JSON artifact to FILE",
    )


def experiment_options(args: argparse.Namespace) -> Dict[str, Any]:
    """The experiment keyword options the parsed flags describe."""
    mapping = {
        "tam_widths": getattr(args, "tam_widths", None),
        "socs": getattr(args, "tam_socs", None),
        "scheduler": getattr(args, "scheduler", None),
        "front_path": getattr(args, "tam_front", None),
    }
    return {key: value for key, value in mapping.items() if value is not None}


@contextmanager
def maybe_profile(args: argparse.Namespace):
    """cProfile the enclosed block when ``--profile FILE`` was given.

    The pstats dump lands on FILE even if the block raises, so a
    profile of a run that died at its deadline is still inspectable.
    Worker processes are not profiled — run with ``--workers 1`` to
    see the whole flow in one profile.
    """
    path = getattr(args, "profile", None)
    if not path:
        yield
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"[profile] wrote {path}", file=sys.stderr)


def runtime_from_args(args: argparse.Namespace, seed: Optional[int] = None) -> Runtime:
    """Build the Runtime the shared flags describe."""
    return Runtime.from_flags(
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        seed=seed,
        trace=args.trace,
        metrics=args.metrics,
        deadline=args.deadline,
        retries=args.retries,
        on_error=args.on_error,
        run_dir=args.run_dir,
        resume=args.resume,
        backend=getattr(args, "backend", None),
    )


def report_runtime(runtime: Runtime) -> None:
    """Print the run manifest and telemetry to stderr (stdout carries
    only tables)."""
    if runtime.manifest.job_count:
        print(f"[runtime] {runtime.summary()}", file=sys.stderr)
    tracer = runtime.tracer
    if tracer is None:
        return
    if runtime.metrics_requested:
        print(f"[metrics]\n{tracer.summary()}", file=sys.stderr)
    tracer.flush()
    if runtime.trace_path:
        print(f"[trace] wrote {runtime.trace_path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="ATPG/generation seed, threaded into every experiment "
             "(default: each experiment's historical seed)",
    )
    add_runtime_arguments(parser)
    add_experiment_arguments(parser)
    args = parser.parse_args(argv)
    runtime = runtime_from_args(args)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    with maybe_profile(args):
        run_experiments(names, seed=args.seed, runtime=runtime,
                        options=experiment_options(args))
    report_runtime(runtime)
    return 0


if __name__ == "__main__":
    sys.exit(main())
