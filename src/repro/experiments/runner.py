"""Command-line runner: ``python -m repro.experiments <name>``.

Experiments map one-to-one to the paper's tables and figures:

===============  ======================================================
``cone-example`` Section 3 worked example (Figures 1-2)
``table1``       SOC1 from ISCAS'89-profile cores (Table 1, Figure 4)
``table2``       SOC2 from ISCAS'89-profile cores (Table 2, Figure 5)
``table3``       p34392 per-core TDV (Table 3, Figure 3)
``table4``       all ten ITC'02 SOCs (Table 4)
``correlation``  reduction vs pattern-count variation (Section 5.2)
``ablation``     idle bits / wrapper overhead / granularity
``extensions``   BIST / compression / abort-on-fail follow-on studies
``all``          everything above, in order
===============  ======================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import (
    ablation,
    cone_example,
    correlation,
    extensions,
    iscas_socs,
    itc02_tables,
)

EXPERIMENTS = (
    "cone-example", "table1", "table2", "table3", "table4",
    "correlation", "ablation", "extensions",
)


def run_experiment(name: str, seed: int = 3) -> None:
    if name == "cone-example":
        cone_example.run()
    elif name == "table1":
        iscas_socs.run(table=1, seed=seed)
    elif name == "table2":
        iscas_socs.run(table=2, seed=seed)
    elif name in ("table3", "table4"):
        itc02_tables.run()
    elif name == "correlation":
        correlation.run()
    elif name == "ablation":
        ablation.run()
    elif name == "extensions":
        extensions.run()
    else:
        raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=3,
        help="ATPG/generation seed for the ISCAS'89 experiments",
    )
    args = parser.parse_args(argv)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    seen = set()
    for name in names:
        # table3 and table4 share one runner; don't print it twice.
        key = "itc02" if name in ("table3", "table4") else name
        if key in seen:
            continue
        seen.add(key)
        run_experiment(name, seed=args.seed)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
