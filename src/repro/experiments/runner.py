"""The experiment registry runner behind ``repro experiments <name>``.

Experiments map one-to-one to the paper's tables and figures:

===============  ======================================================
``cone-example`` Section 3 worked example (Figures 1-2)
``table1``       SOC1 from ISCAS'89-profile cores (Table 1, Figure 4)
``table2``       SOC2 from ISCAS'89-profile cores (Table 2, Figure 5)
``table3``       p34392 per-core TDV (Table 3, Figure 3)
``table4``       all ten ITC'02 SOCs (Table 4)
``correlation``  reduction vs pattern-count variation (Section 5.2)
``ablation``     idle bits / wrapper overhead / granularity
``extensions``   BIST / compression / abort-on-fail follow-on studies
``tam``          wrapper/TAM co-optimization design space (ROADMAP 3)
``population``   Section 5.2's correlation at N=1000+ synthetic SOCs
``all``          everything above, in order
===============  ======================================================

The table is not maintained by hand: each experiment module registers
its entry point with :func:`repro.experiments.registry.experiment`,
and ``EXPERIMENTS`` is derived from that registry at import time.

Every experiment executes its ATPG through :mod:`repro.runtime`: the
shared ``--workers`` / ``--cache-dir`` / ``--no-cache`` flags control
parallel fan-out and the content-addressed result cache, and a run
manifest (job count, cache hit rate, ATPG wall-clock) is printed to
stderr so table output on stdout stays byte-identical across serial,
parallel and warm-cache runs.  The resilience flags (``--deadline``,
``--retries``, ``--on-error``) harden long campaigns, and ``--run-dir``
/ ``--resume`` journal completed jobs so a killed run picks up where
it stopped — with byte-identical output.

``--seed`` is threaded into every experiment uniformly.  Left unset,
each experiment keeps its historical default seed (it used to be
silently dropped for everything except tables 1-2); the analytic
experiments (table3/table4, correlation's benchmark half, ablation)
have no stochastic component and ignore it by construction.

The flag plumbing itself (``add_runtime_arguments`` & co.) lives in
the shared registry :mod:`repro.flags`; the historical names are
re-exported here so pre-consolidation imports keep working.  The old
``repro-experiments`` console script forwards to ``repro experiments``
with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import inspect
import sys
import warnings
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..flags import (  # noqa: F401 — re-exported for back-compat
    add_experiment_arguments,
    add_runtime_arguments,
    experiment_options,
    maybe_profile,
    report_runtime,
    runtime_from_args,
)
from ..observability import register_counter
from ..runtime.session import Runtime, ensure_runtime
from . import (  # noqa: F401 — importing registers each experiment
    ablation,
    cone_example,
    correlation,
    extensions,
    iscas_socs,
    itc02_tables,
    population,
    tam,
)
from .registry import get as get_experiment
from .registry import names as experiment_names

EXPERIMENTS = experiment_names()

EXPERIMENT_RUNS = register_counter("experiments.runs", "experiments executed")


def _accepted_options(
    run: Any, options: Optional[Mapping[str, Any]]
) -> Dict[str, Any]:
    """The subset of ``options`` the experiment's ``run`` accepts.

    Experiment-specific flags (``--tam-widths``, ...) are threaded by
    keyword; an experiment that doesn't take one simply doesn't get it,
    so ``all`` runs apply each option only where it belongs.
    """
    if not options:
        return {}
    parameters = inspect.signature(run).parameters
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return dict(options)
    return {key: value for key, value in options.items() if key in parameters}


def run_experiment(
    name: str,
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> None:
    """Run one experiment, threading seed and runtime into it.

    The whole experiment runs under the runtime's tracer (if any), so
    even its non-runtime work lands inside one ``experiment`` span.
    ``options`` carries experiment-specific keyword arguments; only
    those the experiment accepts are passed.  An unknown name raises
    ValueError.
    """
    entry = get_experiment(name)
    runtime = ensure_runtime(runtime)
    extra = _accepted_options(entry.run, options)
    with runtime.activate() as tracer:
        with tracer.span("experiment", name=name):
            tracer.count(EXPERIMENT_RUNS)
            entry.run(seed=seed, runtime=runtime, **extra)


def run_experiments(
    names: Sequence[str],
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> None:
    """Run several experiments, each followed by a blank line.

    Experiments sharing one underlying runner (``table3``/``table4``,
    which both print the combined ITC'02 report) run once per group,
    not once per name — the behavior both CLIs used to hand-roll.
    """
    seen = set()
    for name in names:
        key = get_experiment(name).dedupe_key
        if key in seen:
            continue
        seen.add(key)
        run_experiment(name, seed=seed, runtime=runtime, options=options)
        print()


def main(argv: Optional[List[str]] = None) -> int:
    """Deprecated entry point: ``repro-experiments`` became
    ``repro experiments``.

    The shim forwards verbatim to the unified CLI (identical flags,
    identical behavior) and will be removed after one release.
    """
    warnings.warn(
        "the repro-experiments entry point is deprecated; "
        "use `repro experiments <name> ...` instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..cli import main as cli_main

    arguments = list(argv) if argv is not None else sys.argv[1:]
    return cli_main(["experiments"] + arguments)


if __name__ == "__main__":
    sys.exit(main())
