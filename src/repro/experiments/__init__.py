"""One module per paper table/figure, plus the CLI runner.

Each experiment module self-registers its entry point with the
decorator in :mod:`repro.experiments.registry`; the runner derives its
experiment table (and ``all``'s order) from that registry.
"""

from .ablation import granularity_ablation, idle_bit_ablation, wrapper_overhead_ablation
from .cone_example import compaction_demo, verify_against_paper
from .correlation import benchmark_series, synthetic_series
from .extensions import abort_on_fail_study, bist_study, compression_study
from .figures import generate_figures
from .iscas_socs import IscasSocExperiment, run_soc1, run_soc2
from .itc02_tables import table3, table4
from .registry import ExperimentEntry, experiment
from .runner import main, run_experiment, run_experiments

__all__ = [
    "ExperimentEntry",
    "IscasSocExperiment",
    "abort_on_fail_study",
    "benchmark_series",
    "bist_study",
    "compaction_demo",
    "compression_study",
    "experiment",
    "generate_figures",
    "granularity_ablation",
    "idle_bit_ablation",
    "main",
    "run_experiment",
    "run_experiments",
    "run_soc1",
    "run_soc2",
    "synthetic_series",
    "table3",
    "table4",
    "verify_against_paper",
    "wrapper_overhead_ablation",
]
