"""Tables 1 and 2: SOC1 and SOC2 built from ISCAS'89-profile cores.

The full experiment of Section 5.1: generate the cores, run ATPG per
core and on the top-level glue, flatten the SOC and run monolithic
ATPG, then evaluate every TDV quantity under the Tables-1/2 convention
(no wrapper cells on chip pins).  Absolute pattern counts differ from
the paper's ATALANTA-on-real-netlists numbers — the *relations* the
paper derives from them are what this experiment checks:

* Eq. 2 strictly: the monolithic count exceeds the largest core count
  (pessimism factor > 1; the paper saw 2.5x / 2.1x);
* modular TDV falls well below monolithic TDV (2.87x / 2.22x);
* the isolation penalty is small against the variation benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..atpg.engine import AtpgResult
from ..core.analysis import pessimism_factor
from ..core.decomposition import Decomposition, decompose
from ..core.report import soc_table
from ..core.tdv import tdv_monolithic, tdv_monolithic_optimistic
from ..itc02 import paper_tables
from ..runtime.executor import AtpgJob
from ..runtime.session import Runtime, ensure_runtime
from .registry import experiment
from ..soc.model import Core, Soc
from ..synth.socgen import SocDesign, elaborate, soc1_design, soc2_design


@dataclass
class IscasSocExperiment:
    """Everything measured for one of the two ISCAS'89 SOCs."""

    design: SocDesign
    core_results: Dict[str, AtpgResult]
    glue_result: AtpgResult
    mono_result: AtpgResult
    soc: Soc
    decomposition: Decomposition

    @property
    def monolithic_patterns(self) -> int:
        return self.mono_result.pattern_count

    @property
    def max_core_patterns(self) -> int:
        return max(r.pattern_count for r in self.core_results.values())

    @property
    def pessimism_factor(self) -> float:
        return pessimism_factor(self.monolithic_patterns, self.soc)

    @property
    def reduction_ratio(self) -> float:
        """Actual monolithic TDV over modular TDV (2.87 / 2.22 in the paper)."""
        return (
            tdv_monolithic(self.soc, self.monolithic_patterns)
            / self.decomposition.tdv_modular
        )

    @property
    def pessimistic_reduction_ratio(self) -> float:
        """Optimistic monolithic TDV over modular TDV (1.13 / 1.06)."""
        return tdv_monolithic_optimistic(self.soc) / self.decomposition.tdv_modular

    def render(self) -> str:
        return soc_table(self.soc, actual_monolithic_patterns=self.monolithic_patterns)


def _run_design(
    design: SocDesign, seed: int, runtime: Optional[Runtime] = None
) -> IscasSocExperiment:
    runtime = ensure_runtime(runtime)
    elaborate(design, seed=seed)
    config = runtime.config.with_seed(seed)
    # Identical profiles share a netlist, hence one ATPG job and one
    # test set (the paper's test-reuse situation); glue and monolithic
    # runs join the same batch so everything fans out together.
    unique_profiles: List[str] = []
    for _instance, profile_name in design.instances:
        if profile_name not in unique_profiles:
            unique_profiles.append(profile_name)
    netlist_of = {
        profile_name: design.core_netlists[instance]
        for instance, profile_name in design.instances
    }
    jobs = [
        AtpgJob(name=profile_name, netlist=netlist_of[profile_name], config=config)
        for profile_name in unique_profiles
    ]
    jobs.append(AtpgJob(name="glue", netlist=design.glue, config=config))
    jobs.append(AtpgJob(name="monolithic", netlist=design.monolithic, config=config))
    results = runtime.map(jobs)

    by_profile = dict(zip(unique_profiles, results))
    core_results: Dict[str, AtpgResult] = {
        instance: by_profile[profile_name]
        for instance, profile_name in design.instances
    }
    glue_result = results[-2]
    mono_result = results[-1]

    cores = [
        Core(
            name="Core0",
            inputs=design.chip_inputs,
            outputs=design.chip_outputs,
            scan_cells=0,
            patterns=glue_result.pattern_count,
            children=[instance for instance, _ in design.instances],
        )
    ]
    for instance, _profile in design.instances:
        netlist = design.core_netlists[instance]
        cores.append(
            Core(
                name=instance,
                inputs=len(netlist.inputs),
                outputs=len(netlist.outputs),
                scan_cells=len(netlist.flip_flops),
                patterns=core_results[instance].pattern_count,
            )
        )
    soc = Soc(design.name, cores, top="Core0")
    decomposition = decompose(
        soc,
        monolithic_patterns=mono_result.pattern_count,
        chip_pin_wrappers=False,
    )
    return IscasSocExperiment(
        design=design,
        core_results=core_results,
        glue_result=glue_result,
        mono_result=mono_result,
        soc=soc,
        decomposition=decomposition,
    )


def run_soc1(seed: int = 3, runtime: Optional[Runtime] = None) -> IscasSocExperiment:
    """Table 1's experiment on SOC1 (Figure 4)."""
    return _run_design(soc1_design(), seed=seed, runtime=runtime)


def run_soc2(seed: int = 3, runtime: Optional[Runtime] = None) -> IscasSocExperiment:
    """Table 2's experiment on SOC2 (Figure 5)."""
    return _run_design(soc2_design(), seed=seed, runtime=runtime)


def paper_reference(table: int) -> Dict[str, float]:
    """The published headline quantities for Table 1 or 2."""
    if table == 1:
        return {
            "reduction_ratio": paper_tables.TABLE1_REDUCTION_RATIO,
            "pessimistic_ratio": paper_tables.TABLE1_PESSIMISTIC_RATIO,
            "mono_patterns": paper_tables.TABLE1_MONO_PATTERNS,
            "max_core_patterns": max(
                row.patterns for row in paper_tables.TABLE1_SOC1
            ),
        }
    if table == 2:
        return {
            "reduction_ratio": paper_tables.TABLE2_REDUCTION_RATIO,
            "pessimistic_ratio": paper_tables.TABLE2_PESSIMISTIC_RATIO,
            "mono_patterns": paper_tables.TABLE2_MONO_PATTERNS,
            "max_core_patterns": max(
                row.patterns for row in paper_tables.TABLE2_SOC2
            ),
        }
    raise ValueError("table must be 1 or 2")


def run(
    table: int = 1,
    seed: Optional[int] = None,
    verbose: bool = True,
    runtime: Optional[Runtime] = None,
) -> IscasSocExperiment:
    """CLI entry point for one of the two experiments."""
    if seed is None:
        seed = 3
    experiment = (
        run_soc1(seed, runtime=runtime) if table == 1 else run_soc2(seed, runtime=runtime)
    )
    if verbose:
        reference = paper_reference(table)
        print(f"Table {table}: {experiment.design.name} "
              f"(synthetic ISCAS'89-profile cores; see DESIGN.md)")
        print(experiment.render())
        print(f"  TDVpenalty = {experiment.decomposition.penalty:,}   "
              f"TDVbenefit = {experiment.decomposition.benefit_identity:,}")
        print(f"  Eq. 2 holds: mono {experiment.monolithic_patterns} > "
              f"max core {experiment.max_core_patterns} "
              f"(pessimism {experiment.pessimism_factor:.2f}x; paper "
              f"{reference['mono_patterns']:.0f}/{reference['max_core_patterns']:.0f})")
        print(f"  reduction ratio {experiment.reduction_ratio:.2f}x "
              f"(paper {reference['reduction_ratio']:.2f}x), pessimistic "
              f"{experiment.pessimistic_reduction_ratio:.2f}x "
              f"(paper {reference['pessimistic_ratio']:.2f}x)")
    return experiment


@experiment("table1", order=20)
def _run_table1(seed: Optional[int] = None, runtime: Optional[Runtime] = None):
    return run(table=1, seed=seed, runtime=runtime)


@experiment("table2", order=21)
def _run_table2(seed: Optional[int] = None, runtime: Optional[Runtime] = None):
    return run(table=2, seed=seed, runtime=runtime)
