"""Tables 3 and 4: the ITC'02 benchmark SOCs.

Table 3 recomputes the per-core TDV of the hierarchical SOC p34392
through Eq. 4/5 and confronts each row with the published value
(flagging the two rows the paper itself got inconsistent — see
DESIGN.md).  Table 4 evaluates all ten benchmark SOCs and reports every
column next to the published one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from ..runtime.session import Runtime

from ..core.analysis import pattern_count_variation
from ..core.report import format_table, hierarchy_table, percent
from ..core.tdv import TdvSummary, summarize
from ..itc02.benchmarks import BENCHMARK_NAMES, load
from ..itc02.paper_tables import (
    TABLE3_INCONSISTENT_CORES,
    TABLE3_P34392,
    TABLE3_SOC_TDV,
    TABLE4_BY_NAME,
    Table4Row,
)
from ..soc.hierarchy import core_tdv
from ..soc.model import Soc
from .registry import experiment


@dataclass
class Table3Result:
    """Recomputed vs published per-core TDV for p34392."""

    soc: Soc
    computed: Dict[str, int]
    published: Dict[str, int]

    @property
    def matching_cores(self) -> List[str]:
        return [name for name, value in self.computed.items()
                if self.published.get(name) == value]

    @property
    def mismatching_cores(self) -> List[str]:
        return [name for name, value in self.computed.items()
                if self.published.get(name) != value]

    @property
    def computed_total(self) -> int:
        return sum(self.computed.values())

    def render(self) -> str:
        rows = []
        for row in TABLE3_P34392:
            computed = self.computed[row.core]
            flag = "" if computed == row.tdv else "  <- paper-internal inconsistency"
            rows.append([row.core, row.patterns, computed, row.tdv, flag])
        rows.append(["SOC", "", self.computed_total, TABLE3_SOC_TDV, ""])
        return format_table(
            ["Core", "T", "TDV (Eq. 4/5)", "TDV (paper)", ""], rows,
            aligns=["l", "r", "r", "r", "l"],
        )


def table3(soc_name: str = "p34392") -> Table3Result:
    """Recompute the paper's Table 3 from the shipped p34392 data."""
    soc = load(soc_name)
    computed = {core.name: core_tdv(soc, core.name) for core in soc}
    published = {row.core: row.tdv for row in TABLE3_P34392}
    return Table3Result(soc=soc, computed=computed, published=published)


@dataclass
class Table4Result:
    """One SOC's measured Table 4 row, next to the published one."""

    soc: Soc
    summary: TdvSummary
    variation: float
    published: Table4Row

    @property
    def modular_percent(self) -> float:
        return 100.0 * self.summary.modular_change_fraction


def table4(names: List[str] = None) -> List[Table4Result]:
    """Evaluate every (or the named) Table 4 SOC."""
    results = []
    for name in names or BENCHMARK_NAMES:
        soc = load(name)
        results.append(
            Table4Result(
                soc=soc,
                summary=summarize(soc),
                variation=pattern_count_variation(soc),
                published=TABLE4_BY_NAME[name],
            )
        )
    return results


def render_table4(results: List[Table4Result]) -> str:
    rows = []
    for r in results:
        rows.append([
            r.soc.name,
            len(r.soc) - 1,
            f"{r.variation:.2f} ({r.published.norm_stdev:.2f})",
            f"{r.summary.tdv_monolithic:,} ({r.published.tdv_opt_mono:,})",
            f"{percent(r.summary.penalty_fraction)} ({r.published.penalty_percent:+.1f}%)",
            f"{percent(-r.summary.benefit_fraction)} ({r.published.benefit_percent:+.1f}%)",
            f"{r.summary.tdv_modular:,} ({r.published.tdv_modular:,})",
            f"{percent(r.summary.modular_change_fraction)} ({r.published.modular_percent:+.1f}%)",
        ])
    averages = _averages(results)
    rows.append([
        "Average", "", "",
        "",
        f"{averages['penalty']:+.1f}%",
        f"{averages['benefit']:+.1f}%",
        "",
        f"{averages['modular']:+.1f}%",
    ])
    return format_table(
        ["SOC", "Cores", "NSD (paper)", "TDVopt_mono (paper)",
         "Penalty (paper)", "Benefit (paper)", "TDVmodular (paper)",
         "Change (paper)"],
        rows,
    )


def _averages(results: List[Table4Result]) -> Dict[str, float]:
    n = len(results)
    return {
        "penalty": 100.0 * sum(r.summary.penalty_fraction for r in results) / n,
        "benefit": -100.0 * sum(r.summary.benefit_fraction for r in results) / n,
        "modular": 100.0 * sum(r.summary.modular_change_fraction for r in results) / n,
    }


# table3 and table4 share this one runner (group="itc02"), so ``all``
# prints the combined report exactly once.
@experiment("table3", order=30, group="itc02")
@experiment("table4", order=31, group="itc02")
def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
) -> List[Table4Result]:
    """CLI entry point: Table 3 then Table 4.

    Both tables recompute the paper's equations over the shipped
    benchmark data — ``seed``/``runtime`` are accepted for entry-point
    uniformity and have no effect.
    """
    t3 = table3()
    results = table4()
    if verbose:
        print("Table 3: p34392 per-core TDV (Eq. 4/5 vs published)")
        print(t3.render())
        print(f"  {len(t3.matching_cores)}/{len(t3.computed)} rows bit-exact; "
              f"known inconsistencies: {TABLE3_INCONSISTENT_CORES}")
        print()
        print("Table 4: ITC'02 SOCs, measured (published)")
        print(render_table4(results))
        print("  Paper averages: penalty +10.1%, benefit -60.3%, modular -50.2%")
    return results
