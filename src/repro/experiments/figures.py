"""SVG figure generation for the reproduced results.

The paper presents its correlation observation and its sweeps in prose
and tables; these helpers render them as actual figures (standalone
SVG, no plotting dependencies) so a reader can *see* the g12710 /
a586710 extremes and the ablation shapes.  ``repro experiments`` stays
text-only; figure generation is opt-in via :func:`generate_figures`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from ..core.svgplot import Chart, Series, save_svg
from ..core.sweep import sweep_pattern_variation
from ..soc.shared_isolation import sharing_sweep
from ..itc02.benchmarks import load
from .correlation import benchmark_series


def correlation_figure() -> Chart:
    """Reduction vs pattern-count variation over the ten ITC'02 SOCs."""
    result = benchmark_series()
    chart = Chart(
        title="TDV reduction vs pattern-count variation (ITC'02)",
        x_label="normalized stdev of core pattern counts",
        y_label="TDV reduction (%)",
    )
    chart.add(
        Series(
            name=f"benchmark SOCs (Pearson {result.pearson:+.2f})",
            points=[(variation, reduction) for _n, variation, reduction in result.points],
            labels=[name for name, _v, _r in result.points],
        )
    )
    return chart


def sweep_figure() -> Chart:
    """The controlled synthetic family behind the correlation."""
    points = sweep_pattern_variation(
        [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0], seed=5
    )
    chart = Chart(
        title="Synthetic family: variation is the only knob",
        x_label="normalized stdev of core pattern counts",
        y_label="TDV reduction (%)",
    )
    chart.add(
        Series(
            name="synthetic sweep",
            points=[
                (
                    p.analysis.pattern_variation,
                    -100.0 * p.analysis.summary.modular_change_fraction,
                )
                for p in points
            ],
            draw_line=True,
        )
    )
    return chart


def shared_isolation_figure() -> Chart:
    """g12710 under the dedicated-to-shared isolation sweep."""
    points = sharing_sweep(load("g12710"), [k / 10 for k in range(11)])
    chart = Chart(
        title="g12710: shared isolation flips the outcome",
        x_label="fraction of terminals isolated by functional registers",
        y_label="modular TDV change (%)",
    )
    chart.add(
        Series(
            name="g12710",
            points=[
                (p.sharing, 100.0 * p.modular_change_fraction) for p in points
            ],
            draw_line=True,
        )
    )
    return chart


def generate_figures(out_dir: Union[str, Path]) -> Dict[str, Path]:
    """Write every figure; returns name -> path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    charts = {
        "correlation": correlation_figure(),
        "synthetic_sweep": sweep_figure(),
        "shared_isolation": shared_isolation_figure(),
    }
    return {
        name: save_svg(out_dir / f"{name}.svg", chart)
        for name, chart in charts.items()
    }
