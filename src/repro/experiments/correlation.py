"""The reduction-vs-variation correlation (Section 5.2's observation).

"The test data volume reduction of modular SOC testing is correlated to
the normalized standard deviation of core pattern counts", with g12710
and a586710 as the two extremal points.  This experiment produces the
series behind that claim twice over: once on the ten benchmark SOCs and
once on a controlled synthetic family where the spread is the only knob
(:mod:`repro.core.sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:
    from ..runtime.session import Runtime

from ..core.analysis import (
    pattern_count_variation,
    pearson_correlation,
)
from ..core.report import format_table
from ..core.sweep import SweepPoint, sweep_pattern_variation
from ..core.tdv import summarize
from ..itc02.benchmarks import BENCHMARK_NAMES, load
from .registry import experiment


@dataclass
class CorrelationResult:
    """The benchmark series plus its Pearson coefficient."""

    points: List[Tuple[str, float, float]]  # (soc, variation, reduction %)
    pearson: float

    def extremes(self) -> Tuple[str, str]:
        """(least reduction, most reduction) — the paper names g12710
        and a586710."""
        ordered = sorted(self.points, key=lambda p: p[2])
        return ordered[0][0], ordered[-1][0]


def benchmark_series() -> CorrelationResult:
    """Variation vs TDV reduction over the ten Table 4 SOCs."""
    points = []
    for name in BENCHMARK_NAMES:
        soc = load(name)
        summary = summarize(soc)
        points.append(
            (
                name,
                pattern_count_variation(soc),
                -100.0 * summary.modular_change_fraction,
            )
        )
    pearson = pearson_correlation(
        [p[1] for p in points], [p[2] for p in points]
    )
    return CorrelationResult(points=points, pearson=pearson)


def synthetic_series(
    spreads: Tuple[float, ...] = (0.0, 0.15, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5),
    seed: int = 5,
    runtime: Optional["Runtime"] = None,
) -> List[SweepPoint]:
    """The same relation on a family where only the spread varies."""
    return sweep_pattern_variation(spreads, seed=seed, runtime=runtime)


def render(result: CorrelationResult) -> str:
    rows = [
        [name, round(variation, 2), f"{reduction:+.1f}%"]
        for name, variation, reduction in result.points
    ]
    return format_table(["SOC", "Norm. stdev", "TDV reduction"], rows)


@experiment("correlation", order=40)
def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
) -> CorrelationResult:
    """CLI entry point.

    The benchmark series is deterministic (published pattern counts);
    ``seed`` drives the synthetic sweep (default 5), which executes on
    the sweep engine under ``runtime`` — stdout is byte-identical
    regardless of workers or resume.
    """
    result = benchmark_series()
    if verbose:
        print("Reduction vs pattern-count variation (Section 5.2)")
        print(render(result))
        low, high = result.extremes()
        print(f"  Pearson correlation: {result.pearson:+.3f}")
        print(f"  extremal SOCs: {low} (least) / {high} (most) — paper names "
              f"g12710 and a586710")
        print("  synthetic sweep (spread -> measured variation, reduction):")
        for point in synthetic_series(
            seed=5 if seed is None else seed, runtime=runtime
        ):
            summary = point.analysis.summary
            print(
                f"    spread {point.parameter:4.2f} -> nsd "
                f"{point.analysis.pattern_variation:4.2f}, reduction "
                f"{-100.0 * summary.modular_change_fraction:+6.1f}%"
            )
    return result
