"""Ablations for the analysis' scoping assumptions.

The paper makes three deliberate simplifications (Section 3): idle bits
from scan-chain/TAM organization are excluded, isolation uses dedicated
cells on every core terminal, and partitioning granularity is taken as
given.  Each ablation here varies one of them and checks whether the
headline conclusion — modular testing reduces TDV, increasingly so with
pattern-count variation — survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from ..runtime.session import Runtime

from ..core.report import format_table
from ..core.sweep import SweepPoint, sweep_core_count, sweep_wrapper_overhead
from ..itc02.benchmarks import BENCHMARK_NAMES, load
from ..soc.model import Soc
from ..soc.shared_isolation import SharingPoint, breakeven_sharing, sharing_sweep
from ..tam.idle_bits import IdleBitReport, idle_bit_sweep
from .registry import experiment


@dataclass
class IdleBitAblation:
    """Useful-bits vs delivered-bits comparison across TAM widths."""

    soc_name: str
    reports: List[IdleBitReport]

    def conclusion_stable(self) -> bool:
        """Modular wins (or loses) identically under both accountings."""
        return all(
            (report.useful_ratio < 1.0) == (report.delivered_ratio < 1.0)
            for report in self.reports
        )

    def render(self) -> str:
        rows = []
        for report in self.reports:
            rows.append([
                report.tam_width,
                f"{report.useful_ratio:.3f}",
                f"{report.delivered_ratio:.3f}",
                f"{100 * report.modular_idle_fraction:.1f}%",
                f"{100 * report.monolithic_idle_fraction:.1f}%",
            ])
        return format_table(
            ["TAM width", "mod/mono (useful)", "mod/mono (delivered)",
             "modular idle", "monolithic idle"],
            rows,
        )


def idle_bit_ablation(
    soc_name: str = "d695",
    tam_widths: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> IdleBitAblation:
    """Put the idle bits back and re-run the comparison."""
    soc = load(soc_name)
    return IdleBitAblation(
        soc_name=soc_name,
        reports=idle_bit_sweep(soc, list(tam_widths)),
    )


def wrapper_overhead_ablation(
    io_values: Sequence[int] = (8, 32, 64, 128, 256, 512),
    runtime: Optional["Runtime"] = None,
) -> List[SweepPoint]:
    """Vary per-core terminal counts: where does g12710's regime begin?

    The paper attributes g12710's TDV *increase* to core I/O terminals
    outnumbering scan cells; this sweep reproduces the crossover on a
    controlled family.
    """
    return sweep_wrapper_overhead(io_values, runtime=runtime)


def granularity_ablation(
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    runtime: Optional["Runtime"] = None,
) -> List[SweepPoint]:
    """Vary partitioning granularity at fixed total scan.

    Section 3: wrapping every cone would minimize topped-off waste but
    is unrealistic "due to the area and data volume penalty"; the sweep
    shows the benefit/penalty trade-off as cores shrink.
    """
    return sweep_core_count(core_counts, runtime=runtime)


@dataclass
class SharedIsolationAblation:
    """The paper's stated pessimism, relaxed: functional-cell isolation."""

    g12710_points: List[SharingPoint]
    g12710_breakeven: float
    other_breakevens: Dict[str, object]  # SOC -> None (already winning)

    def render(self) -> str:
        rows = [
            [f"{point.sharing:.2f}",
             f"{100 * point.modular_change_fraction:+.1f}%",
             point.tdv_penalty]
            for point in self.g12710_points
        ]
        return format_table(
            ["sharing", "g12710 change", "penalty (bits)"], rows
        )


def shared_isolation_ablation() -> SharedIsolationAblation:
    """Sweep dedicated-to-shared isolation over the benchmark suite.

    Every SOC except g12710 already wins with fully dedicated cells
    (break-even None); g12710 needs a high sharing fraction — the
    quantitative content of the paper's "pessimistic approach" remark.
    """
    g12710 = load("g12710")
    others = {
        name: breakeven_sharing(load(name))
        for name in BENCHMARK_NAMES
        if name != "g12710"
    }
    return SharedIsolationAblation(
        g12710_points=sharing_sweep(g12710),
        g12710_breakeven=breakeven_sharing(g12710),
        other_breakevens=others,
    )


def _render_sweep(points: List[SweepPoint], parameter_label: str) -> str:
    rows = []
    for point in points:
        summary = point.analysis.summary
        rows.append([
            int(point.parameter),
            f"{-100.0 * summary.modular_change_fraction:+.1f}%",
            f"{100.0 * summary.penalty_fraction:.1f}%",
        ])
    return format_table([parameter_label, "TDV reduction", "penalty share"], rows)


@experiment("ablation", order=50)
def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
) -> Dict[str, object]:
    """CLI entry point: all three ablations.

    The ablations are analytic (published pattern counts, closed-form
    sweeps); the synthetic-family ones execute on the sweep engine
    under ``runtime``, with byte-identical stdout either way.
    """
    idle = idle_bit_ablation()
    overhead = wrapper_overhead_ablation(runtime=runtime)
    granularity = granularity_ablation(runtime=runtime)
    shared = shared_isolation_ablation()
    if verbose:
        print("Ablation 1: idle bits restored (d695)")
        print(idle.render())
        print(f"  conclusion stable under delivered-bits accounting: "
              f"{idle.conclusion_stable()}")
        print()
        print("Ablation 2: wrapper overhead (per-core terminals)")
        print(_render_sweep(overhead, "core I/O"))
        print()
        print("Ablation 3: partitioning granularity (fixed total scan)")
        print(_render_sweep(granularity, "cores"))
        print()
        print("Ablation 4: shared (functional-cell) isolation — the paper's "
              "stated pessimism")
        print(shared.render())
        print(f"  g12710 breaks even at sharing = "
              f"{shared.g12710_breakeven:.2f}; every other SOC already "
              f"wins with fully dedicated cells: "
              f"{all(v is None for v in shared.other_breakevens.values())}")
    return {
        "idle": idle,
        "overhead": overhead,
        "granularity": granularity,
        "shared_isolation": shared,
    }
