"""Section 3 worked example (Figures 1 and 2).

The paper illustrates its argument with three logic cones A, B, C
driven by 20, 10 and 20 scan flip-flops and needing 200, 300 and 400
partial patterns: monolithic testing with perfect compaction costs
400 x 50 = 20,000 stimulus bits, while wrapping each cone as a core
costs 600 x 20 + 300 x 10 = 15,000 bits — a 25% reduction.

This module reproduces the arithmetic through the TDV model (the
analytic half) and then *demonstrates* the two cone phenomena on real
generated circuits with the ATPG stack (the mechanistic half):
disjoint cones compact towards the per-cone maximum, overlapping cones
compact worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..atpg.compaction import static_compact
from ..atpg.compiled import CompiledCircuit
from ..atpg.engine import extract_cone_netlist
from ..atpg.patterns import TestPattern
from ..circuit.cones import extract_cones, overlap_fraction
from ..circuit.netlist import Netlist
from ..itc02.paper_tables import (
    CONE_EXAMPLE_FLIP_FLOPS,
    CONE_EXAMPLE_MODULAR_BITS,
    CONE_EXAMPLE_MONOLITHIC_BITS,
    CONE_EXAMPLE_PATTERNS,
)
from ..runtime.executor import AtpgJob
from ..runtime.session import Runtime, ensure_runtime
from ..synth.generator import GeneratorSpec, generate_circuit
from .registry import experiment


@dataclass(frozen=True)
class ConeExampleResult:
    """The analytic reproduction of the Section 3 numbers."""

    flip_flops: Tuple[int, ...]
    patterns: Tuple[int, ...]
    monolithic_bits: int
    modular_bits: int

    @property
    def reduction_percent(self) -> float:
        return 100.0 * (1.0 - self.modular_bits / self.monolithic_bits)


def cone_example(
    flip_flops: Sequence[int] = CONE_EXAMPLE_FLIP_FLOPS,
    patterns: Sequence[int] = CONE_EXAMPLE_PATTERNS,
) -> ConeExampleResult:
    """Stimulus-volume arithmetic for non-overlapping cones.

    Monolithic: perfect compaction stacks per-cone patterns, so the
    circuit needs ``max(patterns)`` patterns of ``sum(flip_flops)`` bits.
    Modular: each cone-as-core loads only its own flip-flops for its own
    pattern count.
    """
    if len(flip_flops) != len(patterns):
        raise ValueError("flip_flops and patterns must align")
    monolithic = max(patterns) * sum(flip_flops)
    modular = sum(t * s for t, s in zip(patterns, flip_flops))
    return ConeExampleResult(
        flip_flops=tuple(flip_flops),
        patterns=tuple(patterns),
        monolithic_bits=monolithic,
        modular_bits=modular,
    )


def verify_against_paper() -> bool:
    """The published 20,000 / 15,000 / 25% figures, bit-exact."""
    result = cone_example()
    return (
        result.monolithic_bits == CONE_EXAMPLE_MONOLITHIC_BITS
        and result.modular_bits == CONE_EXAMPLE_MODULAR_BITS
        and abs(result.reduction_percent - 25.0) < 1e-9
    )


@dataclass
class ConeCompactionDemo:
    """ATPG evidence for the Figure 1 phenomena on one circuit."""

    circuit_name: str
    cone_overlap_fraction: float
    per_cone_patterns: List[int]
    merged_pattern_count: int  # patterns after cross-cone static compaction

    @property
    def max_cone_patterns(self) -> int:
        return max(self.per_cone_patterns)

    @property
    def conflict_excess(self) -> int:
        """Patterns beyond the per-cone maximum — Figure 1(b)'s effect."""
        return self.merged_pattern_count - self.max_cone_patterns


def compaction_demo(
    overlap: float,
    seed: int = 11,
    cones: int = 6,
    runtime: Optional[Runtime] = None,
) -> ConeCompactionDemo:
    """Generate a circuit at the given cone overlap and measure compaction.

    Per-cone ATPG produces partial pattern sets; merging them with
    static compaction shows whether the circuit-level count stays at the
    per-cone maximum (disjoint cones, Figure 1(a)) or exceeds it due to
    conflicting stimulus bits (overlapping cones, Figure 1(b)).  The
    per-cone runs are independent, so they go through the runtime as
    one parallel batch.
    """
    runtime = ensure_runtime(runtime)
    spec = GeneratorSpec(
        name=f"cone_demo_{overlap:g}",
        inputs=cones * 6,
        outputs=cones,
        flip_flops=0,
        target_gates=cones * 14,
        min_cone_width=5,
        max_cone_width=8,
        overlap=overlap,
        xor_fraction=0.3,
        seed=seed,
    )
    netlist = generate_circuit(spec)
    circuit = CompiledCircuit(netlist)
    extracted = extract_cones(netlist)

    config = runtime.config.with_seed(seed)
    subs = [extract_cone_netlist(netlist, cone) for cone in extracted]
    results = runtime.map(
        [AtpgJob(name=sub.name, netlist=sub, config=config) for sub in subs]
    )

    per_cone_counts: List[int] = []
    all_partials: List[TestPattern] = []
    for sub, result in zip(subs, results):
        per_cone_counts.append(result.pattern_count)
        # Re-key the cone's patterns onto the parent circuit's net ids —
        # cone inputs are parent nets, so only the id space changes.
        sub_circuit = CompiledCircuit(sub)
        for pattern in result.test_set:
            remapped = {
                circuit.net_ids[sub_circuit.net_names[net_id]]: value
                for net_id, value in pattern.assignments.items()
            }
            all_partials.append(TestPattern(remapped))

    merged = static_compact(all_partials)
    return ConeCompactionDemo(
        circuit_name=netlist.name,
        cone_overlap_fraction=overlap_fraction(extracted),
        per_cone_patterns=per_cone_counts,
        merged_pattern_count=len(merged),
    )


@experiment("cone-example", order=10)
def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
) -> ConeExampleResult:
    """The experiment entry point used by the CLI runner."""
    if seed is None:
        seed = 11
    result = cone_example()
    if verbose:
        print("Section 3 worked example (Figures 1-2)")
        print(f"  cones: FFs={result.flip_flops} patterns={result.patterns}")
        print(f"  monolithic bits: {result.monolithic_bits:,} (paper: "
              f"{CONE_EXAMPLE_MONOLITHIC_BITS:,})")
        print(f"  modular bits:    {result.modular_bits:,} (paper: "
              f"{CONE_EXAMPLE_MODULAR_BITS:,})")
        print(f"  reduction:       {result.reduction_percent:.1f}% (paper: 25.0%)")
        for overlap in (0.0, 0.8):
            demo = compaction_demo(overlap, seed=seed, runtime=runtime)
            print(
                f"  ATPG demo overlap={overlap:.1f}: cone patterns "
                f"{demo.per_cone_patterns}, merged {demo.merged_pattern_count} "
                f"(excess over max: {demo.conflict_excess})"
            )
    return result
