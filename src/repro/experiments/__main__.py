"""``python -m repro.experiments`` — same as the repro-experiments script."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
