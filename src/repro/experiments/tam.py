"""The TAM design-space experiment: width x scheduler x wrapper strategy.

The paper's TDV analysis deliberately abstracts the test access
mechanism away; ROADMAP item 3 grows it back.  This experiment sweeps
the wrapper/TAM co-optimizer (:mod:`repro.tam.problem`) across the full
ITC'02 suite — TAM width x scheduler (greedy baseline vs the best-fit
rectangle bin-packer) x wrapper chain strategy (deep/balanced/wide
internal chain assumptions) — and charts the three-way trade-off the
unified API exposes: test time (makespan) vs TAM width vs delivered
test data volume (idle padding included).

The sweep runs on :class:`~repro.sweeps.engine.SweepEngine`: it fans
across ``--workers``, journals shards under ``--run-dir``, resumes with
``--resume``, and streams every record through a
:class:`~repro.sweeps.aggregate.ParetoFront` — so stdout is
byte-identical no matter how the run was executed, killed, or resumed.
``--tam-widths``, ``--tam-socs`` and ``--scheduler`` scope the grid
(CI smokes run a small subset); ``--tam-front FILE`` writes the
surviving Pareto points as a JSON artifact.

Acceptance checks (EXPERIMENTS.md):

* every schedule respects its TAM width budget (verified sweep-line);
* the bin-packing scheduler's makespan is never worse than greedy's at
  every (SOC, strategy, width) — the portfolio guarantee;
* no makespan beats its problem's lower bound;
* useful bits are invariant across width and scheduler for a fixed
  (SOC, strategy) — the paper's metric must not depend on the TAM
  dimension it excludes.
"""

from __future__ import annotations

import json
import sys
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from ..runtime.session import Runtime

from ..core.report import format_table
from ..sweeps import Axis, ParetoFront, SweepEngine, SweepPointSpec, SweepRunResult, SweepSpec
from .registry import experiment

DEFAULT_TAM_WIDTHS: Tuple[int, ...] = (8, 16, 24, 32, 48, 64)
DEFAULT_SCHEDULERS: Tuple[str, ...] = ("greedy", "binpack")
DEFAULT_SHARD_SIZE = len(DEFAULT_TAM_WIDTHS)

#: Wrapper strategies: how many balanced internal scan chains each core
#: is assumed to expose (the ITC'02 data fixes cells, not chains).
#: ``deep`` = one long chain per core, ``balanced`` = the default four,
#: ``wide`` = sixteen short chains.
WRAPPER_STRATEGIES: Dict[str, int] = {"deep": 1, "balanced": 4, "wide": 16}

#: The reference slice of the per-SOC table: a mid-range width under
#: the default chain assumption.
REFERENCE_WIDTH = 32
REFERENCE_STRATEGY = "balanced"


@lru_cache(maxsize=64)
def _problem_cores(soc_name: str, chain_count: int):
    """One SOC's core specs under one chain-count assumption (cached
    per worker process — every width/scheduler point reuses them)."""
    from ..itc02 import load
    from ..tam import core_specs_from_soc

    return tuple(
        core_specs_from_soc(load(soc_name), default_chain_count=chain_count)
    )


def evaluate_tam_point(point: SweepPointSpec) -> Dict[str, Any]:
    """Evaluate one (soc, strategy, scheduler, width) grid point.

    Module-level and picklable; runs inside sweep worker processes.
    Deterministic arithmetic — the point seed is unused.
    """
    from ..tam import TamProblem, cooptimize

    params = point.params
    strategy = params["strategy"]
    problem = TamProblem(
        cores=_problem_cores(params["soc"], WRAPPER_STRATEGIES[strategy]),
        tam_width=params["tam_width"],
    )
    result = cooptimize(problem, scheduler=params["scheduler"])
    result.schedule.verify()
    record = result.as_record()
    record["soc"] = params["soc"]
    record["strategy"] = strategy
    record["verified"] = True
    return record


def tam_spec(
    socs: Sequence[str],
    tam_widths: Sequence[int],
    schedulers: Sequence[str],
    strategies: Sequence[str],
    seed: int,
) -> SweepSpec:
    """The declarative grid; width is the fastest axis, so one shard of
    ``len(tam_widths)`` points is one (soc, strategy, scheduler) row."""
    return SweepSpec(
        name="tam",
        axes=(
            Axis.grid("soc", list(socs)),
            Axis.grid("strategy", list(strategies)),
            Axis.grid("scheduler", list(schedulers)),
            Axis.grid("tam_width", list(tam_widths)),
        ),
        seed=seed,
    )


def _check(label: str, passed: bool, detail: str = "") -> None:
    verdict = "PASS" if passed else "FAIL"
    suffix = f" ({detail})" if detail else ""
    print(f"  check: {label}: {verdict}{suffix}")


def _by_key(
    records: List[Dict[str, Any]]
) -> Dict[Tuple[str, str, int], Dict[str, Dict[str, Any]]]:
    """(soc, strategy, width) -> scheduler -> record."""
    table: Dict[Tuple[str, str, int], Dict[str, Dict[str, Any]]] = {}
    for record in records:
        key = (record["soc"], record["strategy"], record["tam_width"])
        table.setdefault(key, {})[record["scheduler"]] = record
    return table


def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
    tam_widths: Optional[Sequence[int]] = None,
    socs: Optional[Sequence[str]] = None,
    scheduler: Optional[str] = None,
    front_path: Optional[str] = None,
    shard_size: Optional[int] = None,
) -> SweepRunResult:
    """CLI entry point: sweep the grid, chart the front, judge the checks.

    ``scheduler`` restricts the sweep to one scheduler (the CLI's
    ``--scheduler``); by default both greedy and binpack run so the
    differential check has both sides.  ``front_path`` additionally
    writes the Pareto front as a JSON artifact.
    """
    from ..itc02 import BENCHMARK_NAMES, load_many

    widths = tuple(tam_widths) if tam_widths else DEFAULT_TAM_WIDTHS
    soc_names = tuple(socs) if socs else tuple(BENCHMARK_NAMES)
    load_many(soc_names)  # fail fast on typos, before any shard runs
    schedulers = (scheduler,) if scheduler else DEFAULT_SCHEDULERS
    strategies = tuple(WRAPPER_STRATEGIES)
    if shard_size is None:
        shard_size = len(widths)
    spec = tam_spec(soc_names, widths, schedulers, strategies,
                    seed=0 if seed is None else seed)

    front = ParetoFront(
        fields=("tam_width", "makespan", "delivered_bits"),
        keep=("soc", "strategy", "scheduler"),
    )
    engine = SweepEngine(runtime, shard_size=shard_size)
    result = engine.run(
        spec, evaluate_tam_point, aggregators=(front,), collect=True
    )
    print(f"[sweep] {result.summary()}", file=sys.stderr)
    records = result.records or []

    if front_path:
        artifact = {
            "socs": list(soc_names),
            "tam_widths": list(widths),
            "schedulers": list(schedulers),
            "strategies": {name: WRAPPER_STRATEGIES[name] for name in strategies},
            "fields": list(front.fields),
            "points": front.points(),
        }
        path = Path(front_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
        print(f"[tam] wrote Pareto front to {path}", file=sys.stderr)

    if verbose:
        _report(records, front, soc_names, widths, schedulers, strategies)
    return result


def _report(
    records: List[Dict[str, Any]],
    front: ParetoFront,
    soc_names: Sequence[str],
    widths: Sequence[int],
    schedulers: Sequence[str],
    strategies: Sequence[str],
) -> None:
    print(f"TAM co-optimization design space ({len(soc_names)} ITC'02 SOCs)")
    strategy_label = ", ".join(
        f"{name}={WRAPPER_STRATEGIES[name]}" for name in strategies
    )
    print(f"  grid: widths {list(widths)} x schedulers {list(schedulers)} "
          f"x chain strategies [{strategy_label}] = {len(records)} points")

    # Per-scheduler aggregate view.
    rows = []
    for name in schedulers:
        mine = [r for r in records if r["scheduler"] == name]
        util = sum(r["utilization"] for r in mine) / len(mine)
        gap = sum(r["makespan"] / r["lower_bound"] for r in mine) / len(mine)
        rows.append([name, f"{100 * util:.1f}%", f"{gap:.3f}"])
    print(format_table(
        ["scheduler", "mean TAM utilization", "mean makespan / lower bound"],
        rows,
    ))

    paired = _by_key(records)
    both = "greedy" in schedulers and "binpack" in schedulers

    # The reference slice: one row per SOC at a mid-range width.
    ref_width = REFERENCE_WIDTH if REFERENCE_WIDTH in widths else widths[-1]
    if both and REFERENCE_STRATEGY in strategies:
        rows = []
        for soc in soc_names:
            pair = paired.get((soc, REFERENCE_STRATEGY, ref_width), {})
            if "greedy" not in pair or "binpack" not in pair:
                continue
            greedy, packed = pair["greedy"], pair["binpack"]
            saving = 1.0 - packed["makespan"] / greedy["makespan"]
            rows.append([
                soc,
                f"{greedy['makespan']:,}",
                f"{packed['makespan']:,}",
                f"{100 * saving:.1f}%",
                f"{100 * packed['idle_fraction']:.1f}%",
            ])
        print(f"  reference slice: width {ref_width}, "
              f"{REFERENCE_STRATEGY} chains")
        print(format_table(
            ["soc", "greedy makespan", "binpack makespan",
             "time saved", "binpack idle bits"],
            rows,
        ))

    print(f"  Pareto front (width, makespan, TDV): "
          f"{len(front.points())} non-dominated of {front.count} points")

    # -- acceptance checks ----------------------------------------------
    verified = sum(1 for r in records if r.get("verified"))
    _check(
        "every schedule respects its TAM width budget",
        verified == len(records),
        f"{verified}/{len(records)} verified",
    )
    if both:
        comparisons = [
            (key, pair) for key, pair in sorted(paired.items())
            if "greedy" in pair and "binpack" in pair
        ]
        not_worse = [
            key for key, pair in comparisons
            if pair["binpack"]["makespan"] <= pair["greedy"]["makespan"]
        ]
        strictly = [
            key for key, pair in comparisons
            if pair["binpack"]["makespan"] < pair["greedy"]["makespan"]
        ]
        _check(
            "binpack makespan <= greedy at every (soc, strategy, width)",
            len(not_worse) == len(comparisons),
            f"{len(not_worse)}/{len(comparisons)}, "
            f"strictly better on {len(strictly)}",
        )
    else:
        print("  check: binpack makespan <= greedy: skipped "
              "(single-scheduler run)")
    bounded = sum(1 for r in records if r["makespan"] >= r["lower_bound"])
    _check(
        "no makespan beats its lower bound",
        bounded == len(records),
        f"{bounded}/{len(records)}",
    )
    useful_variants = {
        (r["soc"], r["strategy"]): set() for r in records
    }
    for r in records:
        useful_variants[(r["soc"], r["strategy"])].add(r["useful_bits"])
    invariant = all(len(seen) == 1 for seen in useful_variants.values())
    _check(
        "useful bits invariant across width and scheduler "
        "(the paper's metric ignores the TAM)",
        invariant,
    )


experiment("tam", order=65)(run)
