"""Extension studies beyond the paper's evaluation.

Three follow-on questions the paper's framing raises but does not
measure, answered with the library's substrates:

1. **BIST** (the paper's "source and sink ... on-chip" alternative):
   how does on-chip generation change the *external* test data volume,
   and what coverage does it give up?
2. **Compression**: modular per-core pattern sets keep care bits dense
   in short streams, monolithic patterns dilute them over the whole
   scan load — how does that interact with stimulus compression?
3. **Abort-on-fail** (related-work refs [15][16]): modular tests can be
   reordered around fail probabilities; a monolithic test cannot.  How
   much expected tester time does the ordering freedom buy?
4. **Test points**: SCOAP-guided control/observe cells recover BIST
   coverage at the price of extra scan cells — i.e. extra TDV, landing
   the trade right back in the paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..runtime.session import Runtime, ensure_runtime
from ..atpg import (
    CompiledCircuit,
    Podem,
    TestSet,
    collapse_faults,
    compare_bist_vs_ate,
    compress_streams,
    pattern_streams,
)
from ..atpg.bist import BistVsAteComparison
from ..atpg.compression import CompressionReport
from ..itc02 import load
from ..synth import GeneratorSpec, generate_circuit
from ..tam import AbortOnFailStudy, core_specs_from_soc
from ..tam import study as abort_study
from .registry import experiment


def bist_study(
    seed: int = 9,
    bist_patterns: int = 2048,
    runtime: Optional[Runtime] = None,
) -> BistVsAteComparison:
    """BIST vs ATE external data volume on a mid-size generated core."""
    runtime = ensure_runtime(runtime)
    netlist = generate_circuit(
        GeneratorSpec(name="bist_core", inputs=20, outputs=12, flip_flops=48,
                      target_gates=420, seed=seed)
    )
    config = runtime.config.with_seed(seed)
    # The ATE half is a plain stuck-at run — route it through the
    # runtime so it caches and parallelizes like every other T.
    ate_result = runtime.generate(netlist, config=config)
    return compare_bist_vs_ate(
        netlist, bist_patterns=bist_patterns, config=config, ate_result=ate_result
    )


def fill_study(
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
) -> Dict[str, Dict[str, float]]:
    """The X-fill triangle on a generated core's partial patterns.

    Adjacent fill minimizes shift transitions (power), constant fill
    maximizes run-length compressibility, random fill maximizes
    incidental detection — three deliveries of the *same* care bits
    with very different costs.
    """
    from ..atpg import Podem, TestSet, collapse_faults
    from ..atpg.fill import fill_strategy_report

    seed = 9 if seed is None else seed
    runtime = ensure_runtime(runtime)
    with runtime.activate():
        netlist = generate_circuit(
            GeneratorSpec(name="fill_core", inputs=18, outputs=8, flip_flops=40,
                          target_gates=360, seed=seed)
        )
        circuit = CompiledCircuit(netlist)
        podem = Podem(circuit)
        partial = TestSet(netlist.name)
        for fault in collapse_faults(circuit):
            outcome = podem.generate(fault)
            if outcome.pattern is not None:
                partial.add(outcome.pattern)
        return fill_strategy_report(partial, circuit, seed=seed)


def compression_study(
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
) -> Tuple[CompressionReport, CompressionReport]:
    """Care-bit density and compressibility: partial vs filled patterns.

    PODEM's partial patterns model the per-core (modular) situation —
    only the targeted core's bits are specified; the deterministically
    filled versions model delivery, where every bit is shifted.
    """
    seed = 9 if seed is None else seed
    runtime = ensure_runtime(runtime)
    with runtime.activate():
        netlist = generate_circuit(
            GeneratorSpec(name="compress_core", inputs=24, outputs=10,
                          flip_flops=60, target_gates=460, seed=seed)
        )
        circuit = CompiledCircuit(netlist)
        podem = Podem(circuit)
        partial = TestSet(netlist.name)
        for fault in collapse_faults(circuit):
            outcome = podem.generate(fault)
            if outcome.pattern is not None:
                partial.add(outcome.pattern)
        filled = partial.filled(circuit, seed=seed)
        return (
            compress_streams(
                "partial (modular-style)", pattern_streams(circuit, partial)
            ),
            compress_streams("filled (delivery)", pattern_streams(circuit, filled)),
        )


def abort_on_fail_study(
    soc_name: str = "d695",
    tam_width: int = 8,
    runtime: Optional[Runtime] = None,
) -> AbortOnFailStudy:
    """Expected tester time with and without fail-probability ordering.

    Fail probabilities follow an area-proportional defect model over
    each core's scan population.
    """
    runtime = ensure_runtime(runtime)
    with runtime.activate():
        soc = load(soc_name)
        specs = core_specs_from_soc(soc)
        biggest = max(sum(spec.scan_chains) for spec in specs) or 1
        probabilities: Dict[str, float] = {
            spec.name: 0.02 + 0.25 * sum(spec.scan_chains) / biggest
            for spec in specs
        }
        return abort_study(specs, probabilities, tam_width=tam_width)


@dataclass
class TestPointStudy:
    """BIST coverage and scan-cell cost before/after test points."""

    __test__ = False  # "Test" prefix is domain vocabulary

    coverage_before: float
    coverage_after: float
    added_cells: int
    scan_cells_before: int

    @property
    def coverage_gain(self) -> float:
        return self.coverage_after - self.coverage_before

    @property
    def cell_overhead(self) -> float:
        return self.added_cells / self.scan_cells_before


def test_point_study(
    seed: Optional[int] = None,
    budget: int = 16,
    patterns: int = 128,
    runtime: Optional[Runtime] = None,
) -> TestPointStudy:
    """SCOAP-guided test points on a random-pattern-resistant core.

    Both BIST sessions are scored against the *original* circuit's
    collapsed fault list (translated into the instrumented netlist by
    :func:`repro.atpg.testpoints.map_faults_to_instrumented`), so the
    coverage numbers are directly comparable.
    """
    from ..atpg import apply_test_points, run_bist
    from ..atpg.testpoints import map_faults_to_instrumented

    seed = 21 if seed is None else seed
    runtime = ensure_runtime(runtime)
    with runtime.activate():
        netlist = generate_circuit(
            GeneratorSpec(name="tp_core", inputs=40, outputs=8, flip_flops=24,
                          target_gates=420, min_cone_width=12, max_cone_width=18,
                          xor_fraction=0.0, overlap=0.3, seed=seed)
        )
        _plan, instrumented = apply_test_points(
            netlist, budget=budget, observe_threshold=10, control_threshold=10
        )
        original_faults, mapped_faults = map_faults_to_instrumented(
            netlist, instrumented
        )
        before = run_bist(netlist, patterns=patterns, seed=seed,
                          faults=original_faults)
        after = run_bist(instrumented, patterns=patterns, seed=seed,
                         faults=mapped_faults)
    return TestPointStudy(
        coverage_before=before.fault_coverage,
        coverage_after=after.fault_coverage,
        added_cells=len(instrumented.flip_flops) - len(netlist.flip_flops),
        scan_cells_before=len(netlist.flip_flops),
    )


# The name begins with "test" as domain vocabulary; keep pytest from
# collecting it when imported into test/bench modules.
test_point_study.__test__ = False  # type: ignore[attr-defined]


@dataclass
class AtSpeedStudy:
    """Stuck-at vs transition pattern counts on one full-scan core."""

    stuck_at_patterns: int
    transition_pairs: int
    transition_coverage: float

    @property
    def data_multiplier(self) -> float:
        """TDV ratio at equal per-pattern width: pairs over patterns."""
        if self.stuck_at_patterns == 0:
            return float("inf")
        return self.transition_pairs / self.stuck_at_patterns


def at_speed_study(seed: int = 7, runtime: Optional[Runtime] = None) -> AtSpeedStudy:
    """The at-speed data multiplier on a generated full-scan core.

    Transition tests reuse the same scan infrastructure (same bits per
    pattern), so the TDV impact is purely the pattern-count multiplier —
    which feeds straight into the paper's per-core ``T`` values.
    """
    from ..atpg import generate_transition_tests

    runtime = ensure_runtime(runtime)
    netlist = generate_circuit(
        GeneratorSpec(name="atspeed_core", inputs=10, outputs=4,
                      flip_flops=12, target_gates=110, seed=seed)
    )
    config = runtime.config.with_seed(seed)
    stuck_at = runtime.generate(netlist, config=config)
    transition = generate_transition_tests(netlist, fill_retries=16, config=config)
    return AtSpeedStudy(
        stuck_at_patterns=stuck_at.pattern_count,
        transition_pairs=transition.pattern_pair_count,
        transition_coverage=transition.fault_coverage,
    )


@experiment("extensions", order=60)
def run(
    verbose: bool = True,
    seed: Optional[int] = None,
    runtime: Optional[Runtime] = None,
) -> Dict[str, object]:
    """CLI entry point for the extension studies.

    ``seed=None`` keeps each study's historical default seed (9/21/7);
    an explicit seed overrides all of them uniformly — previously the
    runner's ``--seed`` was silently dropped here.
    """
    runtime = ensure_runtime(runtime)
    bist = bist_study(**({} if seed is None else {"seed": seed}), runtime=runtime)
    partial, filled = compression_study(seed=seed, runtime=runtime)
    abort = abort_on_fail_study(runtime=runtime)
    points = test_point_study(seed=seed, runtime=runtime)
    at_speed = at_speed_study(
        **({} if seed is None else {"seed": seed}), runtime=runtime
    )
    fill = fill_study(seed=seed, runtime=runtime)
    if verbose:
        print("Extension 1: BIST vs external test data")
        print(f"  ATE scan test: {bist.ate_patterns} patterns, "
              f"{bist.ate_bits:,} external bits")
        print(f"  BIST session:  {bist.bist.patterns_applied} patterns, "
              f"{bist.bist.external_data_bits():,} external bits, "
              f"coverage {100 * bist.bist.fault_coverage:.1f}%")
        print(f"  external-data reduction: {bist.external_reduction_ratio:,.0f}x")
        print()
        print("Extension 2: care-bit density and stimulus compression")
        for report in (partial, filled):
            print(f"  {report.name:24s} flat {report.flat_bits:>8,}  "
                  f"run-length {report.run_length:>8,} "
                  f"({report.run_length_ratio:4.1f}x)  care-coded "
                  f"{report.care_position:>8,} "
                  f"({report.care_position_ratio:4.1f}x)")
        print()
        print("Extension 3: abort-on-fail ordering (d695)")
        print(f"  all-pass session: {abort.pass_time:,.0f} cycles")
        print(f"  expected, size-ordered:   {abort.expected_naive:,.0f} cycles")
        print(f"  expected, p/t-ordered:    {abort.expected_optimized:,.0f} cycles "
              f"({100 * abort.improvement:.1f}% saved)")
        print()
        print("Extension 4: SCOAP-guided test points for BIST")
        print(f"  coverage {100 * points.coverage_before:.1f}% -> "
              f"{100 * points.coverage_after:.1f}% "
              f"(+{100 * points.coverage_gain:.1f} points) for "
              f"{points.added_cells} extra scan cells "
              f"({100 * points.cell_overhead:.0f}% of the original scan)")
        print()
        print("Extension 5: at-speed (transition) test data multiplier")
        print(f"  stuck-at: {at_speed.stuck_at_patterns} patterns; "
              f"LOS transition: {at_speed.transition_pairs} pairs at "
              f"{100 * at_speed.transition_coverage:.1f}% TDF coverage "
              f"-> {at_speed.data_multiplier:.1f}x data")
        print()
        print("Extension 6: X-fill strategies (power vs compression)")
        for strategy, costs in fill.items():
            print(f"  {strategy:9s} transitions {costs['transitions']:>8,.0f}  "
                  f"run-length {costs['run_length_ratio']:.2f}x")
    return {
        "bist": bist,
        "compression": (partial, filled),
        "abort": abort,
        "test_points": points,
        "at_speed": at_speed,
        "fill": fill,
    }
