"""Self-registering experiment table.

Experiments used to be a hardcoded tuple in the runner plus a parallel
if/elif dispatch; adding one meant editing three places.  Now each
experiment module declares itself:

.. code-block:: python

    @experiment("correlation", order=40)
    def run(verbose=True, seed=None, runtime=None):
        ...

and the runner derives its name list, its dispatch, and ``all``'s
execution order from this registry.  ``order`` pins the position in
``all`` (and in ``--help``) explicitly — registration happens at import
time, so relying on import order would make the CLI's surface depend on
which module some unrelated code touched first.

``group`` marks experiments that share one underlying runner (table3
and table4 both print the full ITC'02 report): ``all`` runs each group
once.

This module is a leaf — experiment modules import it, never the other
way round — so the decorator can live next to the ``run()`` it
registers without an import cycle through the runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

ExperimentRunner = Callable[..., object]


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment: its CLI name, order, and runner."""

    name: str
    order: int
    run: ExperimentRunner  # called as run(seed=..., runtime=...)
    group: Optional[str] = None

    @property
    def dedupe_key(self) -> str:
        """What ``all`` dedupes on: the group, or the name itself."""
        return self.group or self.name


_REGISTRY: Dict[str, ExperimentEntry] = {}


def experiment(
    name: str, *, order: int, group: Optional[str] = None
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Register the decorated callable as experiment ``name``.

    The callable must accept ``seed=`` and ``runtime=`` keyword
    arguments.  Decorating two names onto one function (or two
    functions with one ``group``) is how shared runners express
    themselves.  Duplicate names and duplicate orders are registration
    bugs, caught eagerly.
    """
    def register(run: ExperimentRunner) -> ExperimentRunner:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        for entry in _REGISTRY.values():
            if entry.order == order:
                raise ValueError(
                    f"experiment {name!r} reuses order {order} "
                    f"(held by {entry.name!r})"
                )
        _REGISTRY[name] = ExperimentEntry(
            name=name, order=order, run=run, group=group
        )
        return run

    return register


def get(name: str) -> ExperimentEntry:
    """The registered entry, or a ValueError naming the stranger."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}") from None


def names() -> Tuple[str, ...]:
    """Every registered experiment name, in declared (order) sequence."""
    return tuple(
        entry.name
        for entry in sorted(_REGISTRY.values(), key=lambda e: e.order)
    )
