"""Deterministic fault injection for the resilient executor.

Production-scale campaigns fail in a handful of characteristic ways —
a hung search, a killed worker, a corrupted cache file, a transiently
flaky box.  This module injects exactly those faults on demand so the
degradation paths of :mod:`repro.runtime.executor` are *testable*
rather than theoretical.

Faults are deterministic functions of the job attempt number, not coin
flips: "the first ``crash_attempts`` attempts of every job crash"
reproduces identically on every run, which is what differential tests
need.  A :class:`ChaosConfig` with all-zero fields (the default)
injects nothing, and the executor's behavior under it is bit-identical
to no chaos at all (``tests/test_resilience.py`` enforces this
differentially).

Activation: pass ``ExecutionPolicy(chaos=...)`` in code, or set the
``REPRO_CHAOS`` environment variable (read by ``Runtime.from_flags``)
to comma-separated ``field=value`` pairs, e.g.::

    REPRO_CHAOS="hang_seconds=0.2,hang_attempts=1,crash_attempts=1"
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterator, Optional

from ..errors import ConfigError, FlakyWorkerError, WorkerCrashError

CHAOS_ENV_VAR = "REPRO_CHAOS"


@dataclass(frozen=True)
class ChaosConfig:
    """Which faults to inject, and how hard.

    Every ``*_attempts`` field means "the first N attempts of each job
    suffer this fault" (attempts count from 0), so with a retry policy
    of more than N attempts every job eventually succeeds — the shape
    of a transient production failure.

    ``corrupt_stores`` truncates the first N result files written to
    the ATPG cache *after* a successful store, exercising the
    quarantine-and-recompute path on the next lookup.
    """

    hang_seconds: float = 0.0  # sleep injected at job start...
    hang_attempts: int = 0  # ...on the first N attempts of each job
    crash_attempts: int = 0  # kill the worker on the first N attempts
    flaky_attempts: int = 0  # raise FlakyWorkerError on the first N attempts
    corrupt_stores: int = 0  # truncate the first N cache files written

    def __post_init__(self) -> None:
        for spec in fields(self):
            if getattr(self, spec.name) < 0:
                raise ConfigError(
                    f"chaos {spec.name} must be >= 0, "
                    f"got {getattr(self, spec.name)}"
                )

    @property
    def enabled(self) -> bool:
        return (
            self.hang_attempts > 0
            or self.crash_attempts > 0
            or self.flaky_attempts > 0
            or self.corrupt_stores > 0
        )

    def on_job_start(self, job: str, attempt: int, in_pool: bool) -> None:
        """Inject the configured job-level faults for this attempt.

        Runs in the worker, before the engine starts but after the
        abort token is armed — so an injected hang is exactly what a
        real hang is: wall-clock lost before the next cooperative
        check.  A crash in a pool worker is a hard ``os._exit`` (the
        parent sees a broken pool, as with a real OOM kill); in the
        serial path it degrades to :class:`WorkerCrashError` so the
        host process survives.
        """
        if attempt < self.hang_attempts and self.hang_seconds > 0:
            time.sleep(self.hang_seconds)
        if attempt < self.crash_attempts:
            if in_pool:
                os._exit(1)
            raise WorkerCrashError(
                f"chaos: job {job!r} worker crashed on attempt {attempt}"
            )
        if attempt < self.flaky_attempts:
            raise FlakyWorkerError(
                f"chaos: job {job!r} flaked on attempt {attempt}"
            )

    # -- env plumbing ---------------------------------------------------

    def to_env(self) -> str:
        """The ``REPRO_CHAOS`` string reproducing this config."""
        parts = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value:
                parts.append(f"{spec.name}={value}")
        return ",".join(parts)

    @classmethod
    def from_env(cls, text: Optional[str] = None) -> "ChaosConfig":
        """Parse ``$REPRO_CHAOS`` (or ``text``) into a config.

        Unset/empty means no chaos.  Unknown field names are a
        :class:`ConfigError` — a typo silently injecting nothing would
        defeat the point of a chaos test.
        """
        if text is None:
            text = os.environ.get(CHAOS_ENV_VAR, "")
        text = text.strip()
        if not text:
            return cls()
        known = {spec.name for spec in fields(cls)}
        values = {}
        for part in text.split(","):
            name, sep, raw = part.partition("=")
            name = name.strip()
            if not sep or name not in known:
                raise ConfigError(
                    f"bad {CHAOS_ENV_VAR} entry {part!r}; known fields: "
                    f"{', '.join(sorted(known))}"
                )
            try:
                values[name] = float(raw) if name == "hang_seconds" else int(raw)
            except ValueError:
                raise ConfigError(
                    f"bad {CHAOS_ENV_VAR} value {raw!r} for {name}"
                ) from None
        return cls(**values)


# -- ambient chaos (parent process: cache-store corruption) ------------------

_ACTIVE: ChaosConfig = ChaosConfig()
_CORRUPTED_STORES = 0


def get_chaos() -> ChaosConfig:
    """The chaos config active in this process (inert by default)."""
    return _ACTIVE


@contextmanager
def use_chaos(chaos: Optional[ChaosConfig]) -> Iterator[ChaosConfig]:
    """Scope ``chaos`` as the active config; resets the store-corruption
    budget on entry so each scoped run corrupts its first N stores."""
    global _ACTIVE, _CORRUPTED_STORES
    previous, previous_count = _ACTIVE, _CORRUPTED_STORES
    _ACTIVE = chaos if chaos is not None else ChaosConfig()
    _CORRUPTED_STORES = 0
    try:
        yield _ACTIVE
    finally:
        _ACTIVE, _CORRUPTED_STORES = previous, previous_count


def maybe_corrupt_store(path: Path) -> bool:
    """Truncate a just-written store file if the budget allows.

    Called by :meth:`AtpgResultCache.put` after every disk write; does
    nothing unless an active chaos config still has ``corrupt_stores``
    budget.  Returns whether the file was corrupted.
    """
    global _CORRUPTED_STORES
    if _CORRUPTED_STORES >= _ACTIVE.corrupt_stores:
        return False
    _CORRUPTED_STORES += 1
    text = path.read_text()
    path.write_text(text[: max(1, len(text) // 2)])
    return True
