"""Checkpoint/resume: per-job results journaled to a run directory.

Long multi-core campaigns must survive being killed.  A
:class:`RunJournal` makes every completed job durable the moment it
finishes: one JSON file per job under ``RUN_DIR/jobs/``, written
atomically (tmp + rename), keyed by the same content key the result
cache uses.  A rerun pointed at the same directory with ``resume=True``
(``repro experiments --resume RUN_DIR``) treats journaled jobs as
instant hits and executes only the remainder — and because the key
covers the netlist and config entirely, a resumed run is bit-identical
to an uninterrupted one.

``RUN_DIR/manifest.json`` is the run's canonical record: the job list
(name, circuit, content key, pattern count, status) in job order, with
*no* wall-clock fields, so the manifest of a killed-and-resumed run is
byte-identical to that of a run that never died.  It is rewritten after
every :func:`~repro.runtime.executor.run_jobs` batch, so it is also a
live progress file.

Corrupt journal entries are quarantined and recomputed, exactly like
cache entries (:mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..atpg.engine import AtpgResult
from ..core.serialization import (
    SCHEMA_VERSION,
    atpg_result_from_dict,
    atpg_result_to_dict,
)
from ..errors import CacheCorruptionError, ConfigError
from ..observability import get_tracer, register_counter
from .cache import quarantine_file
from .config import AtpgConfig

JOURNAL_RESUMED = register_counter(
    "journal.resumed", "jobs skipped on resume (journal hits)"
)
JOURNAL_RECORDS = register_counter("journal.records", "job results journaled")
JOURNAL_QUARANTINED = register_counter(
    "journal.quarantined", "corrupt journal entries quarantined"
)


class RunJournal:
    """Durable per-job results plus a canonical manifest for one run.

    ``resume=False`` (a fresh run) refuses a directory that already
    holds journal entries — resuming must be an explicit decision, not
    an accident of reusing a path.
    """

    def __init__(self, directory: Union[str, Path], resume: bool = False):
        self.directory = Path(directory)
        self.jobs_dir = self.directory / "jobs"
        self.resume = resume
        self.resumed_jobs = 0
        self.completed: List[Dict[str, Any]] = []
        if not resume and self.jobs_dir.exists() and any(self.jobs_dir.glob("*.json")):
            raise ConfigError(
                f"run directory {self.directory} already holds journaled "
                f"results; pass resume=True (--resume) to continue that "
                f"run, or choose a fresh directory"
            )
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -- per-job results ------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.jobs_dir / f"{key}.json"

    @staticmethod
    def _tmp_name(name: str) -> str:
        """A tmp filename no other live writer can be using."""
        return f"{name}.{os.getpid()}.{threading.get_ident()}.tmp"

    def get(self, key: str) -> Optional[AtpgResult]:
        """The journaled result under ``key``, or None.

        Only consulted on resume; a fresh run never reads its own
        journal.  Corrupt entries are quarantined and reported as
        misses so the job simply re-executes.
        """
        if not self.resume:
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != key:
                raise CacheCorruptionError(
                    f"journal entry {path.name} claims key "
                    f"{payload.get('key')!r}, expected {key!r}"
                )
            result = atpg_result_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            quarantine_file(path)
            get_tracer().count(JOURNAL_QUARANTINED)
            return None
        self.resumed_jobs += 1
        get_tracer().count(JOURNAL_RESUMED)
        return result

    def record(
        self, key: str, name: str, config: AtpgConfig, result: AtpgResult
    ) -> None:
        """Durably journal one fresh result (atomic, concurrency-safe).

        The tmp file name includes the pid and thread id, so concurrent
        writers — the job service journaling batches while a CLI run
        shares the directory, or two resumed runs racing — can never
        interleave on one tmp path; last rename wins with a complete
        file either way.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "job": name,
            "config": config.to_dict(),
            "result": atpg_result_to_dict(result),
        }
        path = self._path(key)
        tmp = path.with_name(self._tmp_name(path.name))
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        get_tracer().count(JOURNAL_RECORDS)

    # -- the canonical manifest -----------------------------------------

    def note(
        self,
        name: str,
        circuit: Optional[str],
        key: Optional[str],
        pattern_count: Optional[int],
        status: str,
    ) -> None:
        """Append one job to the manifest job list (in job order)."""
        self.completed.append(
            {
                "name": name,
                "circuit": circuit,
                "key": key,
                "pattern_count": pattern_count,
                "status": status,
            }
        )

    def write_manifest(self) -> Path:
        """(Re)write ``manifest.json`` — deterministic bytes, no clocks.

        Same per-writer tmp discipline as :meth:`record`: concurrent
        writers sharing the directory each rename a complete file into
        place, never a torn mix.
        """
        payload = {"schema": SCHEMA_VERSION, "jobs": self.completed}
        path = self.directory / "manifest.json"
        tmp = path.with_name(self._tmp_name("manifest.json"))
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        tmp.replace(path)
        return path
