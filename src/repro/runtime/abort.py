"""Cooperative abort for long ATPG runs: deadlines and search budgets.

A hung PODEM search cannot be interrupted from outside without killing
its whole worker process, so the engine aborts *cooperatively*: the
executor installs an :class:`AbortToken` for the duration of a job, and
the engine loops (fault queue, PODEM decisions, fault-simulation
batches) call :meth:`AbortToken.check` at their natural iteration
boundaries.  An expired wall-clock deadline raises
:class:`~repro.errors.JobTimeoutError`; an exhausted backtrack budget
raises :class:`~repro.errors.AbortedError`.  Both unwind the run
cleanly — partial engine state is simply dropped.

The token is ambient process-global state exactly like the tracer
(:mod:`repro.observability.tracer`), and for the same reason: the
kernels sit many layers below the runtime and must stay
signature-stable.  The default :data:`NULL_ABORT` makes every check a
no-op method call, so un-deadlined runs pay nothing measurable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from ..errors import AbortedError, JobTimeoutError

AbortLike = Union["AbortToken", "NullAbort"]


class NullAbort:
    """The do-nothing token installed by default: checks never trip."""

    __slots__ = ()

    enabled = False

    def check(self) -> None:
        pass

    def spend_backtracks(self, count: int) -> None:
        pass


NULL_ABORT = NullAbort()


class AbortToken:
    """One job's abort conditions: a deadline and/or a backtrack budget.

    ``deadline_seconds`` counts from token construction on the
    monotonic clock; ``backtrack_budget`` caps the *total* PODEM
    backtracks across the whole run (the per-fault ``backtrack_limit``
    of :class:`~repro.runtime.config.AtpgConfig` still applies
    underneath — the budget bounds pathological runs where many faults
    each burn their full limit).
    """

    __slots__ = ("deadline_at", "backtrack_budget", "backtracks_spent", "_clock")

    enabled = True

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        backtrack_budget: Optional[int] = None,
    ):
        self._clock = time.perf_counter
        self.deadline_at = (
            self._clock() + deadline_seconds if deadline_seconds is not None else None
        )
        self.backtrack_budget = backtrack_budget
        self.backtracks_spent = 0

    def check(self) -> None:
        """Raise :class:`JobTimeoutError` if the deadline has passed."""
        if self.deadline_at is not None and self._clock() > self.deadline_at:
            raise JobTimeoutError("job exceeded its wall-clock deadline")

    def spend_backtracks(self, count: int) -> None:
        """Charge PODEM backtracks against the budget; raise when spent."""
        self.backtracks_spent += count
        if (
            self.backtrack_budget is not None
            and self.backtracks_spent > self.backtrack_budget
        ):
            raise AbortedError(
                f"job exceeded its backtrack budget "
                f"({self.backtracks_spent} > {self.backtrack_budget})"
            )


# -- the process-global active token ----------------------------------------

_ACTIVE: AbortLike = NULL_ABORT


def get_abort() -> AbortLike:
    """The active abort token (the shared :data:`NULL_ABORT` by default)."""
    return _ACTIVE


def set_abort(token: Optional[AbortLike]) -> AbortLike:
    """Install ``token`` (None restores the null token); returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = token if token is not None else NULL_ABORT
    return previous


@contextmanager
def use_abort(token: Optional[AbortLike]) -> Iterator[AbortLike]:
    """Scope ``token`` as the active abort token for a ``with`` block."""
    previous = set_abort(token)
    try:
        yield get_abort()
    finally:
        set_abort(previous)
