"""The identity of an ATPG run.

Every ``T`` in the paper's TDV formulas comes out of one ATPG run, and
that run is fully determined by the netlist plus a handful of engine
knobs.  :class:`AtpgConfig` freezes those knobs into a hashable value
object so a run has a *well-defined identity*: the same (netlist,
config) pair always produces the same :class:`~repro.atpg.engine.AtpgResult`,
which is what makes results cacheable (:mod:`repro.runtime.cache`) and
safely distributable across worker processes
(:mod:`repro.runtime.executor`).

This module deliberately imports nothing from the rest of the package
except :mod:`repro.errors` (itself dependency-free) — it sits below
:mod:`repro.atpg` so the engine itself can accept a config without a
layering cycle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from ..errors import ConfigError

# Kept in sync with repro.atpg.backends.BACKEND_CHOICES (not imported:
# this module sits below repro.atpg by design).
_BACKEND_CHOICES = ("auto", "pure", "numpy")


@dataclass(frozen=True)
class AtpgConfig:
    """Engine knobs that determine an ATPG run, as one frozen value.

    Field defaults mirror :func:`repro.atpg.engine.generate_tests`, so
    ``AtpgConfig()`` reproduces a bare ``generate_tests(netlist)`` call.
    """

    seed: int = 0
    backtrack_limit: int = 100
    random_batches: int = 32
    compact: bool = True
    dynamic_compaction: int = 0
    #: Pattern-stream epoch (see :mod:`repro.atpg.streams`).  ``1`` is
    #: the legacy sequential draw order; ``2`` is the counter-based
    #: order-independent stream.  Unlike ``backend``, the epoch changes
    #: the generated bits, so it is part of the run identity: it enters
    #: :meth:`fingerprint` (whenever != 1) and epochs never collide in
    #: the cache.
    stream: int = 1
    #: Kernel backend request (``None`` = environment/auto).  Every
    #: backend is bit-identical to ``pure``, so this is an execution
    #: detail: it rides along in serialized configs but is excluded
    #: from :meth:`fingerprint`, keeping cache keys backend-invariant.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend not in _BACKEND_CHOICES:
            raise ConfigError(
                f"unknown kernel backend {self.backend!r}: "
                f"choose from {', '.join(_BACKEND_CHOICES)}"
            )
        if self.backtrack_limit < 1:
            raise ConfigError(
                f"backtrack_limit must be >= 1, got {self.backtrack_limit}"
            )
        if self.random_batches < 0:
            raise ConfigError(f"random_batches must be >= 0, got {self.random_batches}")
        if self.dynamic_compaction < 0:
            raise ConfigError(
                f"dynamic_compaction must be >= 0, got {self.dynamic_compaction}"
            )
        if self.stream not in (1, 2):
            raise ConfigError(
                f"unknown pattern-stream epoch {self.stream!r}: choose 1 or 2"
            )

    def with_seed(self, seed: int) -> "AtpgConfig":
        """The same configuration under a different seed."""
        return replace(self, seed=seed)

    def engine_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`repro.atpg.engine.generate_tests`."""
        return {
            "seed": self.seed,
            "backtrack_limit": self.backtrack_limit,
            "random_batches": self.random_batches,
            "compact": self.compact,
            "dynamic_compaction": self.dynamic_compaction,
            "stream": self.stream,
        }

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "seed": self.seed,
            "backtrack_limit": self.backtrack_limit,
            "random_batches": self.random_batches,
            "compact": self.compact,
            "dynamic_compaction": self.dynamic_compaction,
        }
        # The legacy epoch is implicit, so stream-1 dicts — and
        # therefore every pre-epoch fingerprint and cached result —
        # are byte-identical to before the field existed.
        if self.stream != 1:
            data["stream"] = self.stream
        if self.backend is not None:
            data["backend"] = self.backend
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AtpgConfig":
        return cls(
            seed=data.get("seed", 0),
            backtrack_limit=data.get("backtrack_limit", 100),
            random_batches=data.get("random_batches", 32),
            compact=data.get("compact", True),
            dynamic_compaction=data.get("dynamic_compaction", 0),
            stream=data.get("stream", 1),
            backend=data.get("backend"),
        )

    def fingerprint(self) -> str:
        """A stable content hash of the configuration.

        The kernel ``backend`` is deliberately excluded: backends are
        bit-identical, so results cached under one backend are valid —
        and reused — under any other.  The pattern-stream epoch is
        *included* (whenever it is not the implicit legacy ``1``):
        epochs generate different bits, so their results must never
        collide in the cache.
        """
        data = self.to_dict()
        data.pop("backend", None)
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
