"""The runtime facade the experiments and CLI program against.

A :class:`Runtime` bundles the execution policies — default
:class:`~repro.runtime.config.AtpgConfig`, result cache, worker count,
and (optionally) a tracer — behind two calls: :meth:`Runtime.generate`
for one netlist and :meth:`Runtime.map` for a batch.  ``Runtime()``
with no arguments is the neutral element: serial, uncached, default
config, ambient tracer — exactly a direct
:func:`repro.atpg.engine.generate_tests` call, which is why library
entry points can take ``runtime=None`` and behave as before.

The runtime accumulates a :class:`~repro.runtime.executor.RunManifest`
across calls, so a whole experiment (many ``map``/``generate`` calls)
reports one hit rate and one ATPG wall-clock total; with tracing on,
the manifest additionally carries per-phase breakdowns and the tracer
collects the merged per-job spans.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace
from typing import Iterator, List, Optional, Sequence

from ..atpg.engine import AtpgResult
from ..circuit.netlist import Netlist
from ..errors import ConfigError
from ..observability import JsonlSink, Tracer, get_tracer, use_tracer
from .cache import AtpgResultCache, default_cache_dir
from .chaos import ChaosConfig
from .config import AtpgConfig
from .executor import AtpgJob, RunManifest, run_jobs
from .journal import RunJournal
from .policy import ExecutionPolicy, validate_on_error


class Runtime:
    """Execution policy for ATPG work: config defaults, cache, workers.

    ``tracer=None`` (the default) means "whatever tracer is ambient at
    call time" — usually the :class:`~repro.observability.NullTracer`,
    so tracing costs nothing unless somebody opted in.  Passing a
    :class:`~repro.observability.Tracer` pins telemetry for every call
    made through this runtime.

    ``policy`` (an :class:`~repro.runtime.policy.ExecutionPolicy`) and
    ``on_error`` set the failure handling for every batch run through
    this runtime; ``journal`` (a :class:`~repro.runtime.journal.RunJournal`)
    makes each completed job durable and enables ``--resume``.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[AtpgResultCache] = None,
        config: Optional[AtpgConfig] = None,
        tracer: Optional[Tracer] = None,
        policy: Optional[ExecutionPolicy] = None,
        on_error: str = "raise",
        journal: Optional[RunJournal] = None,
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        validate_on_error(on_error)
        self.workers = workers
        self.cache = cache
        self.config = config if config is not None else AtpgConfig()
        self.tracer = tracer
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.on_error = on_error
        self.journal = journal
        self.manifest = RunManifest(workers=workers)
        # Set by from_flags so report helpers know what the user asked for.
        self.metrics_requested = False
        self.trace_path: Optional[str] = None

    @classmethod
    def from_flags(
        cls,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        no_cache: bool = False,
        seed: Optional[int] = None,
        config: Optional[AtpgConfig] = None,
        trace: Optional[str] = None,
        metrics: bool = False,
        deadline: Optional[float] = None,
        retries: Optional[int] = None,
        on_error: str = "raise",
        run_dir: Optional[str] = None,
        resume: bool = False,
        backend: Optional[str] = None,
        stream: Optional[int] = None,
    ) -> "Runtime":
        """Build a runtime from the shared CLI flags.

        Caching is on by default (``--no-cache`` turns it off); the
        directory is ``--cache-dir``, else ``$REPRO_CACHE_DIR``, else
        ``~/.cache/repro/atpg``.  ``seed`` overrides only the seed of
        the base ``config`` (a fresh default one if not given), so
        non-default config fields survive the flag plumbing.  ``trace``
        (a JSONL path) and ``metrics`` both switch on a real tracer.

        Resilience flags: ``deadline`` (per-job seconds, ``--deadline``)
        and ``retries`` (extra attempts per job, ``--retries``; implies
        ``on_error="retry"`` unless a mode was set explicitly) populate
        the :class:`ExecutionPolicy`; fault injection comes from the
        ``$REPRO_CHAOS`` environment variable — execution policy, never
        run identity, so cache keys are untouched.  ``run_dir``
        (``--run-dir``) journals every completed job there; ``resume``
        (``--resume``) additionally treats journaled jobs as instant
        hits.
        """
        cache = None
        if not no_cache:
            cache = AtpgResultCache(cache_dir if cache_dir else default_cache_dir())
        base = config if config is not None else AtpgConfig()
        resolved = base if seed is None else base.with_seed(seed)
        if backend is not None:
            # Kernel backend (--backend): execution detail, validated by
            # AtpgConfig but excluded from its fingerprint — cache keys
            # and results are backend-invariant.
            resolved = replace(resolved, backend=backend)
        if stream is not None:
            # Pattern-stream epoch (--stream): unlike the backend this
            # changes the generated bits, so it is part of run identity
            # and enters the fingerprint (whenever != 1).
            resolved = replace(resolved, stream=stream)
        tracer = None
        if trace or metrics:
            tracer = Tracer()
            if trace:
                tracer.sinks.append(JsonlSink(trace))
        if retries is not None and on_error == "raise":
            on_error = "retry"
        policy = ExecutionPolicy(
            deadline_seconds=deadline,
            max_attempts=(retries + 1) if retries is not None else 3,
            chaos=ChaosConfig.from_env(),
        )
        journal = None
        if run_dir or resume:
            if not run_dir:
                raise ConfigError("--resume needs a run directory (--run-dir)")
            journal = RunJournal(run_dir, resume=resume)
        runtime = cls(
            workers=workers,
            cache=cache,
            config=resolved,
            tracer=tracer,
            policy=policy,
            on_error=on_error,
            journal=journal,
        )
        runtime.metrics_requested = metrics
        runtime.trace_path = trace
        return runtime

    def _active_tracer(self):
        return self.tracer if self.tracer is not None else get_tracer()

    @contextmanager
    def activate(self) -> Iterator:
        """Make this runtime's tracer ambient for a ``with`` block.

        Code inside the block — including direct ``generate_tests``
        calls that never see the runtime — reports to the same tracer.
        A no-op (ambient tracer unchanged) when the runtime has none.
        """
        with use_tracer(self._active_tracer()) as tracer:
            yield tracer

    def generate(
        self,
        netlist: Netlist,
        config: Optional[AtpgConfig] = None,
        name: Optional[str] = None,
    ) -> AtpgResult:
        """Run (or recall) ATPG on one netlist."""
        job = AtpgJob(
            name=name or netlist.name,
            netlist=netlist,
            config=config if config is not None else self.config,
        )
        return self.map([job])[0]

    def map(self, jobs: Sequence[AtpgJob]) -> List[AtpgResult]:
        """Run a batch of jobs; results align with the input order.

        Under ``on_error="skip"`` a failed job's slot holds ``None``;
        under the other modes every returned result is real (failures
        raise instead).
        """
        with self.activate():
            results, manifest = run_jobs(
                jobs,
                workers=self.workers,
                cache=self.cache,
                policy=self.policy,
                on_error=self.on_error,
                journal=self.journal,
            )
        self.manifest.extend(manifest)
        return results

    def summary(self) -> str:
        return self.manifest.summary()


def ensure_runtime(runtime: Optional[Runtime]) -> Runtime:
    """The given runtime, or the neutral serial/uncached one."""
    return runtime if runtime is not None else Runtime()
