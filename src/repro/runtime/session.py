"""The runtime facade the experiments and CLI program against.

A :class:`Runtime` bundles the three execution policies — default
:class:`~repro.runtime.config.AtpgConfig`, result cache, worker count —
behind two calls: :meth:`Runtime.generate` for one netlist and
:meth:`Runtime.map` for a batch.  ``Runtime()`` with no arguments is
the neutral element: serial, uncached, default config — exactly a
direct :func:`repro.atpg.engine.generate_tests` call, which is why
library entry points can take ``runtime=None`` and behave as before.

The runtime accumulates a :class:`~repro.runtime.executor.RunManifest`
across calls, so a whole experiment (many ``map``/``generate`` calls)
reports one hit rate and one ATPG wall-clock total.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..atpg.engine import AtpgResult
from ..circuit.netlist import Netlist
from .cache import AtpgResultCache, default_cache_dir
from .config import AtpgConfig
from .executor import AtpgJob, RunManifest, run_jobs


class Runtime:
    """Execution policy for ATPG work: config defaults, cache, workers."""

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[AtpgResultCache] = None,
        config: Optional[AtpgConfig] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.config = config if config is not None else AtpgConfig()
        self.manifest = RunManifest(workers=workers)

    @classmethod
    def from_flags(
        cls,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        no_cache: bool = False,
        seed: Optional[int] = None,
    ) -> "Runtime":
        """Build a runtime from the shared CLI flags.

        Caching is on by default (``--no-cache`` turns it off); the
        directory is ``--cache-dir``, else ``$REPRO_CACHE_DIR``, else
        ``~/.cache/repro/atpg``.
        """
        cache = None
        if not no_cache:
            cache = AtpgResultCache(cache_dir if cache_dir else default_cache_dir())
        config = AtpgConfig() if seed is None else AtpgConfig(seed=seed)
        return cls(workers=workers, cache=cache, config=config)

    def generate(
        self,
        netlist: Netlist,
        config: Optional[AtpgConfig] = None,
        name: Optional[str] = None,
    ) -> AtpgResult:
        """Run (or recall) ATPG on one netlist."""
        job = AtpgJob(
            name=name or netlist.name,
            netlist=netlist,
            config=config if config is not None else self.config,
        )
        return self.map([job])[0]

    def map(self, jobs: Sequence[AtpgJob]) -> List[AtpgResult]:
        """Run a batch of jobs; results align with the input order."""
        results, manifest = run_jobs(jobs, workers=self.workers, cache=self.cache)
        self.manifest.extend(manifest)
        return results

    def summary(self) -> str:
        return self.manifest.summary()


def ensure_runtime(runtime: Optional[Runtime]) -> Runtime:
    """The given runtime, or the neutral serial/uncached one."""
    return runtime if runtime is not None else Runtime()
