"""Cached, parallel execution layer for ATPG and the experiments.

The architectural seam between "what to run" (netlists + configs) and
"how to run it" (serial/parallel, cold/warm):

``repro.runtime.config``
    :class:`AtpgConfig` — the frozen identity of one ATPG run.
``repro.runtime.cache``
    :class:`AtpgResultCache` — content-addressed results, memory LRU +
    JSON on disk, ``REPRO_CACHE_DIR`` override.
``repro.runtime.executor``
    :class:`AtpgJob` / :func:`run_jobs` — process-parallel fan-out with
    deterministic result order, retry-round failure recovery, and a
    per-job :class:`RunManifest` of typed :class:`JobOutcome` records.
``repro.runtime.policy``
    :class:`ExecutionPolicy` — deadlines, backtrack budgets, retry and
    backoff knobs; execution policy, never run identity.
``repro.runtime.abort``
    :class:`AbortToken` — the cooperative deadline/budget token the
    engine loops check.
``repro.runtime.chaos``
    :class:`ChaosConfig` — deterministic fault injection
    (``$REPRO_CHAOS``) for testing the recovery paths.
``repro.runtime.journal``
    :class:`RunJournal` — per-job durable results + canonical manifest;
    what ``repro experiments --resume`` reads.
``repro.runtime.session``
    :class:`Runtime` — the facade bundling all of it, threaded through
    the experiments and both CLIs.

Only :mod:`~repro.runtime.config` is imported eagerly: it has no
dependencies and is what :mod:`repro.atpg.engine` imports, so the
heavier pieces (which import the ATPG stack back) load lazily to keep
the layering acyclic.
"""

from __future__ import annotations

from .config import AtpgConfig

__all__ = [
    "AbortToken",
    "AtpgConfig",
    "AtpgJob",
    "AtpgResultCache",
    "CacheStats",
    "ChaosConfig",
    "ExecutionPolicy",
    "JobOutcome",
    "JobRecord",
    "RunJournal",
    "RunManifest",
    "Runtime",
    "default_cache_dir",
    "ensure_runtime",
    "get_abort",
    "netlist_fingerprint",
    "result_key",
    "run_jobs",
    "use_abort",
]

_LAZY = {
    "AbortToken": "abort",
    "get_abort": "abort",
    "use_abort": "abort",
    "AtpgResultCache": "cache",
    "CacheStats": "cache",
    "default_cache_dir": "cache",
    "netlist_fingerprint": "cache",
    "result_key": "cache",
    "ChaosConfig": "chaos",
    "AtpgJob": "executor",
    "JobOutcome": "executor",
    "JobRecord": "executor",
    "RunManifest": "executor",
    "run_jobs": "executor",
    "RunJournal": "journal",
    "ExecutionPolicy": "policy",
    "Runtime": "session",
    "ensure_runtime": "session",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
