"""Parallel, cache-aware execution of ATPG jobs.

Per-core ATPG is embarrassingly parallel — the modularity argument of
the paper, applied to its own reproduction.  :func:`run_jobs` fans a
list of :class:`AtpgJob` values across worker processes with
``concurrent.futures``, consults the result cache first, and returns
results **in job order regardless of worker count or completion
order**, so serial and parallel runs are bit-identical.

``workers=1`` (the default) never touches multiprocessing: jobs run
inline in submission order, which keeps library callers free of any
process-spawning side effects.  If a process pool cannot be created at
all (restricted environments), execution degrades to the same serial
path.

Every run produces a :class:`RunManifest` — one :class:`JobRecord` per
job with wall-clock time and cache-hit flag — so callers can report
hit rates and where the time went.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..atpg.engine import AtpgResult, generate_tests
from ..circuit.netlist import Netlist
from ..observability import (
    Tracer,
    get_tracer,
    phase_breakdown,
    register_counter,
    register_gauge,
    use_tracer,
)
from .cache import AtpgResultCache
from .config import AtpgConfig

EXECUTOR_JOBS = register_counter("executor.jobs", "ATPG jobs submitted")
EXECUTOR_EXECUTED = register_counter(
    "executor.executed", "ATPG jobs actually run (cache misses)"
)
EXECUTOR_UTILIZATION = register_gauge(
    "executor.utilization",
    "busy worker-seconds / (workers x fan-out wall-clock) of the last parallel run",
)


@dataclass(frozen=True)
class AtpgJob:
    """One unit of ATPG work: a netlist under a specific configuration."""

    name: str
    netlist: Netlist
    config: AtpgConfig = AtpgConfig()


@dataclass
class JobRecord:
    """What happened to one job: where it ran and what it cost."""

    name: str
    circuit: str
    cache_hit: bool
    seconds: float
    pattern_count: int
    phases: Dict[str, float] = field(default_factory=dict)


@dataclass
class RunManifest:
    """Per-job accounting for one or more :func:`run_jobs` calls."""

    workers: int = 1
    records: List[JobRecord] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def executed(self) -> int:
        return self.job_count - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.job_count if self.records else 0.0

    @property
    def atpg_seconds(self) -> float:
        """Wall-clock spent in actual ATPG (cache hits cost ~nothing)."""
        return sum(r.seconds for r in self.records if not r.cache_hit)

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Traced seconds per engine phase, summed over executed jobs.

        Empty when no job ran under an active tracer — phase timing is
        observability data, only collected when asked for.
        """
        totals: Dict[str, float] = {}
        for record in self.records:
            for name, seconds in record.phases.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def extend(self, other: "RunManifest") -> None:
        self.records.extend(other.records)

    def summary(self) -> str:
        text = (
            f"{self.job_count} ATPG jobs: {self.executed} executed "
            f"(workers={self.workers}), {self.cache_hits} cache hits "
            f"({100 * self.hit_rate:.0f}%), {self.atpg_seconds:.2f}s ATPG time"
        )
        phases = self.phase_seconds
        if phases:
            breakdown = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1])
            )
            text += f"; phases: {breakdown}"
        return text


def _execute(
    payload: Tuple[Netlist, AtpgConfig, bool]
) -> Tuple[AtpgResult, float, Optional[Dict[str, Any]]]:
    """Worker entry point (module-level so it pickles).

    When tracing is requested the job runs under its *own* fresh
    :class:`Tracer` — in a pool worker the fork-inherited global would
    otherwise alias the parent's (useless to mutate in a child), and in
    the serial path a private tracer keeps span depths and merge
    semantics identical to the pool path.  The exported trace rides
    back with the result for the parent to merge.
    """
    netlist, config, traced = payload
    start = time.perf_counter()
    if traced:
        tracer = Tracer()
        with use_tracer(tracer):
            result = generate_tests(netlist, config=config)
        return result, time.perf_counter() - start, tracer.export()
    result = generate_tests(netlist, config=config)
    return result, time.perf_counter() - start, None


def run_jobs(
    jobs: Sequence[AtpgJob],
    workers: int = 1,
    cache: Optional[AtpgResultCache] = None,
) -> Tuple[List[AtpgResult], RunManifest]:
    """Run every job; results come back aligned with the input order.

    Cache hits are resolved up front and only the misses are fanned out;
    fresh results are stored back into the cache in job order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tracer = get_tracer()
    manifest = RunManifest(workers=workers)
    results: List[Optional[AtpgResult]] = [None] * len(jobs)
    timings: List[float] = [0.0] * len(jobs)
    hits: List[bool] = [False] * len(jobs)
    phases: List[Dict[str, float]] = [{} for _ in jobs]

    pending: List[int] = []
    for index, job in enumerate(jobs):
        cached = cache.get(job.netlist, job.config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            hits[index] = True
        else:
            pending.append(index)

    if pending:
        payloads = [(jobs[i].netlist, jobs[i].config, tracer.enabled) for i in pending]
        fan_out_start = time.perf_counter()
        outcomes = _run_payloads(payloads, workers)
        fan_out_wall = time.perf_counter() - fan_out_start
        for index, (result, seconds, export) in zip(pending, outcomes):
            results[index] = result
            timings[index] = seconds
            if export is not None:
                tracer.merge(export, job=jobs[index].name)
                phases[index] = phase_breakdown(export)
            if cache is not None:
                cache.put(jobs[index].netlist, jobs[index].config, result)
        if tracer.enabled:
            tracer.count(EXECUTOR_EXECUTED, len(pending))
            if workers > 1 and fan_out_wall > 0:
                busy = sum(seconds for _, seconds, _ in outcomes)
                effective = min(workers, len(pending))
                tracer.gauge(EXECUTOR_UTILIZATION, busy / (effective * fan_out_wall))

    if tracer.enabled and jobs:
        tracer.count(EXECUTOR_JOBS, len(jobs))

    for index, job in enumerate(jobs):
        result = results[index]
        assert result is not None
        manifest.records.append(
            JobRecord(
                name=job.name,
                circuit=result.circuit_name,
                cache_hit=hits[index],
                seconds=timings[index],
                pattern_count=result.pattern_count,
                phases=phases[index],
            )
        )
    return [r for r in results if r is not None], manifest


def _run_payloads(
    payloads: List[Tuple[Netlist, AtpgConfig, bool]], workers: int
) -> List[Tuple[AtpgResult, float, Optional[Dict[str, Any]]]]:
    """Execute payloads serially or across a process pool, in order."""
    if workers == 1 or len(payloads) == 1:
        return [_execute(payload) for payload in payloads]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            return list(pool.map(_execute, payloads))
    except (OSError, PermissionError):
        # No process pool available (sandboxed/limited environments):
        # same results, just serial.
        return [_execute(payload) for payload in payloads]
