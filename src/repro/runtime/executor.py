"""Parallel, cache-aware execution of ATPG jobs.

Per-core ATPG is embarrassingly parallel — the modularity argument of
the paper, applied to its own reproduction.  :func:`run_jobs` fans a
list of :class:`AtpgJob` values across worker processes with
``concurrent.futures``, consults the result cache first, and returns
results **in job order regardless of worker count or completion
order**, so serial and parallel runs are bit-identical.

``workers=1`` (the default) never touches multiprocessing: jobs run
inline in submission order, which keeps library callers free of any
process-spawning side effects.  If a process pool cannot be created at
all (restricted environments), execution degrades to the same serial
path.

Every run produces a :class:`RunManifest` — one :class:`JobRecord` per
job with wall-clock time and cache-hit flag — so callers can report
hit rates and where the time went.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..atpg.engine import AtpgResult, generate_tests
from ..circuit.netlist import Netlist
from .cache import AtpgResultCache
from .config import AtpgConfig


@dataclass(frozen=True)
class AtpgJob:
    """One unit of ATPG work: a netlist under a specific configuration."""

    name: str
    netlist: Netlist
    config: AtpgConfig = AtpgConfig()


@dataclass
class JobRecord:
    """What happened to one job: where it ran and what it cost."""

    name: str
    circuit: str
    cache_hit: bool
    seconds: float
    pattern_count: int


@dataclass
class RunManifest:
    """Per-job accounting for one or more :func:`run_jobs` calls."""

    workers: int = 1
    records: List[JobRecord] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def executed(self) -> int:
        return self.job_count - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.job_count if self.records else 0.0

    @property
    def atpg_seconds(self) -> float:
        """Wall-clock spent in actual ATPG (cache hits cost ~nothing)."""
        return sum(r.seconds for r in self.records if not r.cache_hit)

    def extend(self, other: "RunManifest") -> None:
        self.records.extend(other.records)

    def summary(self) -> str:
        return (
            f"{self.job_count} ATPG jobs: {self.executed} executed "
            f"(workers={self.workers}), {self.cache_hits} cache hits "
            f"({100 * self.hit_rate:.0f}%), {self.atpg_seconds:.2f}s ATPG time"
        )


def _execute(payload: Tuple[Netlist, AtpgConfig]) -> Tuple[AtpgResult, float]:
    """Worker entry point (module-level so it pickles)."""
    netlist, config = payload
    start = time.perf_counter()
    result = generate_tests(netlist, config=config)
    return result, time.perf_counter() - start


def run_jobs(
    jobs: Sequence[AtpgJob],
    workers: int = 1,
    cache: Optional[AtpgResultCache] = None,
) -> Tuple[List[AtpgResult], RunManifest]:
    """Run every job; results come back aligned with the input order.

    Cache hits are resolved up front and only the misses are fanned out;
    fresh results are stored back into the cache in job order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    manifest = RunManifest(workers=workers)
    results: List[Optional[AtpgResult]] = [None] * len(jobs)
    timings: List[float] = [0.0] * len(jobs)
    hits: List[bool] = [False] * len(jobs)

    pending: List[int] = []
    for index, job in enumerate(jobs):
        cached = cache.get(job.netlist, job.config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            hits[index] = True
        else:
            pending.append(index)

    if pending:
        payloads = [(jobs[i].netlist, jobs[i].config) for i in pending]
        outcomes = _run_payloads(payloads, workers)
        for index, (result, seconds) in zip(pending, outcomes):
            results[index] = result
            timings[index] = seconds
            if cache is not None:
                cache.put(jobs[index].netlist, jobs[index].config, result)

    for index, job in enumerate(jobs):
        result = results[index]
        assert result is not None
        manifest.records.append(
            JobRecord(
                name=job.name,
                circuit=result.circuit_name,
                cache_hit=hits[index],
                seconds=timings[index],
                pattern_count=result.pattern_count,
            )
        )
    return [r for r in results if r is not None], manifest


def _run_payloads(
    payloads: List[Tuple[Netlist, AtpgConfig]], workers: int
) -> List[Tuple[AtpgResult, float]]:
    """Execute payloads serially or across a process pool, in order."""
    if workers == 1 or len(payloads) == 1:
        return [_execute(payload) for payload in payloads]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            return list(pool.map(_execute, payloads))
    except (OSError, PermissionError):
        # No process pool available (sandboxed/limited environments):
        # same results, just serial.
        return [_execute(payload) for payload in payloads]
