"""Parallel, cache-aware, failure-hardened execution of ATPG jobs.

Per-core ATPG is embarrassingly parallel — the modularity argument of
the paper, applied to its own reproduction.  :func:`run_jobs` fans a
list of :class:`AtpgJob` values across worker processes with
``concurrent.futures``, consults the result cache (and, on resume, the
run journal) first, and returns results **in job order regardless of
worker count or completion order**, so serial and parallel runs are
bit-identical.

``workers=1`` (the default) never touches multiprocessing: jobs run
inline in submission order, which keeps library callers free of any
process-spawning side effects.  If a process pool cannot be created at
all (restricted environments), execution degrades to the same serial
path.

Failure handling is policy, not fate (:class:`ExecutionPolicy`):

* Workers run under a cooperative :class:`~repro.runtime.abort.AbortToken`
  — a per-job wall-clock deadline and/or total backtrack budget checked
  inside the engine loops.  Tripping one raises the typed
  :class:`~repro.errors.JobTimeoutError` / :class:`~repro.errors.AbortedError`.
* A crashed pool worker (a real OOM kill, or an injected
  ``chaos.crash``) poisons only the jobs in flight: the broken pool is
  rebuilt and every other job proceeds.
* ``on_error`` picks the degradation: ``"raise"`` (default — the first
  failure propagates, the historical behavior), ``"skip"`` (failed jobs
  yield ``None`` results and a ``timeout``/``failed``
  :class:`JobOutcome` in the manifest), or ``"retry"`` (failed jobs are
  re-attempted up to ``policy.max_attempts`` times with exponential
  backoff; deterministic failures retry under a perturbed seed; jobs
  still failing raise :class:`~repro.errors.JobRetriesExhaustedError`).

Every run produces a :class:`RunManifest` — one :class:`JobRecord` per
job with wall-clock time, attempt count, and a :class:`JobOutcome` —
so callers can report hit rates, failures, and where the time went.
"""

from __future__ import annotations

import enum
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..atpg.engine import AtpgResult, generate_tests
from ..circuit.netlist import Netlist
from ..errors import (
    ConfigError,
    JobFailure,
    JobRetriesExhaustedError,
    JobTimeoutError,
    WorkerCrashError,
)
from ..observability import (
    Tracer,
    get_tracer,
    phase_breakdown,
    register_counter,
    register_gauge,
    use_tracer,
)
from .abort import NULL_ABORT, AbortToken, use_abort
from .cache import AtpgResultCache, result_key
from .chaos import ChaosConfig, use_chaos
from .config import AtpgConfig
from .journal import RunJournal
from .policy import ExecutionPolicy, validate_on_error

EXECUTOR_JOBS = register_counter("executor.jobs", "ATPG jobs submitted")
EXECUTOR_EXECUTED = register_counter(
    "executor.executed", "ATPG jobs actually run (cache misses)"
)
EXECUTOR_TIMEOUTS = register_counter(
    "executor.timeouts", "job attempts that hit the deadline or budget"
)
EXECUTOR_CRASHES = register_counter(
    "executor.crashes", "job attempts lost to a dead worker process"
)
EXECUTOR_RETRIES = register_counter("executor.retries", "job retry attempts")
EXECUTOR_FAILURES = register_counter(
    "executor.failures", "jobs that exhausted every recovery path"
)
EXECUTOR_UTILIZATION = register_gauge(
    "executor.utilization",
    "busy worker-seconds / (workers x fan-out wall-clock) of the last parallel run",
)


@dataclass(frozen=True)
class AtpgJob:
    """One unit of ATPG work: a netlist under a specific configuration."""

    name: str
    netlist: Netlist
    config: AtpgConfig = AtpgConfig()


class JobOutcome(enum.Enum):
    """What ultimately happened to one job."""

    OK = "ok"
    CACHE_HIT = "cache_hit"  # cache or (on resume) journal hit
    RETRIED_OK = "retried_ok"  # succeeded after at least one failed attempt
    TIMEOUT = "timeout"  # deadline/budget tripped and no retry saved it
    FAILED = "failed"  # crashed/flaked/exhausted and no retry saved it

    @property
    def is_ok(self) -> bool:
        return self in (JobOutcome.OK, JobOutcome.CACHE_HIT, JobOutcome.RETRIED_OK)


@dataclass
class JobRecord:
    """What happened to one job: where it ran, what it cost, how it ended."""

    name: str
    circuit: str
    cache_hit: bool
    seconds: float
    pattern_count: int
    phases: Dict[str, float] = field(default_factory=dict)
    outcome: JobOutcome = JobOutcome.OK
    attempts: int = 0  # worker attempts consumed (0 for cache hits)
    error: Optional[str] = None  # final failure, as "Type: message"


@dataclass
class RunManifest:
    """Per-job accounting for one or more :func:`run_jobs` calls."""

    workers: int = 1
    records: List[JobRecord] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def executed(self) -> int:
        return self.job_count - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.job_count if self.records else 0.0

    @property
    def atpg_seconds(self) -> float:
        """Wall-clock spent in actual ATPG (cache hits cost ~nothing)."""
        return sum(r.seconds for r in self.records if not r.cache_hit)

    @property
    def outcome_counts(self) -> Dict[str, int]:
        """How many jobs ended in each :class:`JobOutcome` (zero-free)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.outcome.value] = counts.get(record.outcome.value, 0) + 1
        return counts

    @property
    def failed_jobs(self) -> List[JobRecord]:
        return [r for r in self.records if not r.outcome.is_ok]

    @property
    def retry_attempts(self) -> int:
        """Extra worker attempts beyond the first, over all jobs."""
        return sum(max(0, r.attempts - 1) for r in self.records)

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Traced seconds per engine phase, summed over executed jobs.

        Empty when no job ran under an active tracer — phase timing is
        observability data, only collected when asked for.
        """
        totals: Dict[str, float] = {}
        for record in self.records:
            for name, seconds in record.phases.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def extend(self, other: "RunManifest") -> None:
        self.records.extend(other.records)

    def summary(self) -> str:
        text = (
            f"{self.job_count} ATPG jobs: {self.executed} executed "
            f"(workers={self.workers}), {self.cache_hits} cache hits "
            f"({100 * self.hit_rate:.0f}%), {self.atpg_seconds:.2f}s ATPG time"
        )
        failed = self.failed_jobs
        if failed:
            timeouts = sum(1 for r in failed if r.outcome is JobOutcome.TIMEOUT)
            text += f"; {len(failed)} NOT ok ({timeouts} timeout)"
        retries = self.retry_attempts
        if retries:
            text += f"; {retries} retries"
        phases = self.phase_seconds
        if phases:
            breakdown = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1])
            )
            text += f"; phases: {breakdown}"
        return text


class _WorkerPayload(NamedTuple):
    """Everything one job attempt needs on the far side of a pickle."""

    netlist: Netlist
    config: AtpgConfig
    traced: bool
    deadline_seconds: Optional[float]
    backtrack_budget: Optional[int]
    chaos: Optional[ChaosConfig]
    name: str
    attempt: int
    # Fault-parallel fan-out inside the engine's verification phase.
    # Only ever > 1 when the round has a single payload (run inline in
    # the parent) — job-level and fault-level parallelism never compete
    # for the same cores, and no pool is spawned from a pool worker.
    workers: int = 1


class _AttemptResult(NamedTuple):
    """What one job attempt produced — success or a typed failure.

    Failures travel as values, not raised exceptions, so a failed
    attempt still delivers its partial trace and timing to the parent,
    and only :class:`~repro.errors.JobFailure` is policy; any other
    exception is a bug and propagates loudly.
    """

    error: Optional[JobFailure]
    result: Optional[AtpgResult]
    seconds: float
    export: Optional[Dict[str, Any]]


def _execute(payload: _WorkerPayload, in_pool: bool = False) -> _AttemptResult:
    """Worker entry point (module-level so it pickles).

    When tracing is requested the job runs under its *own* fresh
    :class:`Tracer` — in a pool worker the fork-inherited global would
    otherwise alias the parent's (useless to mutate in a child), and in
    the serial path a private tracer keeps span depths and merge
    semantics identical to the pool path.  The exported trace rides
    back with the result for the parent to merge — on failures too, so
    a timed-out job's spans (with their ``status`` attribute) are not
    lost.

    The abort token is armed *before* the chaos hook runs: an injected
    hang burns deadline exactly like a real one, and the engine's first
    cooperative check converts it into a timeout.
    """
    token = (
        AbortToken(payload.deadline_seconds, payload.backtrack_budget)
        if payload.deadline_seconds is not None
        or payload.backtrack_budget is not None
        else NULL_ABORT
    )
    tracer = Tracer() if payload.traced else None
    error: Optional[JobFailure] = None
    result: Optional[AtpgResult] = None
    start = time.perf_counter()
    try:
        with use_abort(token):
            if payload.chaos is not None:
                payload.chaos.on_job_start(payload.name, payload.attempt, in_pool)
            if tracer is not None:
                with use_tracer(tracer):
                    result = generate_tests(
                        payload.netlist,
                        config=payload.config,
                        workers=payload.workers,
                    )
            else:
                result = generate_tests(
                    payload.netlist, config=payload.config, workers=payload.workers
                )
    except JobFailure as exc:
        error = exc
    seconds = time.perf_counter() - start
    return _AttemptResult(
        error, result, seconds, tracer.export() if tracer is not None else None
    )


def run_jobs(
    jobs: Sequence[AtpgJob],
    workers: int = 1,
    cache: Optional[AtpgResultCache] = None,
    policy: Optional[ExecutionPolicy] = None,
    on_error: str = "raise",
    journal: Optional[RunJournal] = None,
) -> Tuple[List[Optional[AtpgResult]], RunManifest]:
    """Run every job; results come back aligned with the input order.

    Journal hits (on resume) and cache hits are resolved up front and
    only the misses are fanned out; fresh results are journaled and
    stored back into the cache in job order.  Failed jobs leave a
    ``None`` in their result slot — which only a caller opting into
    ``on_error="skip"`` ever observes, since ``"raise"`` propagates the
    first failure and ``"retry"`` raises
    :class:`~repro.errors.JobRetriesExhaustedError` rather than return
    a partial batch.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    validate_on_error(on_error)
    policy = policy if policy is not None else ExecutionPolicy()
    tracer = get_tracer()
    manifest = RunManifest(workers=workers)
    results: List[Optional[AtpgResult]] = [None] * len(jobs)
    timings: List[float] = [0.0] * len(jobs)
    hits: List[bool] = [False] * len(jobs)
    phases: List[Dict[str, float]] = [{} for _ in jobs]
    attempts: List[int] = [0] * len(jobs)
    errors: List[Optional[JobFailure]] = [None] * len(jobs)
    configs: List[AtpgConfig] = [job.config for job in jobs]
    keys: List[str] = [result_key(job.netlist, job.config) for job in jobs]

    pending: List[int] = []
    for index, job in enumerate(jobs):
        recalled = journal.get(keys[index]) if journal is not None else None
        if recalled is None and cache is not None:
            recalled = cache.get(job.netlist, job.config)
        if recalled is not None:
            results[index] = recalled
            hits[index] = True
        else:
            pending.append(index)

    if pending:
        with use_chaos(policy.chaos):
            _run_resilient(
                jobs, pending, workers, policy, on_error, tracer,
                results, timings, attempts, errors, configs, phases,
            )
            # Store-back happens inside the chaos scope so injected
            # cache-file corruption (corrupt_stores) lands on these
            # writes.
            for index in pending:
                result = results[index]
                if result is None:
                    continue
                if journal is not None:
                    journal.record(
                        keys[index], jobs[index].name, configs[index], result
                    )
                if cache is not None:
                    # Content-addressed: keyed by the config the result
                    # was actually produced with (perturbed on timeout
                    # retries).
                    cache.put(jobs[index].netlist, configs[index], result)

    if tracer.enabled and jobs:
        tracer.count(EXECUTOR_JOBS, len(jobs))

    first_error: Optional[Tuple[int, JobFailure]] = None
    for index, job in enumerate(jobs):
        result = results[index]
        error = errors[index]
        if result is not None:
            if hits[index]:
                outcome = JobOutcome.CACHE_HIT
            elif attempts[index] > 1:
                outcome = JobOutcome.RETRIED_OK
            else:
                outcome = JobOutcome.OK
        elif isinstance(error, JobTimeoutError):
            outcome = JobOutcome.TIMEOUT
        else:
            outcome = JobOutcome.FAILED
        if error is not None and first_error is None:
            first_error = (index, error)
        manifest.records.append(
            JobRecord(
                name=job.name,
                circuit=result.circuit_name if result is not None else job.netlist.name,
                cache_hit=hits[index],
                seconds=timings[index],
                pattern_count=result.pattern_count if result is not None else 0,
                phases=phases[index],
                outcome=outcome,
                attempts=attempts[index],
                error=f"{type(error).__name__}: {error}" if error is not None else None,
            )
        )
        if journal is not None:
            journal.note(
                name=job.name,
                circuit=manifest.records[-1].circuit,
                key=keys[index],
                pattern_count=manifest.records[-1].pattern_count
                if result is not None
                else None,
                status="ok" if result is not None else outcome.value,
            )

    if journal is not None:
        journal.write_manifest()

    if first_error is not None:
        index, error = first_error
        if tracer.enabled:
            tracer.count(EXECUTOR_FAILURES, sum(1 for e in errors if e is not None))
        if on_error == "raise":
            raise error
        if on_error == "retry":
            raise JobRetriesExhaustedError(
                f"job {jobs[index].name!r} still failing after "
                f"{attempts[index]} attempts: {type(error).__name__}: {error}"
            ) from error
        # on_error == "skip": the manifest carries the failures.

    return list(results), manifest


def _run_resilient(
    jobs: Sequence[AtpgJob],
    pending: List[int],
    workers: int,
    policy: ExecutionPolicy,
    on_error: str,
    tracer,
    results: List[Optional[AtpgResult]],
    timings: List[float],
    attempts: List[int],
    errors: List[Optional[JobFailure]],
    configs: List[AtpgConfig],
    phases: List[Dict[str, float]],
) -> None:
    """Retry-round engine: run pending jobs until done or out of policy.

    Each round fans the still-active jobs out (serially or across a
    fresh pool — fresh so a round that broke the pool cannot poison the
    next), classifies the failures, and decides per job whether another
    attempt is allowed.  Mutates the by-index accounting lists in
    place.
    """
    active = list(pending)
    retry_round = 0
    while active:
        if retry_round > 0:
            backoff = policy.backoff_for_round(retry_round)
            if backoff > 0:
                time.sleep(backoff)
        payloads = [
            _WorkerPayload(
                netlist=jobs[i].netlist,
                config=configs[i],
                traced=tracer.enabled,
                deadline_seconds=policy.deadline_seconds,
                backtrack_budget=policy.backtrack_budget,
                chaos=policy.chaos if policy.chaos.enabled else None,
                name=jobs[i].name,
                attempt=attempts[i],
                # A lone job cannot use job-level fan-out; hand the
                # worker budget to the engine's fault-parallel verify.
                workers=workers if len(active) == 1 else 1,
            )
            for i in active
        ]
        fan_out_start = time.perf_counter()
        outcomes = _run_round(payloads, workers)
        fan_out_wall = time.perf_counter() - fan_out_start

        if tracer.enabled:
            executed = sum(1 for o in outcomes if o.error is None)
            if executed:
                tracer.count(EXECUTOR_EXECUTED, executed)
            if workers > 1 and fan_out_wall > 0 and len(payloads) > 1:
                busy = sum(o.seconds for o in outcomes)
                effective = min(workers, len(payloads))
                tracer.gauge(EXECUTOR_UTILIZATION, busy / (effective * fan_out_wall))

        next_active: List[int] = []
        for index, outcome in zip(active, outcomes):
            attempts[index] += 1
            timings[index] += outcome.seconds
            if outcome.export is not None:
                tracer.merge(outcome.export, job=jobs[index].name)
                phases[index] = phase_breakdown(outcome.export)
            if outcome.error is None:
                results[index] = outcome.result
                errors[index] = None
                continue
            error = outcome.error
            if tracer.enabled:
                if isinstance(error, JobTimeoutError):
                    tracer.count(EXECUTOR_TIMEOUTS)
                elif isinstance(error, WorkerCrashError):
                    tracer.count(EXECUTOR_CRASHES)
            errors[index] = error
            if on_error == "retry" and attempts[index] < policy.max_attempts:
                configs[index] = policy.retry_config(
                    jobs[index].config, attempts[index], error
                )
                if tracer.enabled:
                    tracer.count(EXECUTOR_RETRIES)
                next_active.append(index)
        active = next_active
        retry_round += 1


def _run_round(
    payloads: List[_WorkerPayload], workers: int
) -> List[_AttemptResult]:
    """Execute one round of payloads serially or across a process pool.

    A worker that dies mid-job breaks the whole
    ``concurrent.futures`` pool; every payload whose future the break
    swallowed — the crasher *and* any innocents queued behind it — is
    reported as a :class:`~repro.errors.WorkerCrashError` attempt so
    the retry policy can re-run it in the next round's fresh pool.
    """
    if workers == 1 or len(payloads) == 1:
        return [_execute(payload) for payload in payloads]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            futures = [pool.submit(_execute, payload, True) for payload in payloads]
            outcomes: List[_AttemptResult] = []
            for payload, future in zip(payloads, futures):
                try:
                    outcomes.append(future.result())
                except BrokenExecutor:
                    outcomes.append(
                        _AttemptResult(
                            WorkerCrashError(
                                f"worker process died while running "
                                f"{payload.name!r} (attempt {payload.attempt})"
                            ),
                            None,
                            0.0,
                            None,
                        )
                    )
            return outcomes
    except (OSError, PermissionError):
        # No process pool available (sandboxed/limited environments):
        # same results, just serial.
        return [_execute(payload) for payload in payloads]
