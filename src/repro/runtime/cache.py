"""Content-addressed cache of ATPG results.

Per-core ATPG is the expensive primitive behind every table and figure
— and, as the modularity argument itself says, a core's test set
depends on nothing but the core.  So results are cached under a key
derived purely from content: a stable hash of the netlist structure
plus the :class:`~repro.runtime.config.AtpgConfig` fingerprint.  There
is no invalidation problem — a changed netlist or config *is* a
different key.

Two tiers: an in-memory LRU (term of this process) and JSON files on
disk (via the :mod:`repro.core.serialization` converters), one file per
key, so warm reruns of an experiment skip ATPG entirely.  The directory
defaults to ``~/.cache/repro/atpg`` and can be overridden with the
``REPRO_CACHE_DIR`` environment variable or per instance.  Corrupt or
truncated files — including files whose recorded key disagrees with
their filename — are treated as misses: the offending file is moved
aside into a ``quarantine/`` subdirectory (for post-mortems) and the
result is recomputed, so one bad byte never aborts a campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..atpg.engine import AtpgResult
from ..circuit.netlist import Netlist
from ..core.serialization import (
    SCHEMA_VERSION,
    atpg_result_from_dict,
    atpg_result_to_dict,
)
from ..errors import CacheCorruptionError, ConfigError
from ..observability import get_tracer, register_counter
from .chaos import maybe_corrupt_store
from .config import AtpgConfig

CACHE_ENV_VAR = "REPRO_CACHE_DIR"

CACHE_HITS = register_counter("cache.hits", "ATPG result cache hits")
CACHE_MISSES = register_counter("cache.misses", "ATPG result cache misses")
CACHE_STORES = register_counter("cache.stores", "ATPG results written to disk")
CACHE_QUARANTINED = register_counter(
    "cache.quarantined", "corrupt cache entries moved to quarantine"
)

QUARANTINE_DIR = "quarantine"


def quarantine_file(path: Path) -> Optional[Path]:
    """Move a corrupt store file into a sibling ``quarantine/`` directory.

    Keeps the evidence for post-mortems while freeing the key for a
    clean recompute.  Falls back to deletion (and then to ignoring the
    file) when the filesystem refuses the move; returns the quarantined
    path, or None when the file is simply gone.
    """
    target_dir = path.parent / QUARANTINE_DIR
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        path.replace(target)
        return target
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/atpg``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "atpg"


def netlist_fingerprint(netlist: Netlist) -> str:
    """A stable content hash of a netlist's full structure.

    Covers name, inputs, outputs, flip-flops and gates in declaration
    order — everything that determines the ATPG outcome (pattern
    assignments are keyed by compiled net id, which is itself a
    function of this structure).
    """
    hasher = hashlib.sha256()

    def feed(*parts: str) -> None:
        for part in parts:
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")

    feed("netlist", netlist.name)
    feed("inputs", *netlist.inputs)
    feed("outputs", *netlist.outputs)
    for ff in netlist.flip_flops:
        feed("ff", ff.output, ff.data)
    for gate in netlist.gates:
        feed("gate", gate.gate_type.value, gate.output, *gate.inputs)
    return hasher.hexdigest()


def result_key(netlist: Netlist, config: AtpgConfig) -> str:
    """The cache key of one (netlist, config) ATPG run."""
    hasher = hashlib.sha256()
    hasher.update(netlist_fingerprint(netlist).encode("ascii"))
    hasher.update(config.fingerprint().encode("ascii"))
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class AtpgResultCache:
    """Two-tier (memory LRU + JSON-on-disk) cache of ATPG results.

    ``directory=None`` keeps the cache purely in memory — useful for
    sharing results within one process without touching the filesystem.
    """

    directory: Optional[Union[str, Path]] = None
    memory_slots: int = 256
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.directory is not None:
            self.directory = Path(self.directory)
        if self.memory_slots < 1:
            raise ConfigError(f"memory_slots must be >= 1, got {self.memory_slots}")
        self._memory: "OrderedDict[str, AtpgResult]" = OrderedDict()

    # -- lookup ---------------------------------------------------------------

    def get(self, netlist: Netlist, config: AtpgConfig) -> Optional[AtpgResult]:
        """The cached result of this run, or None on a miss."""
        key = result_key(netlist, config)
        result = self._memory.get(key)
        if result is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            get_tracer().count(CACHE_HITS)
            return result
        result = self._read_disk(key)
        if result is not None:
            self._remember(key, result)
            self.stats.hits += 1
            get_tracer().count(CACHE_HITS)
            return result
        self.stats.misses += 1
        get_tracer().count(CACHE_MISSES)
        return None

    def put(self, netlist: Netlist, config: AtpgConfig, result: AtpgResult) -> str:
        """Store one result under its content key; returns the key."""
        key = result_key(netlist, config)
        self._remember(key, result)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": SCHEMA_VERSION,
                "key": key,
                "config": config.to_dict(),
                "result": atpg_result_to_dict(result),
            }
            path = self._path(key)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(path)  # atomic: a reader never sees a half-written file
            self.stats.stores += 1
            get_tracer().count(CACHE_STORES)
            maybe_corrupt_store(path)  # chaos hook; no-op unless injected
        return key

    def clear(self) -> None:
        """Drop the memory tier and delete every disk entry."""
        self._memory.clear()
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        """Number of disk entries (memory-only caches count the LRU)."""
        if self.directory is not None and self.directory.exists():
            return sum(1 for _ in self.directory.glob("*.json"))
        return len(self._memory)

    # -- internals ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _remember(self, key: str, result: AtpgResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    def _read_disk(self, key: str) -> Optional[AtpgResult]:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != key:
                raise CacheCorruptionError(
                    f"cache entry {path.name} claims key "
                    f"{payload.get('key')!r}, expected {key!r}"
                )
            return atpg_result_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt/truncated/mis-keyed entry: quarantine it and report
            # a miss so the result is recomputed — never abort the run.
            self.stats.corrupt += 1
            self.stats.quarantined += 1
            get_tracer().count(CACHE_QUARANTINED)
            quarantine_file(path)
            return None
