"""Execution policy: how hard to try, how long to wait, what to inject.

:class:`ExecutionPolicy` is deliberately *not* part of a run's identity
(:class:`~repro.runtime.config.AtpgConfig` is): a deadline, a retry
count, or an injected fault never changes what a *successful* run
computes, so none of these fields enter cache keys or fingerprints —
results cached under lenient policies stay valid under strict ones and
vice versa.  The one exception is documented on
:meth:`retry_config`: a retry after a timeout or exhausted budget
perturbs the seed (an identical retry would die identically), and the
result is then cached under the perturbed config it was actually
produced with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError, JobFailure
from .chaos import ChaosConfig
from .config import AtpgConfig

#: Seed offset applied per retry of a deterministic (timeout/budget)
#: failure.  Large and odd so perturbed seed sequences of neighboring
#: jobs (seed, seed+1, ...) never collide.
SEED_PERTURBATION = 0x9E3779B1

ON_ERROR_MODES = ("raise", "skip", "retry")


@dataclass(frozen=True)
class ExecutionPolicy:
    """Resilience knobs for one :func:`~repro.runtime.executor.run_jobs` call.

    ``deadline_seconds`` / ``backtrack_budget`` arm a per-job
    :class:`~repro.runtime.abort.AbortToken` in the worker.
    ``max_attempts`` bounds total tries per job under
    ``on_error="retry"`` (1 means no retries).  ``backoff_seconds``
    sleeps between retry rounds, doubling each round (exponential
    backoff); zero disables the sleep entirely, which is what tests
    want.  ``chaos`` injects faults (see :mod:`repro.runtime.chaos`).
    """

    deadline_seconds: Optional[float] = None
    backtrack_budget: Optional[int] = None
    max_attempts: int = 3
    backoff_seconds: float = 0.0
    chaos: ChaosConfig = field(default_factory=ChaosConfig)

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.backtrack_budget is not None and self.backtrack_budget < 1:
            raise ConfigError(
                f"backtrack_budget must be >= 1, got {self.backtrack_budget}"
            )
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0:
            raise ConfigError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )

    def backoff_for_round(self, retry_round: int) -> float:
        """Sleep before retry round ``retry_round`` (1-based)."""
        if self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * (2 ** (retry_round - 1))

    def retry_config(self, config: AtpgConfig, attempt: int, error: JobFailure) -> AtpgConfig:
        """The config for retry attempt ``attempt`` (1-based) after ``error``.

        Transient failures (crashes, flakes) retry with the *identical*
        config — the reattempt is bit-identical to what the first try
        would have produced.  Deterministic failures (timeout, budget)
        retry under a perturbed seed: the same seed would walk the same
        doomed search, while a reseeded random phase and PODEM ordering
        often finish comfortably.  The perturbed config is the run's
        true identity and is what the result gets cached under.
        """
        if error.retry_with_new_seed:
            return config.with_seed(config.seed + SEED_PERTURBATION * attempt)
        return config


def validate_on_error(on_error: str) -> str:
    if on_error not in ON_ERROR_MODES:
        raise ConfigError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    return on_error
