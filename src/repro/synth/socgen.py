"""Assembly of the paper's SOC1 and SOC2 experiment designs.

Figures 4 and 5 of the paper define two SOCs built from ISCAS'89 cores.
The inter-core wiring below is reconstructed from the figures' edge
widths, which tie out exactly: SOC1's 51 chip inputs split 35/16 over
s713 and s953, the three s1423 instances consume 17 nets each from the
upstream cores' 46+5 outputs, and 5+5 outputs drive the 10 chip pins;
SOC2's 14 chip inputs feed s15850, whose 87 outputs split 31/35/16/5
over s13207, s5378, s953 and the chip pins, with all remaining core
outputs (121+49+23) exposed for a 198-pin output total.

A sparse layer of top-level inverters on the inter-core nets plays the
role of the paper's top-level glue logic (tested stand-alone with a
couple of patterns, 0 scan cells — Tables 1–2's "Core 0" rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .profiles import ISCAS89_PROFILES, CircuitProfile

# One top-level inverter every GLUE_STRIDE inter-core connections.
GLUE_STRIDE = 6


@dataclass(frozen=True)
class Wire:
    """One inter-core (or chip) connection in an SOC design."""

    src_instance: str  # core instance name, or "chip" for a chip input
    src_index: int  # output index of the source (input index for "chip")
    dst_instance: str  # core instance name, or "chip" for a chip output
    dst_index: int  # input index of the sink (output index for "chip")
    inverted: bool = False  # routed through a top-level glue inverter


@dataclass
class SocDesign:
    """A fully elaborated SOC experiment design."""

    name: str
    chip_inputs: int
    chip_outputs: int
    instances: List[Tuple[str, str]]  # (instance name, profile name), topo order
    wires: List[Wire]
    core_netlists: Dict[str, Netlist] = field(default_factory=dict)
    monolithic: Optional[Netlist] = None
    glue: Optional[Netlist] = None

    def profile_of(self, instance: str) -> CircuitProfile:
        for name, profile_name in self.instances:
            if name == instance:
                return ISCAS89_PROFILES[profile_name]
        raise KeyError(f"no instance {instance!r} in design {self.name!r}")


def _wire_range(
    wires: List[Wire],
    src: str,
    src_start: int,
    dst: str,
    dst_start: int,
    count: int,
) -> None:
    """Append ``count`` parallel wires; glue inverters every GLUE_STRIDE.

    Chip-adjacent wires are never inverted — only inter-core nets carry
    top-level glue, matching a "Core 0" that sits between cores.
    """
    for k in range(count):
        inter_core = src != "chip" and dst != "chip"
        wires.append(
            Wire(
                src_instance=src,
                src_index=src_start + k,
                dst_instance=dst,
                dst_index=dst_start + k,
                inverted=inter_core and (len(wires) % GLUE_STRIDE == 0),
            )
        )


def soc1_design() -> SocDesign:
    """SOC1 of Figure 4: s713, s953 and three s1423 instances."""
    wires: List[Wire] = []
    _wire_range(wires, "chip", 0, "Core1", 0, 35)
    _wire_range(wires, "chip", 35, "Core2", 0, 16)
    _wire_range(wires, "Core1", 0, "Core3", 0, 17)
    _wire_range(wires, "Core1", 17, "Core4", 0, 6)
    _wire_range(wires, "Core2", 0, "Core4", 6, 11)
    _wire_range(wires, "Core2", 11, "Core5", 0, 12)
    _wire_range(wires, "Core3", 0, "Core5", 12, 5)
    _wire_range(wires, "Core4", 0, "chip", 0, 5)
    _wire_range(wires, "Core5", 0, "chip", 5, 5)
    return SocDesign(
        name="SOC1",
        chip_inputs=51,
        chip_outputs=10,
        instances=[
            ("Core1", "s713"),
            ("Core2", "s953"),
            ("Core3", "s1423"),
            ("Core4", "s1423"),
            ("Core5", "s1423"),
        ],
        wires=wires,
    )


def soc2_design() -> SocDesign:
    """SOC2 of Figure 5: s953, s5378, s13207 and s15850."""
    wires: List[Wire] = []
    _wire_range(wires, "chip", 0, "Core4", 0, 14)
    _wire_range(wires, "Core4", 0, "Core3", 0, 31)
    _wire_range(wires, "Core4", 31, "Core2", 0, 35)
    _wire_range(wires, "Core4", 66, "Core1", 0, 16)
    _wire_range(wires, "Core4", 82, "chip", 0, 5)
    _wire_range(wires, "Core3", 0, "chip", 5, 121)
    _wire_range(wires, "Core2", 0, "chip", 126, 49)
    _wire_range(wires, "Core1", 0, "chip", 175, 23)
    return SocDesign(
        name="SOC2",
        chip_inputs=14,
        chip_outputs=198,
        instances=[
            ("Core4", "s15850"),
            ("Core3", "s13207"),
            ("Core2", "s5378"),
            ("Core1", "s953"),
        ],
        wires=wires,
    )


def elaborate(design: SocDesign, seed: int = 0) -> SocDesign:
    """Generate core netlists and build the monolithic and glue netlists.

    Identical profiles share one generated netlist (same seed), which is
    the paper's test-reuse situation: SOC1's three s1423 instances carry
    the same stand-alone test.
    """
    generated: Dict[str, Netlist] = {}
    for instance, profile_name in design.instances:
        if profile_name not in generated:
            profile = ISCAS89_PROFILES[profile_name]
            generated[profile_name] = profile.generate(profile_name, seed=seed)
        design.core_netlists[instance] = generated[profile_name]
    design.monolithic = _build_monolithic(design)
    design.glue = _build_glue(design)
    return design


def _build_monolithic(design: SocDesign) -> Netlist:
    """Flatten cores plus wiring into the paper's monolithic design."""
    flat = Netlist(f"{design.name}_mono")
    for k in range(design.chip_inputs):
        flat.add_input(f"pin_i{k}")

    # Resolve the driving net of each core input / chip output.
    drives: Dict[Tuple[str, int], Wire] = {}
    for wire in design.wires:
        key = (wire.dst_instance, wire.dst_index)
        if key in drives:
            raise ValueError(f"{design.name}: {key} driven twice")
        drives[key] = wire

    rename_maps: Dict[str, Dict[str, str]] = {}

    def source_net(wire: Wire) -> str:
        if wire.src_instance == "chip":
            net = f"pin_i{wire.src_index}"
        else:
            src_netlist = design.core_netlists[wire.src_instance]
            out_net = src_netlist.outputs[wire.src_index]
            net = rename_maps[wire.src_instance][out_net]
        if wire.inverted:
            glue_net = (
                f"glue_{wire.dst_instance}_{wire.dst_index}"
                if wire.dst_instance != "chip"
                else f"glue_chip_{wire.dst_index}"
            )
            flat.add_gate(GateType.NOT, glue_net, [net])
            return glue_net
        return net

    for instance, _profile in design.instances:
        core = design.core_netlists[instance]
        connections = {}
        for index, input_net in enumerate(core.inputs):
            wire = drives.get((instance, index))
            if wire is not None:
                connections[input_net] = source_net(wire)
        rename_maps[instance] = flat.merge(core, prefix=f"{instance}_", connections=connections)

    for index in range(design.chip_outputs):
        wire = drives.get(("chip", index))
        if wire is None:
            raise ValueError(f"{design.name}: chip output {index} undriven")
        flat.mark_output(source_net(wire))
    flat.validate()
    return flat


def _build_glue(design: SocDesign) -> Netlist:
    """The top-level glue logic (the inverters) as a stand-alone netlist."""
    glue = Netlist(f"{design.name}_top")
    count = 0
    for wire in design.wires:
        if wire.inverted:
            in_net = f"t{count}_in"
            out_net = f"t{count}_out"
            glue.add_input(in_net)
            glue.add_gate(GateType.NOT, out_net, [in_net])
            glue.mark_output(out_net)
            count += 1
    glue.validate()
    return glue
