"""Population-scale synthetic SOC sampling, profile-matched.

The paper correlates TDV reduction with pattern-count variation over
its ten benchmark SOCs (Section 5.2, Table 4) — a suggestive but tiny
sample.  This module defines the large-N version: a latin-hypercube
population of synthetic SOCs whose *per-core shapes* stay inside the
envelope of the ISCAS'89 profiles the rest of :mod:`repro.synth` is
calibrated against (scan sizes spanning s298..s35932's flip-flop
range, wrapper I/O from the benchmark terminal counts up to heavily
padded wrappers), while pattern statistics sweep the whole regime from
g12710-flat to a586710-skewed.

Everything here is declarative data plus one module-level evaluator,
so the sweep engine can fan it across workers and journal it at shard
granularity; each SOC draws its cores from hash-derived per-core seed
streams (``core_seed_streams=True``), making every point reproducible
in isolation.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.analysis import analyze
from ..core.sweep import synthetic_soc
from ..sweeps import Axis, SweepPointSpec, SweepSpec
from .profiles import ISCAS89_PROFILES

#: Hard bounds on cores per SOC: the ITC'02 SOCs the paper studies
#: span roughly this range once hierarchy is flattened.
CORE_COUNT_RANGE = (4, 24)

#: Mean test-set size range per core (patterns); brackets the per-core
#: pattern counts measured for SOC1/SOC2 and reported for ITC'02.
MEAN_PATTERNS_RANGE = (50, 1000)

#: Pattern-count spread (lognormal sigma): 0 is the g12710 regime
#: (identical cores), 2.5 is far beyond a586710's skew.
PATTERN_SPREAD_RANGE = (0.0, 2.5)

#: How far beyond the largest benchmark terminal count a padded
#: wrapper may go (GPIO-heavy cores wrap far more terminals than an
#: ISCAS'89 netlist exposes).
IO_PAD_FACTOR = 4


def profile_scan_bounds() -> Tuple[int, int]:
    """Per-core scan-cell bounds: the ISCAS'89 flip-flop envelope."""
    counts = [p.flip_flops for p in ISCAS89_PROFILES.values()]
    return min(counts), max(counts)


def profile_io_bounds() -> Tuple[int, int]:
    """Per-core wrapper-terminal bounds from the profile envelope.

    The lower bound is the leanest benchmark interface; the upper bound
    allows :data:`IO_PAD_FACTOR` x the widest one, covering the padded
    wrappers where g12710-style ExTest overhead starts to dominate.
    """
    totals = [p.inputs + p.outputs for p in ISCAS89_PROFILES.values()]
    return min(totals), IO_PAD_FACTOR * max(totals)


def population_spec(samples: int, seed: int = 0) -> SweepSpec:
    """A latin-hypercube population of ``samples`` profile-matched SOCs.

    Latin sampling stratifies every axis into ``samples`` bins, so even
    a small smoke population covers the whole spread range — the axis
    the correlation claim lives on.
    """
    scan_lo, scan_hi = profile_scan_bounds()
    io_lo, io_hi = profile_io_bounds()
    return SweepSpec(
        name="population",
        sampling="latin",
        samples=samples,
        seed=seed,
        axes=(
            Axis.integers("core_count", *CORE_COUNT_RANGE),
            Axis.log_uniform("mean_patterns", *MEAN_PATTERNS_RANGE),
            Axis.uniform("pattern_spread", *PATTERN_SPREAD_RANGE),
            Axis.log_uniform("scan_cells_per_core", scan_lo, scan_hi),
            Axis.log_uniform("io_per_core", io_lo, io_hi),
        ),
    )


def evaluate_population_point(point: SweepPointSpec) -> Dict[str, Any]:
    """Build and analyze one sampled SOC (module-level: pool-picklable).

    The record carries the sampled design knobs plus the analysis
    outcome; ``reduction_pct`` follows the paper's sign convention
    (positive = modular testing reduced TDV).
    """
    params = point.params
    soc = synthetic_soc(
        name=f"pop_{point.index}",
        core_count=int(params["core_count"]),
        mean_patterns=max(1, round(params["mean_patterns"])),
        pattern_spread=params["pattern_spread"],
        scan_cells_per_core=max(1, round(params["scan_cells_per_core"])),
        io_per_core=max(2, round(params["io_per_core"])),
        seed=point.seed,
        core_seed_streams=True,
    )
    analysis = analyze(soc)
    summary = analysis.summary
    return {
        "index": point.index,
        "core_count": int(params["core_count"]),
        "mean_patterns": max(1, round(params["mean_patterns"])),
        "pattern_spread": params["pattern_spread"],
        "scan_cells_per_core": max(1, round(params["scan_cells_per_core"])),
        "io_per_core": max(2, round(params["io_per_core"])),
        "nsd": analysis.pattern_variation,
        "tdv_monolithic": summary.tdv_monolithic,
        "tdv_modular": summary.tdv_modular,
        "reduction_pct": -100.0 * summary.modular_change_fraction,
        "modular_wins": summary.tdv_modular < summary.tdv_monolithic,
    }
