"""ISCAS'89 circuit profiles, as used by the paper's Tables 1 and 2.

Terminal and flip-flop counts are the ones the paper reports per core
(Tables 1–2).  Gate budgets are scaled below the historical gate counts
of the largest circuits to keep the pure-Python ATPG tractable; the
scaling is testability-neutral for the TDV analysis, which consumes
only I/O counts, scan-cell counts, and the resulting pattern-count
*statistics* (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .generator import GeneratorSpec, generate_circuit
from ..circuit.netlist import Netlist


@dataclass(frozen=True)
class CircuitProfile:
    """Shape of one ISCAS'89 benchmark circuit.

    Cone-width bounds are the tuning knob for testing difficulty: wide
    cones need many patterns per cone (every input pin fault wants its
    own sensitizing pattern), narrow cones few.  They are calibrated so
    the *ordering* of per-core pattern counts matches the paper's
    Tables 1-2 — s953 the hardest of SOC1's cores, s13207 the hardest
    of SOC2's, the scan-heavy s1423 among the easiest.
    """

    name: str
    inputs: int
    outputs: int
    flip_flops: int
    historical_gates: int  # gate count of the real netlist, for reference
    target_gates: int  # generator budget (scaled for tractability)
    min_cone_width: int = 2
    max_cone_width: int = 16
    overlap: float = 0.5
    xor_fraction: float = 0.1

    def spec(self, instance_name: str, seed: int = 0) -> GeneratorSpec:
        return GeneratorSpec(
            name=instance_name,
            inputs=self.inputs,
            outputs=self.outputs,
            flip_flops=self.flip_flops,
            target_gates=self.target_gates,
            min_cone_width=self.min_cone_width,
            max_cone_width=self.max_cone_width,
            overlap=self.overlap,
            xor_fraction=self.xor_fraction,
            seed=seed,
        )

    def generate(self, instance_name: str, seed: int = 0) -> Netlist:
        return generate_circuit(self.spec(instance_name, seed=seed))


ISCAS89_PROFILES: Dict[str, CircuitProfile] = {
    # I/O and flip-flop counts as reported in the paper's Tables 1-2.
    "s713": CircuitProfile("s713", 35, 23, 19, 393, 360,
                           min_cone_width=2, max_cone_width=6,
                           overlap=0.55, xor_fraction=0.20),
    "s953": CircuitProfile("s953", 16, 23, 29, 395, 450,
                           min_cone_width=6, max_cone_width=12,
                           overlap=0.70, xor_fraction=0.25),
    "s1423": CircuitProfile("s1423", 17, 5, 74, 657, 620,
                            min_cone_width=2, max_cone_width=5,
                            overlap=0.50, xor_fraction=0.15),
    "s5378": CircuitProfile("s5378", 35, 49, 179, 2779, 1300,
                            min_cone_width=5, max_cone_width=12,
                            overlap=0.45, xor_fraction=0.15),
    "s13207": CircuitProfile("s13207", 31, 121, 669, 7951, 2200,
                             min_cone_width=7, max_cone_width=16,
                             overlap=0.35, xor_fraction=0.10),
    "s15850": CircuitProfile("s15850", 14, 87, 597, 9772, 2000,
                             min_cone_width=6, max_cone_width=14,
                             overlap=0.35, xor_fraction=0.10),
}


def profile(name: str) -> CircuitProfile:
    try:
        return ISCAS89_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown ISCAS'89 profile {name!r}; available: "
            f"{sorted(ISCAS89_PROFILES)}"
        ) from None
