"""Deterministic cone-structured circuit generation.

The paper's Tables 1–2 were produced by running ATALANTA on real
ISCAS'89 netlists.  Those netlists are not redistributable here, so
this generator synthesizes circuits with the same *testability-relevant
shape*: matching (pseudo-)I/O and flip-flop counts, one logic cone per
output/flip-flop whose width, depth and input overlap are controlled —
the exact quantities Section 3 identifies as driving per-cone pattern
counts and compaction conflicts.  Everything is seeded and
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist

_TREE_GATES = (
    GateType.NAND, GateType.NOR, GateType.AND, GateType.OR,
    GateType.NAND, GateType.NOR,  # NAND/NOR-rich, like standard-cell logic
)


@dataclass(frozen=True)
class GeneratorSpec:
    """Shape parameters for one synthetic circuit.

    ``overlap`` in [0, 1] controls how much neighbouring cones share
    inputs: 0 gives (nearly) disjoint cones — the Figure 1(a) regime —
    and 1 lets every cone draw from the full input set, maximizing
    compaction conflicts.  ``xor_fraction`` seeds hard-to-test parity
    logic into some cones, widening the per-cone pattern-count spread.
    """

    name: str
    inputs: int
    outputs: int
    flip_flops: int = 0
    target_gates: int = 200
    min_cone_width: int = 2
    max_cone_width: int = 16
    overlap: float = 0.5
    xor_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.inputs < 1:
            raise ValueError("need at least one input")
        if self.outputs < 1 and self.flip_flops < 1:
            raise ValueError("need at least one output or flip-flop")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if not 0.0 <= self.xor_fraction <= 1.0:
            raise ValueError(f"xor_fraction must be in [0, 1], got {self.xor_fraction}")
        if self.min_cone_width < 1 or self.max_cone_width < self.min_cone_width:
            raise ValueError("invalid cone width bounds")


def generate_circuit(spec: GeneratorSpec) -> Netlist:
    """Build a validated netlist matching ``spec``."""
    rng = random.Random(spec.seed)
    netlist = Netlist(spec.name)

    input_nets = [f"{spec.name}_i{k}" for k in range(spec.inputs)]
    for net in input_nets:
        netlist.add_input(net)
    ff_out_nets = [f"{spec.name}_ff{k}" for k in range(spec.flip_flops)]
    sources = input_nets + ff_out_nets

    cone_count = spec.outputs + spec.flip_flops
    widths = _cone_widths(spec, cone_count, rng)
    support_sets = _cone_supports(spec, widths, sources, rng)
    _sweep_unused_sources(support_sets, sources, rng)

    gate_counter = [0]
    roots: List[str] = []
    for cone_index, support in enumerate(support_sets):
        use_xor = rng.random() < spec.xor_fraction
        roots.append(
            _build_cone_tree(netlist, spec.name, support, rng, gate_counter, use_xor)
        )

    for k in range(spec.outputs):
        netlist.mark_output(roots[k])
    for k, ff_net in enumerate(ff_out_nets):
        netlist.add_flip_flop(ff_net, roots[spec.outputs + k])
    netlist.validate()
    return netlist


def _cone_widths(
    spec: GeneratorSpec, cone_count: int, rng: random.Random
) -> List[int]:
    """Cone widths drawn to roughly meet the gate budget.

    A cone of width ``w`` costs about ``w - 1`` tree gates plus ~15%
    inverters, so the mean width is solved from the budget and widths
    are drawn lognormally around it — giving the wide spread of easy
    and hard cones the paper's argument needs.
    """
    budget_per_cone = max(1.0, spec.target_gates / (1.15 * cone_count))
    mean_width = min(float(spec.max_cone_width), max(float(spec.min_cone_width), budget_per_cone + 1.0))
    widths = []
    for _ in range(cone_count):
        width = round(mean_width * rng.lognormvariate(0.0, 0.45))
        widths.append(min(spec.max_cone_width, max(spec.min_cone_width, width)))
    return widths


def _cone_supports(
    spec: GeneratorSpec,
    widths: Sequence[int],
    sources: Sequence[str],
    rng: random.Random,
) -> List[List[str]]:
    """Choose each cone's input support within its overlap window."""
    supports = []
    source_count = len(sources)
    for cone_index, width in enumerate(widths):
        width = min(width, source_count)
        window = max(width, round(width + spec.overlap * (source_count - width)))
        center = (cone_index * source_count) // max(1, len(widths))
        candidates = [
            sources[(center + offset) % source_count] for offset in range(window)
        ]
        supports.append(rng.sample(candidates, width))
    return supports


def _sweep_unused_sources(
    supports: List[List[str]], sources: Sequence[str], rng: random.Random
) -> None:
    """Attach otherwise-unread sources to random cones.

    Unused inputs would carry structurally undetectable faults; real
    netlists do not have them, so neither do generated ones.
    """
    used = {net for support in supports for net in support}
    for net in sources:
        if net not in used:
            rng.choice(supports).append(net)


def _build_cone_tree(
    netlist: Netlist,
    name: str,
    support: Sequence[str],
    rng: random.Random,
    gate_counter: List[int],
    use_xor: bool,
) -> str:
    """Reduce a cone's support to one root net with a random gate tree."""

    def new_net() -> str:
        gate_counter[0] += 1
        return f"{name}_g{gate_counter[0]}"

    frontier = list(support)
    if len(frontier) == 1:
        out = new_net()
        netlist.add_gate(GateType.BUF, out, [frontier[0]])
        return out
    while len(frontier) > 1:
        rng.shuffle(frontier)
        left = frontier.pop()
        right = frontier.pop()
        if rng.random() < 0.15:
            inverted = new_net()
            netlist.add_gate(GateType.NOT, inverted, [left])
            left = inverted
        if use_xor and rng.random() < 0.35:
            gate_type = GateType.XOR if rng.random() < 0.7 else GateType.XNOR
        else:
            gate_type = rng.choice(_TREE_GATES)
        out = new_net()
        netlist.add_gate(gate_type, out, [left, right])
        frontier.append(out)
    return frontier[0]
