"""Synthetic circuit generation with ISCAS'89 profiles; SOC1/SOC2 assembly."""

from .generator import GeneratorSpec, generate_circuit
from .population import (
    evaluate_population_point,
    population_spec,
    profile_io_bounds,
    profile_scan_bounds,
)
from .profiles import ISCAS89_PROFILES, CircuitProfile, profile
from .socgen import SocDesign, Wire, elaborate, soc1_design, soc2_design

__all__ = [
    "CircuitProfile",
    "GeneratorSpec",
    "ISCAS89_PROFILES",
    "SocDesign",
    "Wire",
    "elaborate",
    "evaluate_population_point",
    "generate_circuit",
    "population_spec",
    "profile",
    "profile_io_bounds",
    "profile_scan_bounds",
    "soc1_design",
    "soc2_design",
]
