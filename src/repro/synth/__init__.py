"""Synthetic circuit generation with ISCAS'89 profiles; SOC1/SOC2 assembly."""

from .generator import GeneratorSpec, generate_circuit
from .profiles import ISCAS89_PROFILES, CircuitProfile, profile
from .socgen import SocDesign, Wire, elaborate, soc1_design, soc2_design

__all__ = [
    "CircuitProfile",
    "GeneratorSpec",
    "ISCAS89_PROFILES",
    "SocDesign",
    "Wire",
    "elaborate",
    "generate_circuit",
    "profile",
    "soc1_design",
    "soc2_design",
]
