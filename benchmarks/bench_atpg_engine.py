"""Substrate quality bench: the ATPG engine itself.

Not a paper artifact — this tracks the ATPG stack's behaviour across
circuit sizes, so regressions in coverage, compaction or speed show up
where the table benches would only show mysterious pattern-count
drifts.  Each run also reports kernel throughput (patterns per second
and faults simulated per second) and appends a machine-readable record
to ``BENCH_atpg.json`` for CI to publish.
"""

import pytest

from repro.atpg import CompiledCircuit, collapse_faults, fault_coverage, generate_tests
from repro.synth import GeneratorSpec, generate_circuit

try:
    from .common import record_bench, run_timed, warm_backend
except ImportError:  # running as a plain script, not a package
    from common import record_bench, run_timed, warm_backend

SIZES = [
    ("small", 120, 12, 6, 10),
    ("medium", 500, 24, 12, 48),
    ("large", 1500, 32, 24, 160),
]


def _throughput(result, seconds, stats):
    """(patterns/s, faults simulated/s) guarded against zero time."""
    elapsed = max(seconds, 1e-9)
    return (
        result.pattern_count / elapsed,
        stats["detect_calls"] / elapsed,
    )


@pytest.mark.parametrize("label,gates,inputs,outputs,ffs", SIZES)
def test_bench_atpg_scaling(benchmark, label, gates, inputs, outputs, ffs):
    netlist = generate_circuit(
        GeneratorSpec(name=f"scale_{label}", inputs=inputs, outputs=outputs,
                      flip_flops=ffs, target_gates=gates, seed=19)
    )
    result, seconds, stats = run_timed(benchmark, generate_tests, netlist, 19)
    patterns_per_s, faults_per_s = _throughput(result, seconds, stats)
    print(f"\n{label}: {len(netlist.gates)} gates -> "
          f"{result.pattern_count} patterns, "
          f"{100 * result.fault_coverage:.2f}% coverage, "
          f"{len(result.aborted)} aborted; "
          f"{seconds:.3f}s cold, "
          f"{patterns_per_s:.0f} patterns/s, "
          f"{faults_per_s:.0f} faults simulated/s")
    record_bench(label, {
        "gates": len(netlist.gates),
        "cold_seconds": round(seconds, 4),
        "patterns": result.pattern_count,
        "fault_coverage": round(result.fault_coverage, 6),
        "patterns_per_second": round(patterns_per_s, 1),
        "faults_simulated_per_second": round(faults_per_s, 1),
        "backend": warm_backend(),
        "blocks_evaluated": stats["blocks_evaluated"],
    })
    # Quality gates: full testable coverage, no aborts at this size.
    assert result.testable_coverage == 1.0
    assert not result.aborted
    # Claimed coverage must match an independent re-simulation.
    circuit = CompiledCircuit(netlist)
    verified = fault_coverage(
        circuit, result.test_set.as_trit_dicts(circuit), collapse_faults(circuit)
    )
    assert verified == pytest.approx(result.fault_coverage)


def test_bench_monolithic_soc1_atpg(benchmark):
    """The heaviest single ATPG call in the reproduction, timed alone."""
    from repro.synth import elaborate, soc1_design

    design = elaborate(soc1_design(), seed=3)
    result, seconds, stats = run_timed(
        benchmark, generate_tests, design.monolithic, 3
    )
    patterns_per_s, faults_per_s = _throughput(result, seconds, stats)
    print(f"\nSOC1 monolithic: {result.pattern_count} patterns, "
          f"{100 * result.fault_coverage:.2f}% coverage; "
          f"{seconds:.3f}s cold, "
          f"{patterns_per_s:.0f} patterns/s, "
          f"{faults_per_s:.0f} faults simulated/s")
    record_bench("soc1_monolithic", {
        "gates": len(design.monolithic.gates),
        "cold_seconds": round(seconds, 4),
        "patterns": result.pattern_count,
        "fault_coverage": round(result.fault_coverage, 6),
        "patterns_per_second": round(patterns_per_s, 1),
        "faults_simulated_per_second": round(faults_per_s, 1),
        "backend": warm_backend(),
        "blocks_evaluated": stats["blocks_evaluated"],
    })
    assert result.fault_coverage > 0.98
if __name__ == "__main__":
    import sys

    import pytest

    sys.exit(pytest.main([__file__, "-q", *sys.argv[1:]]))
